"""Reproduction findings: errata and clarifications to the paper.

Reproducing every claim surfaced three places where the printed text
does not hold as stated.  Each test below is a *witness*: it pins the
discrepancy down to a concrete instance so future readers can verify
both the failure of the printed claim and the corrected reading.
EXPERIMENTS.md carries the narrative.

E1. Example 9's tuple values give a path conflict graph with four
    repairs, not the listed two; under the printed total chain priority
    S-Rep collapses to one repair, so the example cannot witness
    non-categoricity of S-Rep.

E2. Under *any total* priority, S-Rep is a singleton — the first
    Algorithm-1-chosen tuple missing from another repair dominates all
    of its neighbours there (exchange argument).  Hence S-Rep satisfies
    P4, contrary to Section 3.2's reading; the separation Example 9 is
    after (S non-categorical while G is categorical) exists only for
    partial priorities, matching Section 3.3's own phrasing.

E3. Proposition 4's side claim "for one functional dependency G-Rep
    coincides with S-Rep" fails for partial priorities: a single FD can
    produce a complete bipartite conflict graph on which a chain
    priority leaves S-Rep = {r1, r2} but G-Rep = {r1}.  Empirically the
    coincidence holds for total priorities (where both are singletons).
"""

from hypothesis import given, settings

from repro.constraints.conflict_graph import build_conflict_graph
from repro.constraints.fd import FunctionalDependency
from repro.core.cleaning import clean
from repro.core.families import Family, preferred_repairs
from repro.datagen.paper_instances import example9_printed
from repro.priorities.priority import Priority
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema
from repro.repairs.enumerate import enumerate_repairs
from tests.conftest import key_priorities, two_fd_priorities


class TestE1PrintedExample9:
    def test_repair_set_has_four_elements_not_two(self):
        scenario = example9_printed()
        repairs = set(enumerate_repairs(scenario.graph))
        r1 = scenario.row_set("ta", "tc", "te")
        r2 = scenario.row_set("tb", "td")
        extra1 = scenario.row_set("ta", "td")
        extra2 = scenario.row_set("tb", "te")
        assert repairs == {r1, r2, extra1, extra2}

    def test_r2_is_not_semi_globally_optimal_as_printed(self):
        from repro.core.optimality import is_semi_globally_optimal

        scenario = example9_printed()
        r2 = scenario.row_set("tb", "td")
        # ta ≻ tb and n(ta) ∩ r2 = {tb}: swapping tb for ta improves.
        assert not is_semi_globally_optimal(r2, scenario.priority)


class TestE2TotalPrioritiesMakeSRepCategorical:
    @given(two_fd_priorities(max_tuples=7))
    @settings(max_examples=60, deadline=None)
    def test_s_rep_is_singleton_for_total_priorities(self, data):
        _, priority = data
        total = priority.some_total_extension()
        s_rep = preferred_repairs(Family.SEMI_GLOBAL, total)
        assert len(s_rep) == 1
        assert s_rep[0] == clean(total)

    @given(key_priorities(max_tuples=7))
    @settings(max_examples=60, deadline=None)
    def test_g_equals_s_for_total_priorities(self, data):
        _, priority = data
        total = priority.some_total_extension()
        assert preferred_repairs(Family.GLOBAL, total) == preferred_repairs(
            Family.SEMI_GLOBAL, total
        )


class TestE3OneFdDoesNotForceGEqualsS:
    def _counterexample(self):
        """K_{3,2} from a single FD A → B plus the chain priority."""
        schema = RelationSchema("R", ["A:number", "B:number", "C:number"])
        values = {
            "ta": (1, 1, 0),
            "tb": (1, 2, 1),
            "tc": (1, 1, 2),
            "td": (1, 2, 3),
            "te": (1, 1, 4),
        }
        instance = RelationInstance.from_values(schema, values.values())
        fds = (FunctionalDependency.parse("A -> B", "R"),)
        graph = build_conflict_graph(instance, fds)
        rows = {name: Row(schema, vals) for name, vals in values.items()}
        priority = Priority(
            graph,
            [
                (rows["ta"], rows["tb"]),
                (rows["tb"], rows["tc"]),
                (rows["tc"], rows["td"]),
                (rows["td"], rows["te"]),
            ],
        )
        return rows, priority

    def test_single_fd_separates_s_from_g(self):
        rows, priority = self._counterexample()
        r1 = frozenset({rows["ta"], rows["tc"], rows["te"]})
        r2 = frozenset({rows["tb"], rows["td"]})
        s_rep = set(preferred_repairs(Family.SEMI_GLOBAL, priority))
        g_rep = set(preferred_repairs(Family.GLOBAL, priority))
        assert s_rep == {r1, r2}
        assert g_rep == {r1}
        assert s_rep != g_rep  # Proposition 4's side claim fails here

    def test_counterexample_priority_is_partial(self):
        _, priority = self._counterexample()
        assert not priority.is_total
