"""Figure 5, row "Rep", column "{∀,∃}-free queries" — experiment F5.qf.

Paper claim: consistent answers to quantifier-free (ground) queries
over the plain repair family are computable in PTIME, even though the
repair space is exponential.  We benchmark the conflict-graph witness
algorithm against the naive evaluate-in-every-repair engine on
Example-4 grids whose repair count doubles with every key group: the
tractable algorithm's cost stays flat while the naive engine tracks the
2^n repair count.
"""

import sys

if not __package__:
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import pytest

from benchmarks._cli import run_pytest_module, sizes

from repro.cqa.engine import CqaEngine
from repro.cqa.tractable import consistent_answer_qf
from repro.datagen.generators import GRID_FDS
from repro.query.ast import And, Atom, Const, Not, Or

from benchmarks.workloads import grid_workload

#: Mixed ground query touching three key groups.
QUERY = Or(
    [
        And([Atom("R", [Const(0), Const(0)]), Not(Atom("R", [Const(1), Const(1)]))]),
        Atom("R", [Const(2), Const(0)]),
    ]
)

TRACTABLE_SIZES = sizes(full=[16, 64, 256], smoke=[8])
NAIVE_SIZES = sizes(full=[6, 10, 14], smoke=[4])


@pytest.mark.parametrize("groups", TRACTABLE_SIZES)
def test_tractable_qf_cqa(benchmark, groups):
    _, graph, _ = grid_workload(groups)
    verdict = benchmark(consistent_answer_qf, QUERY, graph)
    assert verdict.value in ("true", "false", "undetermined")


@pytest.mark.parametrize("groups", NAIVE_SIZES)
def test_naive_qf_cqa(benchmark, groups):
    instance, graph, _ = grid_workload(groups)
    engine = CqaEngine(instance, GRID_FDS)

    def run():
        # Rebuild nothing; answer() streams all 2^groups repairs.
        return engine.answer(QUERY)

    answer = benchmark(run)
    assert answer.repairs_considered == 2**groups


@pytest.mark.parametrize("groups", NAIVE_SIZES)
def test_tractable_matches_naive_verdict(benchmark, groups):
    """Same sizes as the naive run: verdicts must agree exactly."""
    instance, graph, _ = grid_workload(groups)
    engine = CqaEngine(instance, GRID_FDS)
    expected = engine.answer(QUERY).verdict
    verdict = benchmark(consistent_answer_qf, QUERY, graph)
    assert verdict is expected


if __name__ == "__main__":
    sys.exit(run_pytest_module(__file__, __doc__))
