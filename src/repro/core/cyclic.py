"""Cyclic preference relations (paper Section 6, future work).

The paper requires priorities to be acyclic and flags "extending our
approach to cyclic priorities" as an open problem, warning that a
"modified, conditional, version of monotonicity may be necessary".
This module implements the natural *condensation semantics* for that
extension and makes its property profile executable:

Given an arbitrary binary relation on conflicting tuples (cycles
allowed), collapse its strongly connected components: tuples caught in
a preference cycle are treated as mutually incomparable (the user's
evidence about them is contradictory), while preferences between
distinct components survive.  The result is an acyclic
:class:`~repro.priorities.priority.Priority` usable with every repair
family.

Properties (tested in ``tests/core/test_cyclic.py``):

* agrees with the identity on already-acyclic relations;
* P1/P3/P4 transfer from the underlying family;
* **monotonicity is conditional**, exactly as the paper anticipates:
  adding a preference edge can close a cycle, *erase* previously active
  preferences, and thereby widen the preferred-repair set.  The module
  exposes :func:`is_conservative_extension` — extensions that do not
  merge strongly connected components — for which monotonicity is
  restored.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.constraints.conflict_graph import ConflictGraph
from repro.exceptions import NonConflictingPriorityError
from repro.priorities.priority import Priority, PriorityEdge
from repro.relational.rows import Row


def _strongly_connected_components(
    vertices: Iterable[Row], edges: Sequence[PriorityEdge]
) -> Dict[Row, int]:
    """Tarjan's algorithm (iterative); returns a component id per vertex."""
    adjacency: Dict[Row, List[Row]] = {vertex: [] for vertex in vertices}
    for winner, loser in edges:
        adjacency.setdefault(winner, []).append(loser)
        adjacency.setdefault(loser, [])

    index_of: Dict[Row, int] = {}
    lowlink: Dict[Row, int] = {}
    on_stack: Set[Row] = set()
    stack: List[Row] = []
    component_of: Dict[Row, int] = {}
    counter = 0
    components = 0

    for root in adjacency:
        if root in index_of:
            continue
        work: List[Tuple[Row, int]] = [(root, 0)]
        while work:
            vertex, child_index = work[-1]
            if child_index == 0:
                index_of[vertex] = lowlink[vertex] = counter
                counter += 1
                stack.append(vertex)
                on_stack.add(vertex)
            advanced = False
            children = adjacency[vertex]
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index_of:
                    work[-1] = (vertex, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[vertex] = min(lowlink[vertex], index_of[child])
            if advanced:
                continue
            work.pop()
            if lowlink[vertex] == index_of[vertex]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component_of[member] = components
                    if member == vertex:
                        break
                components += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
    return component_of


class CyclicPreference:
    """An arbitrary (possibly cyclic) preference on conflicting tuples."""

    __slots__ = ("graph", "edges")

    def __init__(self, graph: ConflictGraph, edges: Iterable[PriorityEdge]) -> None:
        self.graph = graph
        self.edges: FrozenSet[PriorityEdge] = frozenset(edges)
        for winner, loser in self.edges:
            if not graph.are_conflicting(winner, loser):
                raise NonConflictingPriorityError(
                    f"preference relates non-conflicting tuples "
                    f"{winner!r} and {loser!r}"
                )

    def components(self) -> Dict[Row, int]:
        """Strongly-connected-component id of every tuple."""
        return _strongly_connected_components(self.graph.vertices, tuple(self.edges))

    def condense(self) -> Priority:
        """The acyclic priority obtained by collapsing preference cycles.

        An edge survives iff its endpoints lie in different strongly
        connected components of the preference digraph; two-sided and
        cyclic evidence cancels out.
        """
        component_of = self.components()
        surviving = [
            (winner, loser)
            for winner, loser in self.edges
            if component_of[winner] != component_of[loser]
        ]
        return Priority(self.graph, surviving)

    def extend(self, additional: Iterable[PriorityEdge]) -> "CyclicPreference":
        """Union of preferences (always succeeds — cycles are allowed)."""
        return CyclicPreference(self.graph, self.edges | frozenset(additional))

    @property
    def has_cycle(self) -> bool:
        """Whether any preference cycle (including 2-cycles) exists."""
        component_of = self.components()
        return any(
            component_of[winner] == component_of[loser]
            for winner, loser in self.edges
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CyclicPreference({len(self.edges)} edges, cyclic={self.has_cycle})"


def is_conservative_extension(
    base: CyclicPreference, extension: CyclicPreference
) -> bool:
    """Whether ``extension`` adds edges without merging any components.

    For conservative extensions the condensed priorities are themselves
    extensions of one another, so the P2 monotonicity of the underlying
    family transfers — the "conditional monotonicity" the paper
    anticipates.
    """
    if not extension.edges >= base.edges or extension.graph != base.graph:
        return False
    base_components = base.components()
    extended_components = extension.components()
    # Merging happened iff two tuples separated before are together now.
    seen: Dict[int, int] = {}
    for row in base.graph.vertices:
        new_id = extended_components[row]
        old_id = base_components[row]
        if new_id in seen and seen[new_id] != old_id:
            return False
        seen[new_id] = old_id
    return True


def condensed_preferred_repairs(
    preference: CyclicPreference, family
) -> List[FrozenSet[Row]]:
    """Preferred repairs of a family under the condensation semantics."""
    from repro.core.families import preferred_repairs

    return preferred_repairs(family, preference.condense())
