"""Equivalence of the preference-aware pushdown and the in-memory engine.

For every rewritable query shape, every FD variant with one left-hand
side, every repair family, and *arbitrary acyclic priorities* —
partial and total — :class:`PrefSqlCqaEngine` must produce exactly the
certain and possible answers the repair-streaming
:class:`~repro.cqa.engine.CqaEngine` computes.  This is the
preference-aware extension of ``test_backend_equivalence``: instances
draw from tiny domains to force FD violations, and the priority
strategy orients a random subset of the actual conflict edges along a
random vertex permutation (which guarantees acyclicity by
construction, including through composed chains).
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze
from repro.constraints.conflict_graph import build_conflict_graph
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.prefsql import PrefSqlCqaEngine
from repro.query.ast import And, Atom, Comparison, Exists, Var
from repro.query.validate import check_against_schema
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.rows import sorted_rows
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.sqlite_io import save_database

R_SCHEMA = RelationSchema("R", ["K", "A:number", "B"])
S_SCHEMA = RelationSchema("S", ["A:number", "C"])
SCHEMA = DatabaseSchema([R_SCHEMA, S_SCHEMA])

FD_VARIANTS = {
    "key-like": [FunctionalDependency.parse("K -> A", "R")],
    "merged-rhs": [FunctionalDependency.parse("K -> A, B", "R")],
    "same-lhs-pair": [
        FunctionalDependency.parse("K -> A", "R"),
        FunctionalDependency.parse("K -> B", "R"),
    ],
}

x, y, z, c = Var("x"), Var("y"), Var("z"), Var("c")

#: Rewritable shapes exercised against every family and priority.
SHAPES = [
    ("atom", Atom("R", [x, y, z])),
    ("projection", Exists(["z"], Atom("R", [x, y, z]))),
    ("group-constant", Exists(["z"], Atom("R", ["k0", y, z]))),
    (
        "order-comparison",
        Exists(["z"], And([Atom("R", [x, y, z]), Comparison(">=", y, 1)])),
    ),
    ("clean-join", Exists(["z"], And([Atom("R", [x, y, z]), Atom("S", [y, c])]))),
    ("closed", Exists(["k", "a", "b"], Atom("R", [Var("k"), Var("a"), Var("b")]))),
]


#: Both relations dirty: R(K -> A) joins S(A -> C) through S's full key.
BOTH_DIRTY_FDS = [
    FunctionalDependency.parse("K -> A", "R"),
    FunctionalDependency.parse("A -> C", "S"),
]

#: C_forest shapes under BOTH_DIRTY_FDS: the multi-dirty recursive
#: certification runs over each dirty atom's class-survivor table.
C_FOREST_SHAPES = [
    ("key-join", Exists(["z"], And([Atom("R", [x, y, z]), Atom("S", [y, c])]))),
    (
        "key-join-projected",
        Exists(["z", "c"], And([Atom("R", [x, y, z]), Atom("S", [y, c])])),
    ),
    (
        "independent-trees",
        Exists(["z"], And([Atom("R", [x, y, z]), Atom("S", [1, c])])),
    ),
    (
        "key-join-comparison",
        Exists(
            ["z", "c"],
            And(
                [
                    Atom("R", [x, y, z]),
                    Atom("S", [y, c]),
                    Comparison("!=", c, "c0"),
                ]
            ),
        ),
    ),
    (
        "closed-key-join",
        Exists(
            ["k", "a", "b", "cc"],
            And(
                [
                    Atom("R", [Var("k"), Var("a"), Var("b")]),
                    Atom("S", [Var("a"), Var("cc")]),
                ]
            ),
        ),
    ),
]


@st.composite
def prioritized_settings(draw):
    """A database, an FD variant, and an acyclic priority over its
    conflicts (empty through total)."""
    r_rows = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["k0", "k1", "k2"]),
                st.integers(min_value=0, max_value=2),
                st.sampled_from(["u", "v"]),
            ),
            max_size=8,
            unique=True,
        )
    )
    s_rows = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.sampled_from(["c0", "c1"]),
            ),
            max_size=3,
            unique=True,
        )
    )
    database = Database(
        [
            RelationInstance.from_values(R_SCHEMA, r_rows),
            RelationInstance.from_values(S_SCHEMA, s_rows),
        ]
    )
    dependencies = FD_VARIANTS[draw(st.sampled_from(sorted(FD_VARIANTS)))]
    priority = _draw_acyclic_priority(draw, database, dependencies)
    return database, dependencies, priority


def _draw_acyclic_priority(draw, database, dependencies):
    graph = build_conflict_graph(database, dependencies)
    edges = sorted(tuple(sorted_rows(pair)) for pair in graph.edges())
    oriented = draw(
        st.lists(st.booleans(), min_size=len(edges), max_size=len(edges))
    )
    vertices = sorted_rows(graph.vertices)
    ranks = draw(st.permutations(range(len(vertices))))
    position = {row: ranks[index] for index, row in enumerate(vertices)}
    return [
        (first, second) if position[first] < position[second] else (second, first)
        for (first, second), keep in zip(edges, oriented)
        if keep
    ]


@st.composite
def both_dirty_settings(draw):
    """A database and an acyclic priority whose conflicts now span both
    relations (S is dirty under ``A -> C`` as well)."""
    r_rows = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["k0", "k1", "k2"]),
                st.integers(min_value=0, max_value=2),
                st.sampled_from(["u", "v"]),
            ),
            max_size=8,
            unique=True,
        )
    )
    s_rows = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.sampled_from(["c0", "c1"]),
            ),
            max_size=4,
            unique=True,
        )
    )
    database = Database(
        [
            RelationInstance.from_values(R_SCHEMA, r_rows),
            RelationInstance.from_values(S_SCHEMA, s_rows),
        ]
    )
    priority = _draw_acyclic_priority(draw, database, BOTH_DIRTY_FDS)
    return database, priority


def _engines(database, dependencies, priority, family):
    connection = sqlite3.connect(":memory:")
    save_database(database, connection, dependencies)
    pushed = PrefSqlCqaEngine(connection, dependencies, priority, family)
    memory = CqaEngine(database, dependencies, priority, family)
    return pushed, memory


class TestPrefsqlEquivalence:
    @pytest.mark.parametrize(
        "family", list(Family), ids=[family.name for family in Family]
    )
    @given(prioritized_settings())
    @settings(max_examples=25, deadline=None)
    def test_all_shapes_agree(self, family, setting):
        database, dependencies, priority = setting
        pushed, memory = _engines(database, dependencies, priority, family)
        with pushed:
            for label, formula in SHAPES:
                if formula.is_closed:
                    got = pushed.answer(formula)
                    reference = memory.answer(formula)
                    assert got.verdict is reference.verdict, label
                else:
                    got = pushed.certain_answers(formula)
                    reference = memory.certain_answers(formula)
                    assert got.certain == reference.certain, label
                    assert got.possible == reference.possible, label
                    assert got.variables == reference.variables, label
                expected = "prefsql" if priority else "sqlite"
                assert pushed.last_route == expected, label
                # Differential against the static analyzer: its
                # prediction must match the engine on every drawn
                # database, FD variant, family, and priority.
                report = analyze(
                    SCHEMA,
                    dependencies,
                    check_against_schema(formula, SCHEMA),
                    priority=priority,
                )
                assert (
                    report.expected_last_route("prefsql")
                    == pushed.last_route
                ), label


class TestCForestPrefsqlEquivalence:
    """Key-join forests over TWO dirty relations: the recursive
    certification composed with class-survivor tables must agree with
    preference-aware repair streaming for every family and priority."""

    @pytest.mark.parametrize(
        "family", list(Family), ids=[family.name for family in Family]
    )
    @given(both_dirty_settings())
    @settings(max_examples=15, deadline=None)
    def test_forest_shapes_agree(self, family, setting):
        database, priority = setting
        pushed, memory = _engines(database, BOTH_DIRTY_FDS, priority, family)
        with pushed:
            for label, formula in C_FOREST_SHAPES:
                if formula.is_closed:
                    got = pushed.answer(formula)
                    reference = memory.answer(formula)
                    assert got.verdict is reference.verdict, label
                else:
                    got = pushed.certain_answers(formula)
                    reference = memory.certain_answers(formula)
                    assert got.certain == reference.certain, label
                    assert got.possible == reference.possible, label
                    assert got.variables == reference.variables, label
                expected = "prefsql" if priority else "sqlite"
                assert pushed.last_route == expected, label
                report = analyze(
                    SCHEMA,
                    BOTH_DIRTY_FDS,
                    check_against_schema(formula, SCHEMA),
                    priority=priority,
                )
                assert (
                    report.expected_last_route("prefsql")
                    == pushed.last_route
                ), label


class TestWinnowRouteParity:
    """The survivor machinery must agree with the *winnow* reading of
    the families: under a total priority, Algorithm 1's unique outcome
    is the single common repair and prefsql's COMMON answers collapse
    to plain evaluation over it."""

    @given(prioritized_settings())
    @settings(max_examples=25, deadline=None)
    def test_total_priority_common_collapse(self, setting):
        database, dependencies, _ = setting
        graph = build_conflict_graph(database, dependencies)
        vertices = sorted_rows(graph.vertices)
        position = {row: index for index, row in enumerate(vertices)}
        total = [
            (first, second)
            if position[first] < position[second]
            else (second, first)
            for first, second in (tuple(sorted_rows(p)) for p in graph.edges())
        ]
        pushed, memory = _engines(
            database, dependencies, total, Family.COMMON
        )
        with pushed:
            formula = Exists(["z"], Atom("R", [x, y, z]))
            got = pushed.certain_answers(formula)
            reference = memory.certain_answers(formula)
            assert got.certain == reference.certain
            assert got.possible == reference.possible
            # A total priority leaves nothing disputed under C-Rep.
            assert got.certain == got.possible
