"""First-order query language: AST, parser, evaluator, SQL frontend."""

from repro.query.ast import (
    And,
    Atom,
    Comparison,
    Const,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Term,
    TrueFormula,
    Var,
    constants_of,
    is_ground,
    is_quantifier_free,
)
from repro.query.parser import parse_query
from repro.query.evaluator import EvaluationContext, answers, evaluate, make_context
from repro.query.normalize import LiteralConjunction, to_dnf, to_nnf
from repro.query.sql import parse_sql, sql_to_formula

__all__ = [
    "And",
    "Atom",
    "Comparison",
    "Const",
    "EvaluationContext",
    "Exists",
    "FalseFormula",
    "Forall",
    "Formula",
    "Implies",
    "LiteralConjunction",
    "Not",
    "Or",
    "Term",
    "TrueFormula",
    "Var",
    "answers",
    "constants_of",
    "evaluate",
    "is_ground",
    "is_quantifier_free",
    "make_context",
    "parse_query",
    "parse_sql",
    "sql_to_formula",
    "to_dnf",
    "to_nnf",
]
