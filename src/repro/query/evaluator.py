"""Model-theoretic evaluation of first-order queries.

Closed formulas are evaluated in the standard sense (``r |= Q``) with
*active-domain* quantifier semantics: quantified variables range over
the values occurring in the instance plus the constants of the query.
This is the usual choice in the consistent-query-answering literature
and coincides with natural semantics on safe queries.

Order comparisons hold only between naturals (the paper interprets
``<``/``>`` over ``N``); comparing names with an order operator yields
false rather than an error, so mixed-domain quantification is harmless.

Existential blocks are evaluated with *conjunct-guided candidate
narrowing*: when the quantified body is a conjunction containing a
positive relational atom that mentions the variable, candidate values
are drawn from the matching column of that relation instead of the whole
active domain.  The narrowing is sound (every satisfying valuation must
satisfy each conjunct) and makes conjunctive-query evaluation behave
like an index-nested-loop join instead of a domain product.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.exceptions import QueryBindingError
from repro.query.ast import (
    And,
    Atom,
    COMPARISON_OPS,
    Comparison,
    Const,
    EQUALITY_OPS,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    TrueFormula,
    Var,
    constants_of,
)
from repro.relational.domain import Value, values_comparable
from repro.relational.rows import Row

Binding = Dict[str, Value]


class EvaluationContext:
    """Indexed view of a set of rows used during evaluation.

    Holds, per relation, the set of value tuples, and the active domain
    (instance values plus any extra values, typically query constants).
    Building a context is linear in the data; evaluating many queries
    against the same repair can share one context.
    """

    __slots__ = ("relations", "adom")

    def __init__(self, rows: Iterable[Row], extra_domain: Iterable[Value] = ()) -> None:
        relations: Dict[str, Set[Tuple[Value, ...]]] = {}
        adom: Set[Value] = set(extra_domain)
        for row in rows:
            relations.setdefault(row.relation, set()).add(row.values)
            adom.update(row.values)
        self.relations = relations
        self.adom = adom

    def tuples_of(self, relation: str) -> Set[Tuple[Value, ...]]:
        return self.relations.get(relation, set())


def _resolve(term, binding: Binding) -> Value:
    if isinstance(term, Const):
        return term.value
    value = binding.get(term.name)
    if value is None and term.name not in binding:
        raise QueryBindingError(f"unbound variable {term.name!r}")
    return value


def _compare(op: str, left: Value, right: Value) -> bool:
    if op in EQUALITY_OPS:
        return COMPARISON_OPS[op](left, right)
    if not values_comparable(left, right):
        return False
    return COMPARISON_OPS[op](left, right)


def _atom_holds(atom: Atom, context: EvaluationContext, binding: Binding) -> bool:
    values = tuple(_resolve(term, binding) for term in atom.terms)
    return values in context.tuples_of(atom.relation)


def _conjuncts(formula: Formula) -> Tuple[Formula, ...]:
    return formula.parts if isinstance(formula, And) else (formula,)


def _atom_candidates(
    atom: Atom, variable: str, context: EvaluationContext, binding: Binding
) -> Set[Value]:
    """Values ``variable`` can take so that ``atom`` may hold."""
    candidates: Set[Value] = set()
    for values in context.tuples_of(atom.relation):
        if len(values) != len(atom.terms):
            continue
        chosen: Optional[Value] = None
        compatible = True
        for term, value in zip(atom.terms, values):
            if isinstance(term, Const):
                if term.value != value:
                    compatible = False
                    break
            elif term.name == variable:
                if chosen is None:
                    chosen = value
                elif chosen != value:
                    compatible = False
                    break
            elif term.name in binding:
                if binding[term.name] != value:
                    compatible = False
                    break
        if compatible and chosen is not None:
            candidates.add(chosen)
    return candidates


def _candidate_values(
    variable: str, body: Formula, context: EvaluationContext, binding: Binding
) -> Set[Value]:
    """Sound candidate set for an existential variable.

    Inspects the top-level conjuncts of ``body``: a positive atom or an
    equality pinning the variable restricts its possible values.  Falls
    back to the active domain when no conjunct constrains the variable.
    """
    best: Optional[Set[Value]] = None
    for conjunct in _conjuncts(body):
        candidates: Optional[Set[Value]] = None
        if isinstance(conjunct, Atom) and variable in conjunct.free_variables():
            candidates = _atom_candidates(conjunct, variable, context, binding)
        elif isinstance(conjunct, Comparison) and conjunct.op == "=":
            left, right = conjunct.left, conjunct.right
            if isinstance(left, Var) and left.name == variable:
                other = right
            elif isinstance(right, Var) and right.name == variable:
                other = left
            else:
                continue
            if isinstance(other, Const):
                candidates = {other.value}
            elif other.name in binding:
                candidates = {binding[other.name]}
        if candidates is not None and (best is None or len(candidates) < len(best)):
            best = candidates
            if not best:
                return best
    return best if best is not None else set(context.adom)


def _holds(formula: Formula, context: EvaluationContext, binding: Binding) -> bool:
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, FalseFormula):
        return False
    if isinstance(formula, Atom):
        return _atom_holds(formula, context, binding)
    if isinstance(formula, Comparison):
        return _compare(
            formula.op,
            _resolve(formula.left, binding),
            _resolve(formula.right, binding),
        )
    if isinstance(formula, Not):
        return not _holds(formula.body, context, binding)
    if isinstance(formula, And):
        return all(_holds(part, context, binding) for part in formula.parts)
    if isinstance(formula, Or):
        return any(_holds(part, context, binding) for part in formula.parts)
    if isinstance(formula, Implies):
        return not _holds(formula.antecedent, context, binding) or _holds(
            formula.consequent, context, binding
        )
    if isinstance(formula, Exists):
        variable, rest = formula.variables[0], formula.variables[1:]
        remainder: Formula = Exists(rest, formula.body) if rest else formula.body
        for value in _candidate_values(variable, formula.body, context, binding):
            binding[variable] = value
            try:
                if _holds(remainder, context, binding):
                    return True
            finally:
                del binding[variable]
        return False
    if isinstance(formula, Forall):
        variable, rest = formula.variables[0], formula.variables[1:]
        remainder = Forall(rest, formula.body) if rest else formula.body
        for value in context.adom:
            binding[variable] = value
            try:
                if not _holds(remainder, context, binding):
                    return False
            finally:
                del binding[variable]
        return True
    raise TypeError(f"unknown formula node {formula!r}")


def make_context(rows: Iterable[Row], query: Optional[Formula] = None) -> EvaluationContext:
    """Build an evaluation context for ``rows`` (plus query constants)."""
    extra = constants_of(query) if query is not None else ()
    return EvaluationContext(rows, extra)


def evaluate(
    formula: Formula,
    rows: Iterable[Row],
    binding: Optional[Mapping[str, Value]] = None,
    context: Optional[EvaluationContext] = None,
) -> bool:
    """Whether the (possibly pre-bound) formula holds in the given rows.

    ``rows`` may be any iterable of :class:`Row` (an instance, a repair,
    a database's :meth:`all_rows`).  Free variables must be covered by
    ``binding``.
    """
    if context is None:
        context = make_context(rows, formula)
    working: Binding = dict(binding) if binding else {}
    missing = formula.free_variables() - set(working)
    if missing:
        raise QueryBindingError(f"unbound free variables: {sorted(missing)}")
    return _holds(formula, context, working)


def _enumerate_bindings(
    variables: Tuple[str, ...],
    formula: Formula,
    context: EvaluationContext,
    binding: Binding,
) -> Iterator[Binding]:
    if not variables:
        if _holds(formula, context, binding):
            yield dict(binding)
        return
    variable, rest = variables[0], variables[1:]
    for value in _candidate_values(variable, formula, context, binding):
        binding[variable] = value
        yield from _enumerate_bindings(rest, formula, context, binding)
        del binding[variable]


def answers(
    formula: Formula,
    rows: Iterable[Row],
    variables: Optional[Tuple[str, ...]] = None,
    context: Optional[EvaluationContext] = None,
) -> FrozenSet[Tuple[Value, ...]]:
    """Answer set of an open formula: satisfying assignments to ``variables``.

    ``variables`` defaults to the sorted free variables of the formula;
    pass an explicit tuple to control answer-column order.  Free
    variables omitted from ``variables`` are projected away
    (existentially): the answer keeps each combination of the requested
    columns that some extension satisfies.
    """
    if variables is None:
        variables = tuple(sorted(formula.free_variables()))
    unknown = set(variables) - formula.free_variables()
    if unknown:
        raise QueryBindingError(
            f"answer variables {sorted(unknown)} are not free in the formula"
        )
    projected = tuple(sorted(formula.free_variables() - set(variables)))
    # Peel top-level existential blocks into projected columns: ∃ and
    # projection coincide, and enumerating the quantified variables
    # up front lets the conjunct-guided narrowing see the body's atoms
    # — with the Exists left in place the root formula has no top-level
    # atom conjuncts and every *free* variable would range over the
    # whole active domain.
    body = formula
    taken = set(variables) | set(projected)
    peeled: List[str] = []
    while isinstance(body, Exists) and not (set(body.variables) & taken):
        peeled.extend(body.variables)
        taken |= set(body.variables)
        body = body.body
    if context is None:
        context = make_context(rows, formula)
    results: List[Tuple[Value, ...]] = []
    for binding in _enumerate_bindings(
        tuple(variables) + projected + tuple(peeled), body, context, {}
    ):
        results.append(tuple(binding[name] for name in variables))
    return frozenset(results)
