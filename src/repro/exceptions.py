"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses are split by subsystem
(schema, query language, constraints, priorities) to allow targeted
handling without string matching on messages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the library."""


class SchemaError(ReproError):
    """Raised for malformed schemas or schema/instance mismatches."""


class TypeMismatchError(SchemaError):
    """Raised when a value does not match its attribute's declared type."""


class UnknownAttributeError(SchemaError):
    """Raised when an attribute name is not part of a relation schema."""


class UnknownRelationError(SchemaError):
    """Raised when a relation name is not part of a database schema."""


class QueryError(ReproError):
    """Base class for query-language errors."""


class QuerySyntaxError(QueryError):
    """Raised by the parser on malformed query text."""


class QueryBindingError(QueryError):
    """Raised when a formula is evaluated with unbound free variables."""


class ConstraintError(ReproError):
    """Base class for integrity-constraint errors."""


class ConstraintSyntaxError(ConstraintError):
    """Raised when a dependency string cannot be parsed."""


class PriorityError(ReproError):
    """Base class for priority-relation errors."""


class CyclicPriorityError(PriorityError):
    """Raised when a priority relation contains a cycle."""


class NonConflictingPriorityError(PriorityError):
    """Raised when a priority relates tuples that are not in conflict."""


class CleaningError(ReproError):
    """Raised when Algorithm 1 cannot proceed (e.g. bad restriction set)."""


class UpdateError(ReproError):
    """Raised by the incremental subsystem on invalid instance updates."""


class AdmissionError(ReproError):
    """Raised when the service rejects a request at admission control
    (in-flight limit reached and the bounded accept queue is full)."""
