"""The serving layer end to end: broker, batches, cache, updates, wire.

A small HR database with conflicting manager records is registered with
a :class:`~repro.service.broker.RequestBroker`; a burst of requests is
served as one batch (duplicates computed once, each query routed to the
cheapest capable engine), an update invalidates exactly the dependent
cached answers, and the same broker is then driven through the JSON
front end `repro serve` speaks — all in-process, no sockets.

Run::

    PYTHONPATH=src python examples/service_demo.py
"""

from __future__ import annotations

import io
import json

from repro.constraints.fd import FunctionalDependency
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema
from repro.service.broker import Request, RequestBroker
from repro.service.server import ServiceFrontEnd, serve_stdio

SCHEMA = RelationSchema("Mgr", ["Name", "Dept", "Salary:number"])
FDS = [FunctionalDependency.parse("Name -> Dept, Salary", "Mgr")]

ROWS = [
    ("Mary", "R&D", 40),
    ("Mary", "PR", 30),   # conflicts with the R&D record
    ("John", "PR", 20),
    ("Ada", "IT", 50),
]


def main() -> None:
    instance = RelationInstance.from_values(SCHEMA, ROWS)
    broker = RequestBroker()
    broker.register("hr", instance, FDS)

    print("=== one batch: four requests, two distinct, priority-first ===")
    batch = [
        Request("EXISTS d, s . Mgr(n, d, s)", tag="names-a"),
        Request("EXISTS d, s . Mgr(n, d, s)", tag="names-b"),
        Request("EXISTS s . Mgr('Mary', 'PR', s)", tag="mary-pr", priority=5),
        Request("EXISTS s . Mgr('Mary', 'PR', s)", tag="mary-pr-dup"),
    ]
    for result in broker.submit(batch):
        outcome = result.outcome
        body = (
            f"verdict={outcome.verdict.value}"
            if hasattr(outcome, "verdict")
            else f"certain={sorted(outcome.certain)}"
        )
        print(
            f"  [{result.request.tag:<12}] engine={result.engine:<11} "
            f"route={result.route:<13} shared={str(result.shared):<5} {body}"
        )

    print("\n=== the same work again: answer-cache hits, same routes ===")
    for result in broker.submit(batch):
        print(
            f"  [{result.request.tag:<12}] cached={result.cached} "
            f"route={result.route}"
        )

    print("\n=== updates invalidate; a reverted state hits again ===")
    probe = Row(SCHEMA, ["Zoe", "IT", 15])
    broker.insert(probe, "hr")  # instance state (and cache keys) change
    changed = broker.query("EXISTS d, s . Mgr(n, d, s)")
    print(f"  after insert           cached={changed.cached} (recomputed)")
    broker.delete(probe, "hr")  # back to the original instance state
    reverted = broker.query("EXISTS d, s . Mgr(n, d, s)")
    print(f"  after revert           cached={reverted.cached} (content-keyed)")

    print("\n=== other databases keep their cache through it all ===")
    audit = RelationInstance.from_values(
        RelationSchema("Audit", ["Id:number", "Grade"]), [(1, "ok"), (1, "bad")]
    )
    broker.register("audit", audit, [FunctionalDependency.parse("Id -> Grade", "Audit")])
    broker.query("EXISTS g . Audit(i, g)", database="audit")
    broker.insert(Row(SCHEMA, ["Zoe", "IT", 15]), "hr")  # hr churn only
    isolated = broker.query("EXISTS g . Audit(i, g)", database="audit")
    print(f"  audit after hr update  cached={isolated.cached}")

    print("\n=== the wire format repro serve speaks (JSON lines) ===")
    front = ServiceFrontEnd(broker)
    script = "\n".join(
        [
            json.dumps({"op": "health"}),
            json.dumps(
                {"query": "EXISTS n, s . Mgr(n, d, s)", "family": "Rep"}
            ),
            json.dumps({"op": "stats"}),
        ]
    )
    output = io.StringIO()
    serve_stdio(front, io.StringIO(script), output)
    for line in output.getvalue().splitlines():
        payload = json.loads(line)
        if "certain" in payload:
            print(f"  certain depts: {payload['certain']} via {payload['route']}")
        elif "status" in payload:
            print(f"  health: {payload['status']}, dbs={payload['databases']}")
        else:
            cache = payload["answer_cache"]
            print(
                f"  stats: {payload['requests_served']} served, "
                f"cache {cache['hits']} hits / {cache['misses']} misses"
            )
    broker.close()


if __name__ == "__main__":
    main()
