"""Model-theoretic evaluation of first-order queries.

Closed formulas are evaluated in the standard sense (``r |= Q``) with
*active-domain* quantifier semantics: quantified variables range over
the values occurring in the instance plus the constants of the query.
This is the usual choice in the consistent-query-answering literature
and coincides with natural semantics on safe queries.

Order comparisons hold only between naturals (the paper interprets
``<``/``>`` over ``N``); comparing names with an order operator yields
false rather than an error, so mixed-domain quantification is harmless.

Evaluation strategy
-------------------

:class:`EvaluationContext` is an indexed view of a row set.  Besides the
per-relation tuple sets and the active domain it lazily materializes
*hash indexes* — per (relation, column subset) maps from value tuples to
the matching rows — and caches the join plans built on top of them, so
repeated queries against the same context never rescan a relation.

Existential blocks (and open-query answer enumeration) are executed as
*ordered index-nested-loop joins*: :mod:`repro.query.planner` orders the
block's conjuncts by estimated selectivity (bound-column count, then
relation cardinality); each positive atom becomes an index probe on its
bound columns, equalities pin variables directly, every other conjunct
filters as early as its variables allow, and variables no atom guards
fall back to the active domain.  The ordering and the indexes change
complexity only, never semantics.

``naive=True`` (on :func:`evaluate`, :func:`answers`,
:func:`make_context`, and the engines built on them) is the escape hatch
to the reference semantics: no indexes, no planner — existential
candidates are narrowed by scanning each conjunct exactly as the
pre-index implementation did.  The differential test-suite pins the two
routes (and the SQLite backend) to identical answers.
"""

from __future__ import annotations

import threading
from functools import lru_cache
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.exceptions import QueryBindingError
from repro.obs import observe_cache
from repro.query.ast import (
    And,
    Atom,
    COMPARISON_OPS,
    Comparison,
    Const,
    EQUALITY_OPS,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    TrueFormula,
    Var,
    constants_of,
)
from repro.query.planner import (
    AtomStep,
    BindStep,
    BlockPlan,
    DomainStep,
    FilterStep,
    conjuncts_of,
    plan_block,
)
from repro.relational.domain import Value, values_comparable
from repro.relational.rows import Row

Binding = Dict[str, Value]

#: Sentinel distinguishing "unbound" from "bound to None" when saving a
#: shadowed binding around a quantifier.
_UNBOUND = object()

#: Cap on the constant-overlay views one context retains (each view
#: copies the active domain, so the map must not grow with the number
#: of distinct query constant sets a long-lived engine sees).
_MAX_VIEWS = 64

#: Cap on the cached block plans per context — same long-lived-engine
#: concern as ``_MAX_VIEWS``, far cheaper entries (no domain copies).
_MAX_PLANS = 256


class EvaluationContext:
    """Indexed view of a set of rows used during evaluation.

    Holds, per relation, the set of value tuples and the active domain
    (instance values plus any extra values, typically query constants).
    Building a context is linear in the data; hash indexes over column
    subsets and the join plans probing them materialize lazily on first
    use and are kept for the context's lifetime, so evaluating many
    queries against the same repair shares one context profitably.

    ``naive=True`` disables both the indexes and the planner: candidate
    narrowing falls back to full-relation scans (the reference
    implementation the indexed path is differentially tested against).
    """

    __slots__ = (
        "relations",
        "adom",
        "naive",
        "_indexes",
        "_plans",
        "_views",
        "_widths",
    )

    def __init__(
        self,
        rows: Iterable[Row],
        extra_domain: Iterable[Value] = (),
        naive: bool = False,
    ) -> None:
        relations: Dict[str, Set[Tuple[Value, ...]]] = {}
        adom: Set[Value] = set(extra_domain)
        for row in rows:
            relations.setdefault(row.relation, set()).add(row.values)
            adom.update(row.values)
        self.relations = relations
        self.adom = adom
        self.naive = naive
        #: (relation, positions) -> {projected values -> [tuples]}
        self._indexes: Dict[
            Tuple[str, Tuple[int, ...]],
            Dict[Tuple[Value, ...], List[Tuple[Value, ...]]],
        ] = {}
        #: (block variables, block body) -> BlockPlan
        self._plans: Dict[Tuple[Tuple[str, ...], Formula], BlockPlan] = {}
        #: extra-constant overlays sharing these indexes and plans
        self._views: Dict[FrozenSet[Value], "EvaluationContext"] = {}
        #: (relation, column) -> expected single-column probe width
        self._widths: Dict[Tuple[str, int], float] = {}

    def tuples_of(self, relation: str) -> Set[Tuple[Value, ...]]:
        return self.relations.get(relation, set())

    def cardinality(self, relation: str) -> int:
        return len(self.relations.get(relation, ()))

    def index(
        self, relation: str, positions: Tuple[int, ...]
    ) -> Dict[Tuple[Value, ...], List[Tuple[Value, ...]]]:
        """Hash index ``values at positions -> matching tuples`` (lazy).

        A single position is a plain column index; several positions
        form the multi-column index repeated atom patterns probe.
        """
        key = (relation, positions)
        index = self._indexes.get(key)
        if index is None:
            index = {}
            width = max(positions) + 1 if positions else 0
            for values in self.relations.get(relation, ()):
                if len(values) < width:
                    continue
                index.setdefault(
                    tuple(values[position] for position in positions), []
                ).append(values)
            self._indexes[key] = index
        return index

    def probe_width(self, relation: str, positions: Tuple[int, ...]) -> float:
        """Expected tuples returned by an index probe on ``positions``.

        Probes are keyed by values drawn from the data itself, so the
        per-column expectation weighs each bucket by its own size:
        ``Σ |b|² / N``.  A uniform column yields ``N / distinct``, while
        a 99%-one-key column yields nearly ``N`` — the skew signal the
        planner's raw cardinality estimate misses.  Multi-column probes
        are estimated by the most selective of their columns, so
        planning only ever materializes the (highly reusable)
        single-column statistics rather than speculative multi-column
        indexes for atoms that may never be chosen.  Empty position
        sets (no bound columns, i.e. a scan) cost the full cardinality.
        """
        total = self.cardinality(relation)
        if not positions or total == 0:
            return float(total)
        return min(
            self._column_width(relation, position) for position in positions
        )

    def _column_width(self, relation: str, position: int) -> float:
        key = (relation, position)
        width = self._widths.get(key)
        if width is None:
            index = self.index(relation, (position,))
            total = self.cardinality(relation)
            width = (
                sum(len(bucket) ** 2 for bucket in index.values()) / total
                if index
                else 0.0
            )
            self._widths[key] = width
        return width

    def with_constants(self, constants: FrozenSet[Value]) -> "EvaluationContext":
        """A view whose active domain also covers ``constants``.

        The view shares this context's relations, indexes, and plan
        cache; only the active domain differs.  Engines cache one base
        context per repair and overlay each query's constants through
        here, so the expensive structures are built once per repair.
        """
        if not constants:
            return self
        # Key views by the genuinely new values only, so constant sets
        # differing in already-covered values share one overlay.
        needed = frozenset(constants) - self.adom
        if not needed:
            return self
        view = self._views.get(needed)
        if view is None:
            if len(self._views) >= _MAX_VIEWS:
                self._views.pop(next(iter(self._views)))
            view = EvaluationContext.__new__(EvaluationContext)
            view.relations = self.relations
            view.adom = self.adom | needed
            view.naive = self.naive
            view._indexes = self._indexes
            view._plans = self._plans
            view._widths = self._widths
            # Own overlay map: re-overlaying a view must union with *its*
            # domain, not the base's.
            view._views = {}
            self._views[needed] = view
        return view

    def plan_for(self, variables: Tuple[str, ...], body: Formula) -> BlockPlan:
        """The (cached) selectivity-ordered join plan for one block."""
        key = (variables, body)
        plan = self._plans.get(key)
        if plan is None:
            if len(self._plans) >= _MAX_PLANS:
                self._plans.pop(next(iter(self._plans)))
            plan = plan_block(
                variables, body, self.cardinality, self.probe_width
            )
            self._plans[key] = plan
        return plan


class ContextCache:
    """Bounded, content-keyed cache of per-row-set evaluation contexts.

    Engines that evaluate many queries against recurring row sets (the
    repairs of one :class:`~repro.cqa.engine.CqaEngine` run, the
    re-assembled repairs of the incremental engine's re-validations)
    share contexts — and therefore indexes and plans — through one of
    these.  Keys are the frozen row sets themselves, so a repair that
    reappears after unrelated updates hits the same entry; eviction is
    FIFO once ``max_entries`` is reached.

    Get-or-create is thread-safe: the service broker's threaded front
    end can look up a context while another request thread evicts, so
    the dict mutations (including the constant-overlay bookkeeping)
    happen under one lock.  Evaluation against a returned context is
    not serialized — concurrent lazy index builds merely duplicate
    work, they never corrupt results.
    """

    __slots__ = (
        "naive", "max_entries", "_contexts", "_lock",
        "hits", "misses", "evictions",
    )

    def __init__(self, max_entries: int = 1024, naive: bool = False) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.naive = naive
        self.max_entries = max_entries
        self._contexts: Dict[FrozenSet[Row], EvaluationContext] = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock

    def __len__(self) -> int:
        # Size probe for tests and diagnostics; len() of a dict is
        # atomic under the GIL and staleness is harmless.
        return len(self._contexts)  # lint: unguarded-ok

    def context_for(
        self, rows: FrozenSet[Row], constants: FrozenSet[Value] = frozenset()
    ) -> EvaluationContext:
        """The shared context for ``rows``, overlaid with ``constants``."""
        with self._lock:
            base = self._contexts.get(rows)
            if base is None:
                self.misses += 1
                observe_cache("context", "miss")
                if len(self._contexts) >= self.max_entries:
                    self._contexts.pop(next(iter(self._contexts)))
                    self.evictions += 1
                    observe_cache("context", "eviction")
                base = EvaluationContext(rows, naive=self.naive)
                self._contexts[rows] = base
            else:
                self.hits += 1
                observe_cache("context", "hit")
            return base.with_constants(constants)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot, shaped like the other cache families'."""
        with self._lock:
            return {
                "entries": len(self._contexts),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


def _resolve(term, binding: Binding) -> Value:
    if isinstance(term, Const):
        return term.value
    value = binding.get(term.name)
    if value is None and term.name not in binding:
        raise QueryBindingError(f"unbound variable {term.name!r}")
    return value


def _compare(op: str, left: Value, right: Value) -> bool:
    if op in EQUALITY_OPS:
        return COMPARISON_OPS[op](left, right)
    if not values_comparable(left, right):
        return False
    return COMPARISON_OPS[op](left, right)


def _atom_holds(atom: Atom, context: EvaluationContext, binding: Binding) -> bool:
    values = tuple(_resolve(term, binding) for term in atom.terms)
    return values in context.tuples_of(atom.relation)


def _atom_matches(
    atom: Atom, context: EvaluationContext, binding: Binding
) -> Iterator[Dict[str, Value]]:
    """Bindings of ``atom``'s unbound variables, one per matching tuple.

    On an indexed context the candidate tuples come from a hash-index
    probe on the atom's bound columns (constants plus variables already
    in ``binding``); a naive context scans the relation.  Either way the
    matching checks are identical, including consistency of repeated
    variables.
    """
    arity = len(atom.terms)
    pool: Optional[Iterable[Tuple[Value, ...]]] = None
    if not context.naive:
        positions: List[int] = []
        bound_values: List[Value] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Const):
                positions.append(position)
                bound_values.append(term.value)
            elif term.name in binding:
                positions.append(position)
                bound_values.append(binding[term.name])
        if positions:
            pool = context.index(atom.relation, tuple(positions)).get(
                tuple(bound_values), ()
            )
    if pool is None:
        pool = context.tuples_of(atom.relation)
    for values in pool:
        if len(values) != arity:
            continue
        extracted: Dict[str, Value] = {}
        compatible = True
        for term, value in zip(atom.terms, values):
            if isinstance(term, Const):
                if term.value != value:
                    compatible = False
                    break
            else:
                name = term.name
                known = binding.get(name, extracted.get(name, _UNBOUND))
                if known is _UNBOUND:
                    extracted[name] = value
                elif known != value:
                    compatible = False
                    break
        if compatible:
            yield extracted


def _atom_candidates(
    atom: Atom, variable: str, context: EvaluationContext, binding: Binding
) -> Set[Value]:
    """Values ``variable`` can take so that ``atom`` may hold.

    An index probe on indexed contexts, a relation scan on naive ones
    (see :func:`_atom_matches`).
    """
    return {
        extracted[variable]
        for extracted in _atom_matches(atom, context, binding)
        if variable in extracted
    }


def _candidate_values(
    variable: str, body: Formula, context: EvaluationContext, binding: Binding
) -> Set[Value]:
    """Sound candidate set for an existential variable.

    Inspects the top-level conjuncts of ``body``: a positive atom or an
    equality pinning the variable restricts its possible values.  Falls
    back to the active domain when no conjunct constrains the variable.
    """
    best: Optional[Set[Value]] = None
    for conjunct in conjuncts_of(body):
        candidates: Optional[Set[Value]] = None
        if isinstance(conjunct, Atom) and variable in conjunct.free_variables():
            candidates = _atom_candidates(conjunct, variable, context, binding)
        elif isinstance(conjunct, Comparison) and conjunct.op == "=":
            left, right = conjunct.left, conjunct.right
            if isinstance(left, Var) and left.name == variable:
                other = right
            elif isinstance(right, Var) and right.name == variable:
                other = left
            else:
                continue
            if isinstance(other, Const):
                candidates = {other.value}
            elif other.name in binding:
                candidates = {binding[other.name]}
        if candidates is not None and (best is None or len(candidates) < len(best)):
            best = candidates
            if not best:
                return best
    return best if best is not None else set(context.adom)


def _run_plan(
    steps: Tuple, index: int, context: EvaluationContext, binding: Binding
) -> Iterator[Binding]:
    """Depth-first execution of a block plan; yields the live binding.

    Consumers must read the binding before advancing the iterator; on
    abandonment (early exit) closing the generator restores ``binding``
    through the ``finally`` blocks.
    """
    if index == len(steps):
        yield binding
        return
    step = steps[index]
    if type(step) is FilterStep:
        if _holds(step.formula, context, binding):
            yield from _run_plan(steps, index + 1, context, binding)
    elif type(step) is AtomStep:
        for extracted in _atom_matches(step.atom, context, binding):
            binding.update(extracted)
            try:
                yield from _run_plan(steps, index + 1, context, binding)
            finally:
                for name in extracted:
                    del binding[name]
    elif type(step) is BindStep:
        binding[step.variable] = _resolve(step.source, binding)
        try:
            yield from _run_plan(steps, index + 1, context, binding)
        finally:
            del binding[step.variable]
    else:  # DomainStep
        for value in context.adom:
            binding[step.variable] = value
            try:
                yield from _run_plan(steps, index + 1, context, binding)
            finally:
                del binding[step.variable]


def _flatten_exists(formula: Exists) -> Tuple[Tuple[str, ...], Formula]:
    """Merge directly nested EXISTS blocks into one planning block.

    Stops at a block reusing a name already taken (shadowing) — the
    inner block then stays a filter conjunct with its own scope.
    """
    variables = list(formula.variables)
    taken = set(variables) | formula.free_variables()
    body: Formula = formula.body
    while isinstance(body, Exists) and not (set(body.variables) & taken):
        variables.extend(body.variables)
        taken.update(body.variables)
        body = body.body
    return tuple(variables), body


def _exists_planned(
    formula: Exists, context: EvaluationContext, binding: Binding
) -> bool:
    variables, body = _flatten_exists(formula)
    plan = context.plan_for(variables, body)
    shadowed = {
        name: binding.pop(name) for name in plan.variables if name in binding
    }
    walker = _run_plan(plan.steps, 0, context, binding)
    try:
        for _ in walker:
            return True
        return False
    finally:
        walker.close()
        binding.update(shadowed)


def _exists_naive(
    formula: Exists, context: EvaluationContext, binding: Binding
) -> bool:
    variable, rest = formula.variables[0], formula.variables[1:]
    remainder: Formula = Exists(rest, formula.body) if rest else formula.body
    # Pop the whole block, not just the first variable: candidate
    # narrowing inspects the body, and an outer binding shadowed by a
    # *later* block variable must not constrain the candidates.
    shadowed = {
        name: binding.pop(name) for name in formula.variables if name in binding
    }
    try:
        for value in _candidate_values(variable, formula.body, context, binding):
            binding[variable] = value
            try:
                if _holds(remainder, context, binding):
                    return True
            finally:
                del binding[variable]
        return False
    finally:
        binding.update(shadowed)


@lru_cache(maxsize=256)
def violation_body(body: Formula) -> Formula:
    """``NOT body`` with negations pushed inward to expose generators.

    The dual "violation search" plan for universal quantification:
    ``FORALL x . φ`` holds iff ``EXISTS x . ¬φ`` does not, and pushing
    the negation through implications, disjunctions and conjunctions
    turns guard atoms into *positive* top-level conjuncts the planner
    can generate bindings from — ``FORALL x . R(x) IMPLIES ψ`` becomes a
    search over ``R`` for a falsifying tuple instead of a loop over the
    whole active domain.  Every rewrite is a classical equivalence, and
    order comparisons are left under their negation (``NOT (a < b)`` is
    *not* ``a >= b`` on uninterpreted names, where both order atoms are
    false), so active-domain semantics are preserved exactly.
    """
    if isinstance(body, Not):
        return body.body
    if isinstance(body, Implies):
        return And((body.antecedent, violation_body(body.consequent)))
    if isinstance(body, Or):
        return And(tuple(violation_body(part) for part in body.parts))
    if isinstance(body, And):
        return Or(tuple(violation_body(part) for part in body.parts))
    if isinstance(body, TrueFormula):
        return FalseFormula()
    if isinstance(body, FalseFormula):
        return TrueFormula()
    if isinstance(body, Comparison) and body.op in EQUALITY_OPS:
        return body.negated()
    if isinstance(body, Forall):
        return Exists(body.variables, violation_body(body.body))
    if isinstance(body, Exists):
        return Forall(body.variables, violation_body(body.body))
    # Atoms and order comparisons stay under the negation: a negated
    # atom is a filter either way, and order operators are asymmetric
    # on mixed domains (see above).
    return Not(body)


def _holds(formula: Formula, context: EvaluationContext, binding: Binding) -> bool:
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, FalseFormula):
        return False
    if isinstance(formula, Atom):
        return _atom_holds(formula, context, binding)
    if isinstance(formula, Comparison):
        return _compare(
            formula.op,
            _resolve(formula.left, binding),
            _resolve(formula.right, binding),
        )
    if isinstance(formula, Not):
        return not _holds(formula.body, context, binding)
    if isinstance(formula, And):
        return all(_holds(part, context, binding) for part in formula.parts)
    if isinstance(formula, Or):
        return any(_holds(part, context, binding) for part in formula.parts)
    if isinstance(formula, Implies):
        return not _holds(formula.antecedent, context, binding) or _holds(
            formula.consequent, context, binding
        )
    if isinstance(formula, Exists):
        if context.naive:
            return _exists_naive(formula, context, binding)
        return _exists_planned(formula, context, binding)
    if isinstance(formula, Forall):
        if not context.naive:
            # Dual plan: search for one falsifying binding through the
            # planned existential machinery (index probes on the guard
            # atoms) instead of enumerating |adom|^k candidates.
            falsifier = Exists(formula.variables, violation_body(formula.body))
            return not _exists_planned(falsifier, context, binding)
        variable, rest = formula.variables[0], formula.variables[1:]
        remainder = Forall(rest, formula.body) if rest else formula.body
        shadowed = binding.pop(variable, _UNBOUND)
        try:
            for value in context.adom:
                binding[variable] = value
                try:
                    if not _holds(remainder, context, binding):
                        return False
                finally:
                    del binding[variable]
            return True
        finally:
            if shadowed is not _UNBOUND:
                binding[variable] = shadowed
    raise TypeError(f"unknown formula node {formula!r}")


def make_context(
    rows: Iterable[Row],
    query: Optional[Formula] = None,
    naive: bool = False,
) -> EvaluationContext:
    """Build an evaluation context for ``rows`` (plus query constants)."""
    extra = constants_of(query) if query is not None else ()
    return EvaluationContext(rows, extra, naive=naive)


def evaluate(
    formula: Formula,
    rows: Iterable[Row],
    binding: Optional[Mapping[str, Value]] = None,
    context: Optional[EvaluationContext] = None,
    naive: bool = False,
) -> bool:
    """Whether the (possibly pre-bound) formula holds in the given rows.

    ``rows`` may be any iterable of :class:`Row` (an instance, a repair,
    a database's :meth:`all_rows`).  Free variables must be covered by
    ``binding``.  ``naive=True`` routes to the scan-based reference
    semantics (ignored when an explicit ``context`` carries the choice).
    """
    if context is None:
        context = make_context(rows, formula, naive=naive)
    working: Binding = dict(binding) if binding else {}
    missing = formula.free_variables() - set(working)
    if missing:
        raise QueryBindingError(f"unbound free variables: {sorted(missing)}")
    return _holds(formula, context, working)


def _enumerate_bindings(
    variables: Tuple[str, ...],
    formula: Formula,
    context: EvaluationContext,
    binding: Binding,
) -> Iterator[Binding]:
    if not variables:
        if _holds(formula, context, binding):
            yield dict(binding)
        return
    variable, rest = variables[0], variables[1:]
    for value in _candidate_values(variable, formula, context, binding):
        binding[variable] = value
        yield from _enumerate_bindings(rest, formula, context, binding)
        del binding[variable]


def answers(
    formula: Formula,
    rows: Iterable[Row],
    variables: Optional[Tuple[str, ...]] = None,
    context: Optional[EvaluationContext] = None,
    naive: bool = False,
) -> FrozenSet[Tuple[Value, ...]]:
    """Answer set of an open formula: satisfying assignments to ``variables``.

    ``variables`` defaults to the sorted free variables of the formula;
    pass an explicit tuple to control answer-column order.  Free
    variables omitted from ``variables`` are projected away
    (existentially): the answer keeps each combination of the requested
    columns that some extension satisfies.

    On an indexed context the answer variables, the projected variables,
    and any peeled existential prefix are enumerated by one ordered
    index-nested-loop join plan; ``naive=True`` (or a naive context)
    uses per-variable candidate narrowing instead.
    """
    if variables is None:
        variables = tuple(sorted(formula.free_variables()))
    unknown = set(variables) - formula.free_variables()
    if unknown:
        raise QueryBindingError(
            f"answer variables {sorted(unknown)} are not free in the formula"
        )
    projected = tuple(sorted(formula.free_variables() - set(variables)))
    # Peel top-level existential blocks into projected columns: ∃ and
    # projection coincide, and enumerating the quantified variables
    # up front lets the join plan (or the conjunct-guided narrowing)
    # see the body's atoms — with the Exists left in place the root
    # formula has no top-level atom conjuncts and every *free* variable
    # would range over the whole active domain.
    body = formula
    taken = set(variables) | set(projected)
    peeled: List[str] = []
    while isinstance(body, Exists) and not (set(body.variables) & taken):
        peeled.extend(body.variables)
        taken |= set(body.variables)
        body = body.body
    if context is None:
        context = make_context(rows, formula, naive=naive)
    targets = tuple(variables) + projected + tuple(peeled)
    results: List[Tuple[Value, ...]] = []
    if context.naive:
        for binding in _enumerate_bindings(targets, body, context, {}):
            results.append(tuple(binding[name] for name in variables))
    else:
        plan = context.plan_for(targets, body)
        for binding in _run_plan(plan.steps, 0, context, {}):
            results.append(tuple(binding[name] for name in variables))
    return frozenset(results)
