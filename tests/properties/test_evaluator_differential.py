"""Differential fuzz harness: naive vs indexed vs SQLite evaluation.

The indexing layer and the conjunct-ordering planner change the cost of
query evaluation, never its answers — and the SQLite backend computes
certain answers by a completely independent rewriting.  This harness
pins all three routes to the same results on hypothesis-generated
databases, functional dependencies, queries, and repair families:

* **naive** — ``CqaEngine(..., naive=True)``: scan-based candidate
  narrowing, no indexes, no planner (the reference semantics);
* **indexed** — the default engine: per-(relation, column) hash
  indexes probed in the planner's selectivity order, contexts shared
  across repairs;
* **sqlite** — ``SqlCqaEngine`` over a persisted copy; rewritable
  shapes run as one pushed-down SQL query, everything else exercises
  the fallback (itself an independent indexed engine instance).

Queries cover the rewritable fragment *and* the shapes outside it
(disjunction, negation, universal quantification, dirty self-joins),
so both the pushdown and the fallback are differentially checked.
"""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import SqlCqaEngine
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.priorities.builders import priority_from_ranking
from repro.query.ast import And, Atom, Comparison, Exists, Forall, Implies, Not, Or, Var
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.rows import sorted_rows
from repro.relational.schema import RelationSchema
from repro.relational.sqlite_io import save_database

R_SCHEMA = RelationSchema("R", ["K", "A:number", "B"])
S_SCHEMA = RelationSchema("S", ["A:number", "C"])

FD_VARIANTS = {
    "key-like": [FunctionalDependency.parse("K -> A", "R")],
    "merged-rhs": [FunctionalDependency.parse("K -> A, B", "R")],
    "multi-lhs": [
        FunctionalDependency.parse("K -> A", "R"),
        FunctionalDependency.parse("B -> A", "R"),
    ],
}


def _r(*terms):
    return Atom("R", list(terms))


def _s(*terms):
    return Atom("S", list(terms))


x, y, z, c = Var("x"), Var("y"), Var("z"), Var("c")

#: Open query pool: rewritable shapes and deliberately un-rewritable
#: ones (the SQLite engine must fall back and still agree).
OPEN_QUERIES = [
    ("atom", _r(x, y, z)),
    ("projection", Exists(["z"], _r(x, y, z))),
    ("selection", Exists(["z"], And([_r(x, y, z), Comparison(">=", y, 1)]))),
    ("mixed-order", Exists(["z"], And([_r(x, y, z), Comparison("<", x, 1)]))),
    ("clean-join", Exists(["z"], And([_r(x, y, z), _s(y, c)]))),
    ("disjunction", Exists(["z"], Or([_r(x, y, z), _r(x, y, z)]))),
    (
        "negation",
        Exists(["z"], And([_r(x, y, z), Not(_s(y, "c0"))])),
    ),
    (
        "dirty-self-join",
        Exists(
            ["z", "y2", "z2"],
            And([_r(x, y, z), _r(x, Var("y2"), Var("z2"))]),
        ),
    ),
]

CLOSED_QUERIES = [
    ("exists", Exists(["k", "a", "b"], _r(Var("k"), Var("a"), Var("b")))),
    (
        "exists-selected",
        Exists(
            ["k", "a", "b"],
            And([_r(Var("k"), Var("a"), Var("b")), Comparison(">", Var("a"), 0)]),
        ),
    ),
    (
        "forall",
        Forall(
            ["k", "a", "b"],
            Implies(_r(Var("k"), Var("a"), Var("b")), Comparison("<", Var("a"), 2)),
        ),
    ),
    (
        "negated-ground",
        Not(Exists(["b"], _r("k0", 2, Var("b")))),
    ),
    (
        "join-closed",
        Exists(
            ["k", "a", "b", "cc"],
            And([_r(Var("k"), Var("a"), Var("b")), _s(Var("a"), Var("cc"))]),
        ),
    ),
]

ALL_FAMILIES = list(Family)


@st.composite
def databases(draw):
    r_rows = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["k0", "k1", "k2"]),
                st.integers(min_value=0, max_value=2),
                st.sampled_from(["k0", "u", "v"]),
            ),
            max_size=7,
            unique=True,
        )
    )
    s_rows = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.sampled_from(["c0", "c1"]),
            ),
            max_size=3,
            unique=True,
        )
    )
    return Database(
        [
            RelationInstance.from_values(R_SCHEMA, r_rows),
            RelationInstance.from_values(S_SCHEMA, s_rows),
        ]
    )


def _sqlite_engine(database, dependencies, family=Family.REP):
    connection = sqlite3.connect(":memory:")
    save_database(database, connection, dependencies)
    return SqlCqaEngine(connection, dependencies, family=family)


class TestOpenQueriesAgreeAcrossRoutes:
    @pytest.mark.parametrize("variant", sorted(FD_VARIANTS), ids=str)
    @given(databases())
    @settings(max_examples=20, deadline=None)
    def test_all_three_routes_agree(self, variant, database):
        dependencies = FD_VARIANTS[variant]
        naive = CqaEngine(database, dependencies, naive=True)
        indexed = CqaEngine(database, dependencies)
        with _sqlite_engine(database, dependencies) as pushed:
            for label, formula in OPEN_QUERIES:
                reference = naive.certain_answers(formula)
                fast = indexed.certain_answers(formula)
                assert reference.route == "naive" and fast.route == "indexed"
                assert fast.certain == reference.certain, (label, variant)
                assert fast.possible == reference.possible, (label, variant)
                assert fast.variables == reference.variables, (label, variant)
                sql_result = pushed.certain_answers(formula)
                assert sql_result.certain == reference.certain, (
                    label,
                    variant,
                    pushed.last_route,
                )
                assert sql_result.possible == reference.possible, (
                    label,
                    variant,
                    pushed.last_route,
                )
                if pushed.last_route == "sqlite":
                    assert sql_result.route == "sqlite", label


class TestClosedQueriesAgreeAcrossRoutes:
    @pytest.mark.parametrize("variant", sorted(FD_VARIANTS), ids=str)
    @given(databases())
    @settings(max_examples=20, deadline=None)
    def test_verdicts_agree(self, variant, database):
        dependencies = FD_VARIANTS[variant]
        naive = CqaEngine(database, dependencies, naive=True)
        indexed = CqaEngine(database, dependencies)
        with _sqlite_engine(database, dependencies) as pushed:
            for label, formula in CLOSED_QUERIES:
                reference = naive.answer(formula)
                fast = indexed.answer(formula)
                assert fast.verdict is reference.verdict, (label, variant)
                assert fast.repairs_considered == reference.repairs_considered
                assert fast.satisfying == reference.satisfying, (label, variant)
                assert (
                    pushed.answer(formula).verdict is reference.verdict
                ), (label, variant, pushed.last_route)


class TestAllRepairFamiliesAgree:
    """Per-family agreement, including under a declared priority.

    With a priority the SQLite engine falls back to in-memory streaming
    (its own indexed engine) — the assertion still pins all three code
    paths together, now with the preferred-family filters active.
    """

    @given(databases())
    @settings(max_examples=8, deadline=None)
    def test_families_without_priority(self, database):
        dependencies = FD_VARIANTS["key-like"]
        query = Exists(["z"], _r(x, y, z))
        for family in ALL_FAMILIES:
            naive = CqaEngine(database, dependencies, family=family, naive=True)
            indexed = CqaEngine(database, dependencies, family=family)
            reference = naive.certain_answers(query)
            fast = indexed.certain_answers(query)
            assert fast.certain == reference.certain, family
            assert fast.possible == reference.possible, family
            with _sqlite_engine(database, dependencies, family) as pushed:
                sql_result = pushed.certain_answers(query)
            assert sql_result.certain == reference.certain, family
            assert sql_result.possible == reference.possible, family

    @given(databases())
    @settings(max_examples=8, deadline=None)
    def test_families_with_priority(self, database):
        dependencies = FD_VARIANTS["key-like"]
        query = Exists(["z"], _r(x, y, z))
        closed = Exists(["k", "b"], _r(Var("k"), 1, Var("b")))
        for family in ALL_FAMILIES:
            graph_probe = CqaEngine(database, dependencies)
            position = {
                row: index
                for index, row in enumerate(
                    sorted_rows(graph_probe.graph.vertices)
                )
            }
            priority = priority_from_ranking(
                graph_probe.graph, lambda row: -position[row]
            )
            edges = list(priority.edges)
            naive = CqaEngine(database, dependencies, edges, family, naive=True)
            indexed = CqaEngine(database, dependencies, edges, family)
            reference = naive.certain_answers(query)
            fast = indexed.certain_answers(query)
            assert fast.certain == reference.certain, family
            assert fast.possible == reference.possible, family
            assert naive.answer(closed).verdict is indexed.answer(closed).verdict
            if edges:
                with _sqlite_engine(database, dependencies, family) as pushed:
                    pushed.priority_edges = tuple(edges)
                    sql_result = pushed.certain_answers(query)
                    assert pushed.last_route.startswith("fallback: priority")
                assert sql_result.certain == reference.certain, family
                assert sql_result.possible == reference.possible, family
