"""Unit and property tests for repair enumeration."""

from hypothesis import given, settings

from repro.constraints.conflict_graph import build_conflict_graph
from repro.datagen.generators import GRID_FDS, chain_instance, CHAIN_FDS, grid_instance
from repro.datagen.paper_instances import example4_scenario, mgr_scenario
from repro.repairs.checking import is_repair_on_graph
from repro.repairs.enumerate import (
    all_repairs,
    count_repairs,
    enumerate_repairs,
    repairs_capped,
)
from tests.conftest import key_instances, two_fd_instances


class TestPaperExamples:
    def test_example4_repair_count_is_2_to_n(self):
        for n in range(1, 7):
            graph = build_conflict_graph(
                example4_scenario(n).instance, GRID_FDS
            )
            repairs = list(enumerate_repairs(graph))
            assert len(repairs) == 2**n
            assert count_repairs(graph) == 2**n

    def test_example4_repairs_are_choice_functions(self):
        graph = build_conflict_graph(example4_scenario(3).instance, GRID_FDS)
        for repair in enumerate_repairs(graph):
            keys = sorted(row["A"] for row in repair)
            assert keys == [0, 1, 2]  # exactly one tuple per key value

    def test_mgr_has_three_repairs(self):
        scenario = mgr_scenario()
        repairs = set(enumerate_repairs(scenario.graph))
        assert repairs == {
            scenario.row_set("mary_rd", "john_pr"),
            scenario.row_set("john_rd", "mary_it"),
            scenario.row_set("mary_it", "john_pr"),
        }

    def test_chain_repairs_follow_fibonacci(self):
        # Maximal independent sets of the path P_n: 1,2,2,3,4,5,7,...
        expected = {1: 1, 2: 2, 3: 2, 4: 3, 5: 4, 6: 5, 7: 7}
        for n, count in expected.items():
            graph = build_conflict_graph(chain_instance(n), CHAIN_FDS)
            assert count_repairs(graph) == count, f"n={n}"


class TestProperties:
    def test_empty_graph_single_empty_repair(self):
        graph = build_conflict_graph(grid_instance(0), GRID_FDS)
        assert list(enumerate_repairs(graph)) == [frozenset()]

    def test_consistent_instance_repairs_to_itself(self):
        instance = grid_instance(3, per_group=1)
        graph = build_conflict_graph(instance, GRID_FDS)
        assert list(enumerate_repairs(graph)) == [instance.rows]

    @given(key_instances())
    @settings(max_examples=60, deadline=None)
    def test_every_enumerated_set_is_a_repair(self, instance):
        graph = build_conflict_graph(instance, GRID_FDS)
        repairs = list(enumerate_repairs(graph))
        assert repairs, "P1 for Rep: at least one repair"
        for repair in repairs:
            assert is_repair_on_graph(repair, graph)

    @given(key_instances())
    @settings(max_examples=60, deadline=None)
    def test_no_duplicates_and_count_matches(self, instance):
        graph = build_conflict_graph(instance, GRID_FDS)
        repairs = list(enumerate_repairs(graph))
        assert len(set(repairs)) == len(repairs)
        assert count_repairs(graph) == len(repairs)

    @given(two_fd_instances())
    @settings(max_examples=60, deadline=None)
    def test_variants_agree(self, instance):
        from repro.constraints.fd import FunctionalDependency

        fds = (
            FunctionalDependency.parse("A -> B", "R"),
            FunctionalDependency.parse("C -> D", "R"),
        )
        graph = build_conflict_graph(instance, fds)
        baseline = set(enumerate_repairs(graph))
        assert set(enumerate_repairs(graph, factor_components=False)) == baseline
        assert set(enumerate_repairs(graph, pivoting=False)) == baseline
        assert (
            set(enumerate_repairs(graph, factor_components=False, pivoting=False))
            == baseline
        )

    def test_all_repairs_convenience(self):
        scenario = mgr_scenario()
        assert len(all_repairs(scenario.instance, scenario.dependencies)) == 3

    def test_repairs_capped(self):
        graph = build_conflict_graph(example4_scenario(10).instance, GRID_FDS)
        assert len(repairs_capped(graph, 16)) == 16


class TestCappedAndCounted:
    """Example-4 style coverage for repairs_capped and count_repairs."""

    def test_capped_below_total_stops_early(self):
        graph = build_conflict_graph(example4_scenario(6).instance, GRID_FDS)
        capped = repairs_capped(graph, 5)
        assert len(capped) == 5
        assert len(set(capped)) == 5
        for repair in capped:
            assert is_repair_on_graph(repair, graph)

    def test_capped_above_total_returns_everything(self):
        graph = build_conflict_graph(example4_scenario(3).instance, GRID_FDS)
        capped = repairs_capped(graph, 1000)
        assert sorted(capped, key=repr) == sorted(
            enumerate_repairs(graph), key=repr
        )

    def test_capped_at_exact_total(self):
        graph = build_conflict_graph(example4_scenario(4).instance, GRID_FDS)
        assert len(repairs_capped(graph, 16)) == 16

    def test_count_scales_without_enumeration_blowup(self):
        # 2^60 repairs: countable through component factoring although
        # enumeration could never finish.
        graph = build_conflict_graph(example4_scenario(60).instance, GRID_FDS)
        assert count_repairs(graph) == 2**60

    def test_count_with_isolated_tuples(self):
        instance = grid_instance(3, per_group=1).union(
            example4_scenario(2).instance
        )
        graph = build_conflict_graph(instance, GRID_FDS)
        assert count_repairs(graph) == 4

    def test_count_empty_graph_is_one(self):
        graph = build_conflict_graph(grid_instance(0), GRID_FDS)
        assert count_repairs(graph) == 1
