"""Priorities: acyclic orientations of the conflict graph (Definition 2).

A priority ``≻`` is a binary relation on the tuples of the instance that
(i) relates only *conflicting* tuples and (ii) is acyclic (no ``x ≻* x``
through the transitive closure).  ``x ≻ y`` reads "x dominates y": when
forced to choose, the user prefers to keep ``x`` and drop ``y``.

Extending a priority orients further conflict edges; a priority that
cannot be extended is *total* (every conflict edge oriented).  The class
also decides the side condition of Theorem 2 — whether the priority can
be extended to a *cyclic* orientation of the conflict graph — via mixed-
graph reachability.
"""

from __future__ import annotations

from collections import deque
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.constraints.conflict_graph import ConflictGraph
from repro.constraints.conflicts import ConflictEdge, edge
from repro.exceptions import CyclicPriorityError, NonConflictingPriorityError
from repro.relational.rows import Row, sorted_rows

#: A directed priority edge: (winner, loser) meaning winner ≻ loser.
PriorityEdge = Tuple[Row, Row]


class Priority:
    """An immutable priority relation over a fixed conflict graph."""

    __slots__ = ("graph", "edges", "_winners_over", "_losers_to")

    def __init__(self, graph: ConflictGraph, edges: Iterable[PriorityEdge] = ()) -> None:
        self.graph = graph
        self.edges: FrozenSet[PriorityEdge] = frozenset(edges)
        winners_over: Dict[Row, Set[Row]] = {}
        losers_to: Dict[Row, Set[Row]] = {}
        for winner, loser in self.edges:
            if not graph.are_conflicting(winner, loser):
                raise NonConflictingPriorityError(
                    f"priority relates non-conflicting tuples {winner!r} and {loser!r}"
                )
            winners_over.setdefault(loser, set()).add(winner)
            losers_to.setdefault(winner, set()).add(loser)
        self._winners_over = {row: frozenset(s) for row, s in winners_over.items()}
        self._losers_to = {row: frozenset(s) for row, s in losers_to.items()}
        self._assert_acyclic()

    def _assert_acyclic(self) -> None:
        # Iterative DFS with colouring over the priority digraph.
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[Row, int] = {}
        for start in self._losers_to:
            if colour.get(start, WHITE) != WHITE:
                continue
            stack: List[Tuple[Row, Iterator[Row]]] = [
                (start, iter(self._losers_to.get(start, ())))
            ]
            colour[start] = GREY
            while stack:
                vertex, children = stack[-1]
                advanced = False
                for child in children:
                    state = colour.get(child, WHITE)
                    if state == GREY:
                        raise CyclicPriorityError(
                            f"priority contains a cycle through {child!r}"
                        )
                    if state == WHITE:
                        colour[child] = GREY
                        stack.append((child, iter(self._losers_to.get(child, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[vertex] = BLACK
                    stack.pop()

    # Core relation ----------------------------------------------------------

    def dominates(self, winner: Row, loser: Row) -> bool:
        """Whether ``winner ≻ loser`` (the base relation, not its closure)."""
        return (winner, loser) in self.edges

    def dominators_of(self, row: Row) -> FrozenSet[Row]:
        """All tuples that dominate ``row``."""
        return self._winners_over.get(row, frozenset())

    def dominated_by(self, row: Row) -> FrozenSet[Row]:
        """All tuples that ``row`` dominates."""
        return self._losers_to.get(row, frozenset())

    def oriented_edges(self) -> FrozenSet[ConflictEdge]:
        """Conflict edges that carry an orientation."""
        return frozenset(edge(winner, loser) for winner, loser in self.edges)

    def unoriented_edges(self) -> List[ConflictEdge]:
        """Conflict edges without an orientation (extension points)."""
        oriented = self.oriented_edges()
        return [pair for pair in self.graph.edges() if pair not in oriented]

    @property
    def is_total(self) -> bool:
        """Whether every conflict edge is oriented (cannot be extended)."""
        return len(self.edges) == self.graph.edge_count

    @property
    def is_empty(self) -> bool:
        return not self.edges

    # Extension machinery ------------------------------------------------------

    def extend(self, additional: Iterable[PriorityEdge]) -> "Priority":
        """The priority extended by further orientations (``Φ ⊆ Ψ``).

        Raises if the result orients a non-conflict pair, re-orients an
        already-oriented edge in the opposite direction (that would be a
        2-cycle), or introduces any cycle.
        """
        return Priority(self.graph, self.edges | frozenset(additional))

    def is_extension_of(self, other: "Priority") -> bool:
        """Whether this priority extends ``other`` (``other ⊆ self``)."""
        return self.graph == other.graph and self.edges >= other.edges

    def total_extensions(self, limit: Optional[int] = None) -> Iterator["Priority"]:
        """All total acyclic extensions of this priority.

        Backtracks over the unoriented conflict edges, maintaining
        reachability incrementally through trial construction; the
        number of total extensions can be exponential, so an optional
        ``limit`` caps the enumeration.
        """
        free = [tuple(sorted_rows(pair)) for pair in self.unoriented_edges()]
        free.sort(key=repr)
        produced = 0

        def backtrack(index: int, chosen: List[PriorityEdge]) -> Iterator["Priority"]:
            nonlocal produced
            if limit is not None and produced >= limit:
                return
            if index == len(free):
                try:
                    candidate = self.extend(chosen)
                except CyclicPriorityError:
                    return
                produced += 1
                yield candidate
                return
            first, second = free[index]
            for directed in ((first, second), (second, first)):
                chosen.append(directed)
                # Prune: partial orientations that are already cyclic can
                # never be completed acyclically.
                if not _creates_cycle(self, chosen):
                    yield from backtrack(index + 1, chosen)
                chosen.pop()

        yield from backtrack(0, [])

    def some_total_extension(self) -> "Priority":
        """One canonical total extension (orient free edges along a
        deterministic topological-ish vertex order)."""
        order = _extension_order(self)
        position = {row: pos for pos, row in enumerate(order)}
        additional = []
        for pair in self.unoriented_edges():
            first, second = tuple(pair)
            if position[first] < position[second]:
                additional.append((first, second))
            else:
                additional.append((second, first))
        return self.extend(additional)

    # Theorem 2 side condition ---------------------------------------------------

    def extendable_to_cyclic_orientation(self) -> bool:
        """Whether some orientation of *all* conflict edges extending this
        priority contains a directed cycle.

        Mixed-graph argument: a cyclic extension exists iff either the
        unoriented subgraph alone contains a (graph) cycle — orient it
        around — or some oriented edge ``u → v`` closes with a mixed
        path from ``v`` back to ``u`` (oriented edges forward, free
        edges either way).  Shortest mixed paths are simple, so the
        witness cycle never reuses an edge.
        """
        free_adj: Dict[Row, Set[Row]] = {row: set() for row in self.graph.vertices}
        for pair in self.unoriented_edges():
            first, second = tuple(pair)
            free_adj[first].add(second)
            free_adj[second].add(first)
        if _undirected_has_cycle(free_adj):
            return True
        for winner, loser in self.edges:
            if self._mixed_reaches(loser, winner, free_adj):
                return True
        return False

    def _mixed_reaches(
        self, source: Row, target: Row, free_adj: Dict[Row, Set[Row]]
    ) -> bool:
        seen = {source}
        queue = deque([source])
        while queue:
            vertex = queue.popleft()
            if vertex == target:
                return True
            successors = set(self._losers_to.get(vertex, frozenset()))
            successors |= free_adj.get(vertex, set())
            for nxt in successors:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    def dominance_rows(self) -> Tuple[PriorityEdge, ...]:
        """The dominator index flattened to deterministic edge rows.

        Every ``winner ≻ loser`` pair, ordered by the library's row
        listing order — the export the SQL pushdown layer
        (:mod:`repro.prefsql.edges`) materializes into its
        ``_repro_edges`` side table.
        """
        return tuple(sorted(self.edges))

    # Misc -----------------------------------------------------------------------

    def restricted_to(self, rows: AbstractSet[Row]) -> "Priority":
        """Priority induced on a subset of tuples (subgraph priority)."""
        sub = self.graph.induced(rows)
        kept = [
            (winner, loser)
            for winner, loser in self.edges
            if winner in rows and loser in rows
        ]
        return Priority(sub, kept)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Priority):
            return NotImplemented
        return self.graph == other.graph and self.edges == other.edges

    def __hash__(self) -> int:
        return hash((self.graph, self.edges))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Priority({len(self.edges)}/{self.graph.edge_count} edges oriented)"


def digraph_has_cycle(edges: Iterable[PriorityEdge]) -> bool:
    """Whether the ``(winner, loser)`` digraph contains a directed cycle.

    The shared colouring DFS behind priority-extension pruning, the
    incremental engine's declared-edge check, and the SQL pushdown's
    edge validation.
    """
    adjacency: Dict[Row, Set[Row]] = {}
    for winner, loser in edges:
        adjacency.setdefault(winner, set()).add(loser)
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[Row, int] = {}

    def visit(start: Row) -> bool:
        stack: List[Tuple[Row, Iterator[Row]]] = [
            (start, iter(adjacency.get(start, ())))
        ]
        colour[start] = GREY
        while stack:
            vertex, children = stack[-1]
            advanced = False
            for child in children:
                state = colour.get(child, WHITE)
                if state == GREY:
                    return True
                if state == WHITE:
                    colour[child] = GREY
                    stack.append((child, iter(adjacency.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                colour[vertex] = BLACK
                stack.pop()
        return False

    return any(
        colour.get(vertex, WHITE) == WHITE and visit(vertex) for vertex in adjacency
    )


def _creates_cycle(base: Priority, extra: Sequence[PriorityEdge]) -> bool:
    """Whether base edges plus ``extra`` contain a directed cycle."""
    return digraph_has_cycle(list(base.edges) + list(extra))


def _undirected_has_cycle(adjacency: Dict[Row, Set[Row]]) -> bool:
    """Cycle detection in an undirected graph via union-find."""
    parent: Dict[Row, Row] = {}

    def find(row: Row) -> Row:
        parent.setdefault(row, row)
        while parent[row] != row:
            parent[row] = parent[parent[row]]
            row = parent[row]
        return row

    seen_edges: Set[FrozenSet[Row]] = set()
    for vertex, neighbours in adjacency.items():
        for other in neighbours:
            pair = frozenset((vertex, other))
            if pair in seen_edges:
                continue
            seen_edges.add(pair)
            root_a, root_b = find(vertex), find(other)
            if root_a == root_b:
                return True
            parent[root_a] = root_b
    return False


def _extension_order(priority: Priority) -> List[Row]:
    """A vertex order consistent with the priority (topological order of
    the priority digraph, deterministic tie-break)."""
    indegree: Dict[Row, int] = {row: 0 for row in priority.graph.vertices}
    for _, loser in priority.edges:
        indegree[loser] += 1
    ready = sorted_rows([row for row, deg in indegree.items() if deg == 0])
    order: List[Row] = []
    ready_set = list(ready)
    while ready_set:
        vertex = ready_set.pop(0)
        order.append(vertex)
        for loser in sorted_rows(priority.dominated_by(vertex)):
            indegree[loser] -= 1
            if indegree[loser] == 0:
                ready_set.append(loser)
    return order


def empty_priority(graph: ConflictGraph) -> Priority:
    """The empty priority ``Φ = ∅`` over the conflict graph."""
    return Priority(graph, ())
