"""Consistent query answering over denial constraints (paper Section 6).

The paper's closing generalization: replace the conflict graph with a
conflict *hypergraph* [6] so that denial constraints — where a single
violation can involve more than two tuples, possibly across relations —
are supported.  Repairs are the maximal subsets containing no full
hyperedge; consistent answers keep Definition 3's shape (true iff true
in every repair).

Priorities are deliberately *not* lifted here: the paper notes that
with hyperedges "the current notion of priority does not have a clear
meaning", so this engine serves the classic ``Rep`` family only.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.obs import annotate, observe_query
from repro.obs import span as obs_span
from repro.constraints.denial import (
    ConflictHypergraph,
    DenialConstraint,
    build_conflict_hypergraph,
)
from repro.core.families import Family
from repro.cqa.answers import ClosedAnswer, OpenAnswers, Verdict
from repro.exceptions import QueryError
from repro.query.ast import Formula, constants_of
from repro.query.evaluator import ContextCache
from repro.query.evaluator import answers as evaluate_answers
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row


class DenialCqaEngine:
    """Consistent answers w.r.t. a set of denial constraints."""

    def __init__(
        self,
        data: Union[RelationInstance, Database, Iterable[Row]],
        constraints: Sequence[DenialConstraint],
        naive: bool = False,
    ) -> None:
        if isinstance(data, RelationInstance):
            rows = data.rows
        elif isinstance(data, Database):
            rows = data.all_rows()
        else:
            rows = frozenset(data)
        self.constraints = tuple(constraints)
        self.hypergraph: ConflictHypergraph = build_conflict_hypergraph(
            rows, self.constraints
        )
        self._repairs = None
        self.naive = naive
        self._route = "naive" if naive else "indexed"
        self._contexts = ContextCache(naive=naive)

    def repairs(self):
        """All hypergraph repairs (cached)."""
        if self._repairs is None:
            self._repairs = self.hypergraph.maximal_independent_sets()
        return self._repairs

    @staticmethod
    def _to_formula(query: Union[str, Formula]) -> Formula:
        return parse_query(query) if isinstance(query, str) else query

    def answer(self, query: Union[str, Formula]) -> ClosedAnswer:
        """Three-valued consistent answer to a closed query."""
        started = time.perf_counter()
        formula = self._to_formula(query)
        if not formula.is_closed:
            raise QueryError("answer() requires a closed formula")
        considered = 0
        satisfying = 0
        counterexample = None
        constants = constants_of(formula)
        with obs_span("hypergraph-repairs", route=self._route):
            for repair in self.repairs():
                considered += 1
                context = self._contexts.context_for(repair, constants)
                if evaluate(formula, repair, context=context):
                    satisfying += 1
                elif counterexample is None:
                    counterexample = repair
            annotate(repairs=considered)
        if considered and satisfying == considered:
            verdict = Verdict.TRUE
        elif satisfying == 0 and considered:
            verdict = Verdict.FALSE
        else:
            verdict = Verdict.UNDETERMINED
        observe_query(
            "denial", self._route, str(Family.REP),
            time.perf_counter() - started,
        )
        return ClosedAnswer(
            Family.REP, verdict, considered, satisfying, counterexample,
            route=self._route,
        )

    def certain_answers(
        self,
        query: Union[str, Formula],
        variables: Optional[Tuple[str, ...]] = None,
    ) -> OpenAnswers:
        """Certain/possible answers of an open query over the repairs."""
        started = time.perf_counter()
        formula = self._to_formula(query)
        if variables is None:
            variables = tuple(sorted(formula.free_variables()))
        certain = None
        possible = frozenset()
        considered = 0
        constants = constants_of(formula)
        with obs_span("hypergraph-repairs", route=self._route):
            for repair in self.repairs():
                considered += 1
                context = self._contexts.context_for(repair, constants)
                result = evaluate_answers(
                    formula, repair, variables, context=context
                )
                certain = result if certain is None else certain & result
                possible = possible | result
            annotate(repairs=considered)
        observe_query(
            "denial", self._route, str(Family.REP),
            time.perf_counter() - started,
        )
        return OpenAnswers(
            Family.REP,
            variables,
            certain if certain is not None else frozenset(),
            possible,
            considered,
            route=self._route,
        )
