"""Golden tests: one per diagnostic code, plus engine differentials.

Every ROADMAP un-rewritable shape (the same fixtures
``tests/backend/test_fallback_routing.py`` pins against the engine) is
classified here by :func:`repro.analysis.analyze`, and the predicted
``expected_last_route`` is compared against the route the engine
actually records — the analyzer is only useful if it *is* the routing
logic, not a parallel approximation of it.
"""

import sqlite3

import pytest

from repro.analysis import CATALOG, FULL_CODES, Severity, analyze
from repro.backend import SqlCqaEngine
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.prefsql import PrefSqlCqaEngine
from repro.query.ast import (
    And,
    Atom,
    Comparison,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Var,
)
from repro.query.validate import check_against_schema
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.sqlite_io import save_database

R_SCHEMA = RelationSchema("R", ["K", "A:number", "B"])
S_SCHEMA = RelationSchema("S", ["A:number", "C"])
SCHEMA = DatabaseSchema([R_SCHEMA, S_SCHEMA])

FDS = [FunctionalDependency.parse("K -> A", "R")]
BOTH_DIRTY_FDS = FDS + [FunctionalDependency.parse("A -> C", "S")]
MULTI_LHS_FDS = [
    FunctionalDependency.parse("K -> A", "R"),
    FunctionalDependency.parse("B -> A", "R"),
]

R_ROWS = [("k1", 0, "u"), ("k1", 1, "u"), ("k2", 5, "v"), ("k3", 7, "w")]
S_ROWS = [(0, "c0"), (1, "c1"), (5, "c0")]

k, a, b, c = Var("k"), Var("a"), Var("b"), Var("c")
x, y, z = Var("x"), Var("y"), Var("z")


def _database():
    return Database(
        [
            RelationInstance.from_values(R_SCHEMA, R_ROWS),
            RelationInstance.from_values(S_SCHEMA, S_ROWS),
        ]
    )


def _sql_engine(dependencies, priority=()):
    connection = sqlite3.connect(":memory:")
    save_database(_database(), connection, dependencies)
    return SqlCqaEngine(connection, dependencies, priority)


def _analyze(formula, dependencies=FDS, variables=None, **kwargs):
    checked = check_against_schema(formula, SCHEMA)
    return analyze(SCHEMA, dependencies, checked, variables, **kwargs)


def _codes(report):
    return [d.full_code for d in report.diagnostics]


#: The ROADMAP un-rewritable shapes (same fixtures the backend routing
#: tests pin), each with the diagnostic code that must explain it.
UNREWRITABLE_SHAPES = [
    (
        "disjunction",
        Exists(["k", "a", "b"], Or([Atom("R", [k, a, b]), Atom("R", [k, a, b])])),
        FDS,
        "RA102",
    ),
    (
        "negation",
        Exists(["k", "a", "b"], And([Atom("R", [k, a, b]), Not(Atom("S", [a, "c0"]))])),
        FDS,
        "RA102",
    ),
    (
        "universal-quantification",
        Forall(["k", "a", "b"], Implies(Atom("R", [k, a, b]), Comparison("<", a, 9))),
        FDS,
        "RA102",
    ),
    (
        "implication",
        Implies(
            Exists(["b"], Atom("R", ["k1", 0, b])),
            Exists(["b"], Atom("R", ["k2", 5, b])),
        ),
        FDS,
        "RA102",
    ),
    (
        "dirty-self-join",
        Exists(
            ["k", "a", "b", "a2", "b2"],
            And([Atom("R", [k, a, b]), Atom("R", [k, Var("a2"), Var("b2")])]),
        ),
        FDS,
        "RA201",
    ),
    (
        # Key joins of two dirty relations are C_forest and push; only
        # the join through S's NON-key column C still blocks.
        "two-dirty-non-key-join",
        Exists(
            ["k", "a", "b", "c"],
            And([Atom("R", [k, a, b]), Atom("S", [Var("c"), b])]),
        ),
        BOTH_DIRTY_FDS,
        "RA201",
    ),
    (
        "differing-fd-lhs",
        Exists(["k", "a", "b"], Atom("R", [k, a, b])),
        MULTI_LHS_FDS,
        "RA301",
    ),
    (
        "unsafe-variable",
        Exists(
            ["k", "a", "b", "u"],
            And([Atom("R", [k, a, b]), Comparison("=", Var("u"), Var("u"))]),
        ),
        FDS,
        "RA101",
    ),
    (
        "pure-active-domain",
        Exists(["u"], Comparison("=", Var("u"), Var("u"))),
        FDS,
        "RA103",
    ),
    (
        "shadowed-quantifier",
        Exists(["k"], Exists(["k", "a", "b"], Atom("R", [k, a, b]))),
        FDS,
        "RA104",
    ),
]


class TestCatalog:
    def test_every_code_has_unique_full_code(self):
        assert len(FULL_CODES) == len(CATALOG)

    def test_error_codes_block_at_least_one_engine(self):
        for spec in CATALOG.values():
            if spec.severity is Severity.ERROR:
                assert spec.blocks, spec.code
            else:
                assert not spec.blocks, spec.code

    def test_memory_engine_is_never_blocked(self):
        for spec in CATALOG.values():
            assert "memory" not in spec.blocks, spec.code


class TestUnrewritableShapes:
    @pytest.mark.parametrize(
        "label,query,dependencies,code",
        UNREWRITABLE_SHAPES,
        ids=[shape[0] for shape in UNREWRITABLE_SHAPES],
    )
    def test_code_and_route_prediction(self, label, query, dependencies, code):
        report = _analyze(query, dependencies)
        blocking = report.blocking("sqlite")
        assert blocking, label
        assert blocking[0].code == code, (label, _codes(report))
        assert report.blocked("prefsql"), label
        assert not report.blocked("memory"), label
        assert report.plan_kind is None, label

        with _sql_engine(dependencies) as engine:
            engine.answer(query)
            assert report.expected_last_route("sqlite") == engine.last_route, label

    @pytest.mark.parametrize(
        "label,query,dependencies,code",
        UNREWRITABLE_SHAPES,
        ids=[shape[0] for shape in UNREWRITABLE_SHAPES],
    )
    def test_memory_engine_route_report_agrees(
        self, label, query, dependencies, code
    ):
        engine = CqaEngine(_database(), dependencies)
        report = engine.route_report(query)
        assert code in {d.code for d in report.diagnostics}, label
        engine.answer(query)
        assert report.expected_last_route("memory") == "indexed", label


class TestInfoCodes:
    def test_ra001_pushdown_rewritable(self):
        report = _analyze(Exists(["z"], Atom("R", [x, y, z])))
        assert _codes(report) == ["RA001-pushdown-rewritable"]
        assert report.plan_kind == "dirty"
        assert not report.errors
        assert report.expected_last_route("sqlite") == "sqlite"
        assert report.expected_last_route("prefsql") == "sqlite"
        assert report.expected_last_route("memory") == "indexed"

    def test_ra001_clean_plan(self):
        report = _analyze(Atom("S", [y, c]))
        assert report.plan_kind == "clean"
        assert "RA001-pushdown-rewritable" in _codes(report)

    def test_ra002_statically_empty(self):
        # K is a name column; comparing it to a number can never hold.
        query = Exists(["z"], And([Atom("R", [x, y, z]), Comparison("=", x, 1)]))
        report = _analyze(query)
        assert report.plan_kind == "empty"
        assert _codes(report) == ["RA002-statically-empty"]
        assert report.expected_last_route("sqlite") == "sqlite"

    def test_ra002_preempts_ra201(self):
        """A statically-empty multi-dirty join still pushes: the empty
        plan needs no repair reasoning, so RA201 must not fire."""
        query = Exists(
            ["z", "c"],
            And([Atom("R", [x, y, z]), Atom("S", [y, c]), Comparison("=", x, 1)]),
        )
        report = _analyze(query, BOTH_DIRTY_FDS)
        assert report.plan_kind == "empty"
        assert not report.blocked("sqlite")
        assert "RA201-self-join-dirty" not in _codes(report)
        with _sql_engine(BOTH_DIRTY_FDS) as engine:
            engine.certain_answers(query)
            assert engine.last_route == "sqlite"


class TestTheoryCodes:
    def _priority(self):
        instance = RelationInstance.from_values(R_SCHEMA, R_ROWS)
        return [(instance.row("k1", 1, "u"), instance.row("k1", 0, "u"))]

    def test_ra302_blocks_sqlite_only(self):
        query = Exists(["b"], Atom("R", [k, a, b]))
        report = _analyze(query, FDS, priority=self._priority())
        assert report.blocked("sqlite")
        assert not report.blocked("prefsql")
        assert report.blocking("sqlite")[0].code == "RA302"
        assert report.prioritized == ("R",)
        assert report.routes["prefsql"] == "prefsql"

        with _sql_engine(FDS, self._priority()) as engine:
            engine.certain_answers(query)
            assert report.expected_last_route("sqlite") == engine.last_route

    def test_ra302_fires_before_shape_analysis(self):
        """SqlCqaEngine refuses priority before looking at the query, so
        RA302 must be the *first* blocker even for un-rewritable shapes."""
        query = Exists(
            ["k", "a", "b"], Or([Atom("R", [k, a, b]), Atom("R", [k, a, b])])
        )
        report = _analyze(query, FDS, priority=self._priority())
        assert report.blocking("sqlite")[0].code == "RA302"
        with _sql_engine(FDS, self._priority()) as engine:
            engine.answer(query)
            assert report.expected_last_route("sqlite") == engine.last_route

    def test_ra303_blocks_prefsql_only(self):
        query = Exists(["z"], Atom("R", [x, y, z]))
        report = _analyze(
            query,
            FDS,
            priority=self._priority(),
            duplicate_row_relations=frozenset({"R"}),
        )
        assert report.blocked("prefsql")
        assert report.blocking("prefsql")[0].code == "RA303"
        # sqlite is blocked by RA302 here, not RA303.
        assert report.blocking("sqlite")[0].code == "RA302"

    def test_ra303_differential_with_duplicate_rows(self):
        connection = sqlite3.connect(":memory:")
        save_database(_database(), connection, FDS)
        connection.execute("INSERT INTO R VALUES ('k1', 0, 'u')")
        query = Exists(["z"], Atom("R", [x, y, z]))
        with PrefSqlCqaEngine(connection, FDS, self._priority()) as engine:
            engine.certain_answers(query)
            report = _analyze(
                query,
                FDS,
                priority=self._priority(),
                duplicate_row_relations=frozenset({"R"}),
            )
            assert report.expected_last_route("prefsql") == engine.last_route


class TestPrefsqlRoutePrediction:
    def test_unprioritized_query_predicts_plain_sqlite(self):
        """prefsql serves non-prioritized relations with the plain
        rewriting: the report's route label must say so."""
        instance = RelationInstance.from_values(R_SCHEMA, R_ROWS)
        priority = [(instance.row("k1", 1, "u"), instance.row("k1", 0, "u"))]
        query = Atom("S", [y, c])  # mentions only the clean relation
        report = _analyze(query, FDS, priority=priority)
        assert report.routes["prefsql"] == "sqlite"
        assert report.prioritized == ()

        connection = sqlite3.connect(":memory:")
        save_database(_database(), connection, FDS)
        with PrefSqlCqaEngine(connection, FDS, priority) as engine:
            engine.certain_answers(query)
            assert report.expected_last_route("prefsql") == engine.last_route


class TestReasonStrings:
    """The rendered messages are the engines' historical reason strings
    (metric labels and test phrases depend on them verbatim)."""

    @pytest.mark.parametrize(
        "query,dependencies,phrase",
        [
            (
                Exists(["k", "a", "b"], Or([Atom("R", [k, a, b]), Atom("R", [k, a, b])])),
                FDS,
                "non-conjunctive construct Or",
            ),
            (
                Exists(
                    ["k", "a", "b", "a2", "b2"],
                    And([Atom("R", [k, a, b]), Atom("R", [k, Var("a2"), Var("b2")])]),
                ),
                FDS,
                "more than one atom over inconsistent relation(s) ['R']",
            ),
            (
                Exists(["k", "a", "b"], Atom("R", [k, a, b])),
                MULTI_LHS_FDS,
                "differing left-hand sides",
            ),
            (
                Exists(
                    ["k", "a", "b", "u"],
                    And([Atom("R", [k, a, b]), Comparison("=", Var("u"), Var("u"))]),
                ),
                FDS,
                "unsafe variable(s) ['u']",
            ),
            (
                Exists(["u"], Comparison("=", Var("u"), Var("u"))),
                FDS,
                "no relational atom",
            ),
            (
                Exists(["k"], Exists(["k", "a", "b"], Atom("R", [k, a, b]))),
                FDS,
                "shadows an outer variable",
            ),
        ],
    )
    def test_message_contains_legacy_phrase(self, query, dependencies, phrase):
        report = _analyze(query, dependencies)
        assert any(phrase in d.message for d in report.diagnostics), phrase


class TestSpans:
    def test_subject_is_located_in_query_text(self):
        query = Exists(
            ["k", "a", "b", "u"],
            And([Atom("R", [k, a, b]), Comparison("=", Var("u"), Var("u"))]),
        )
        report = _analyze(query)
        unsafe = report.blocking("sqlite")[0]
        assert unsafe.span is not None
        start, end = unsafe.span.start, unsafe.span.end
        assert report.query[start:end] == unsafe.subject


class TestFingerprint:
    def test_same_inputs_same_fingerprint(self):
        query = Exists(["z"], Atom("R", [x, y, z]))
        first = _analyze(query)
        second = _analyze(query)
        assert first.fingerprint == second.fingerprint

    def test_theory_change_changes_fingerprint(self):
        query = Exists(["z"], Atom("R", [x, y, z]))
        assert _analyze(query).fingerprint != _analyze(query, BOTH_DIRTY_FDS).fingerprint

    def test_priority_changes_fingerprint(self):
        instance = RelationInstance.from_values(R_SCHEMA, R_ROWS)
        priority = [(instance.row("k1", 1, "u"), instance.row("k1", 0, "u"))]
        query = Exists(["z"], Atom("R", [x, y, z]))
        assert (
            _analyze(query).fingerprint
            != _analyze(query, FDS, priority=priority).fingerprint
        )


class TestReportShape:
    def test_to_dict_is_json_ready(self):
        import json

        report = _analyze(Exists(["z"], Atom("R", [x, y, z])))
        payload = report.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["routes"]["sqlite"] == "sqlite"
        assert payload["relations"] == ["R"]
        assert payload["diagnostics"][0]["code"] == "RA001-pushdown-rewritable"

    def test_binding_error_matches_engines(self):
        from repro.exceptions import QueryBindingError

        with pytest.raises(QueryBindingError):
            _analyze(Exists(["z"], Atom("R", [x, y, z])), variables=("nope",))
