"""Broker route-report caching and the ``analyze`` front-end op.

The broker consults a cached :class:`RouteReport` before building any
pushed engine: these tests pin (a) the cache (hits on repeats, eviction
keyed by priority state), (b) that ``broker.analyze`` returns the very
report ``submit`` will follow, and (c) the ``POST /analyze`` surface.
"""

from __future__ import annotations

import pytest

from repro.analysis import RouteReport
from repro.datagen.generators import GRID_FDS, grid_instance
from repro.service.broker import RequestBroker
from repro.service.server import ServiceFrontEnd


@pytest.fixture
def broker():
    built = RequestBroker()
    built.register("grid", grid_instance(3, 2), GRID_FDS)
    yield built
    built.close()


@pytest.fixture
def front(broker):
    return ServiceFrontEnd(broker)


class TestBrokerAnalyze:
    def test_returns_route_report(self, broker):
        report = broker.analyze("EXISTS y . R(x, y)")
        assert isinstance(report, RouteReport)
        assert report.routes["sqlite"] == "sqlite"
        assert not report.blocked("sqlite")

    def test_report_predicts_served_route(self, broker):
        report = broker.analyze("EXISTS y . R(x, y)")
        result = broker.query("EXISTS y . R(x, y)")
        assert result.engine == "sqlite"
        assert report.expected_last_route("sqlite") == result.route

    def test_blocked_shape_predicts_incremental(self, broker):
        query = "EXISTS x . (R(x, 0) OR R(x, 1))"
        report = broker.analyze(query)
        assert report.blocked("sqlite")
        assert report.blocking("sqlite")[0].code == "RA102"
        result = broker.query(query)
        assert result.engine == "incremental"

    def test_repeat_analysis_hits_cache(self, broker):
        broker.analyze("EXISTS y . R(x, y)")
        before = broker.route_report_hits
        broker.analyze("EXISTS y . R(x, y)")
        assert broker.route_report_hits == before + 1

    def test_serving_reuses_analyze_cache_entry(self, broker):
        broker.analyze("EXISTS y . R(x, y)")
        misses = broker.route_report_misses
        broker.query("EXISTS y . R(x, y)")
        assert broker.route_report_misses == misses  # no recompute

    def test_stats_exposes_route_report_counters(self, broker):
        broker.analyze("EXISTS y . R(x, y)")
        stats = broker.stats()["route_reports"]
        assert stats["entries"] == 1
        assert stats["misses"] == 1

    def test_distinct_queries_get_distinct_entries(self, broker):
        first = broker.analyze("EXISTS y . R(x, y)")
        second = broker.analyze("EXISTS x, y . R(x, y)")
        assert first.fingerprint != second.fingerprint
        assert broker.stats()["route_reports"]["entries"] == 2

    def test_unknown_database_raises(self, broker):
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            broker.analyze("EXISTS y . R(x, y)", database="nope")


class TestAnalyzeOp:
    def test_analyze_op_returns_report_body(self, front):
        body = front.handle({"op": "analyze", "query": "EXISTS y . R(x, y)"})
        assert body["routes"]["sqlite"] == "sqlite"
        assert body["plan"] in ("clean", "dirty")
        assert body["relations"] == ["R"]
        assert isinstance(body["diagnostics"], list)

    def test_analyze_op_reports_blockers(self, front):
        body = front.handle(
            {"op": "analyze", "query": "EXISTS x . (R(x, 0) OR R(x, 1))"}
        )
        codes = [d["code"] for d in body["diagnostics"]]
        assert "RA102-non-conjunctive" in codes
        blocked = [d for d in body["diagnostics"] if "sqlite" in d["blocks"]]
        assert blocked, codes

    def test_analyze_op_echoes_tag(self, front):
        body = front.handle(
            {"op": "analyze", "query": "EXISTS y . R(x, y)", "tag": "t1"}
        )
        assert body["tag"] == "t1"

    def test_analyze_op_bad_query_is_error_object(self, front):
        body = front.handle({"op": "analyze", "query": ""})
        assert "error" in body


class TestRouteReportFreshnessHttp:
    """The RouteReport LRU must never serve a stale analysis: the cache
    key pins the active priority edges, so a ``POST /update`` that
    (de)activates a declared edge flips the next ``POST /analyze`` to a
    recomputed report — while restoring the state revives the original
    entry (keyed eviction, not blanket invalidation)."""

    QUERY = "EXISTS y . R(x, y)"

    def test_update_changing_priority_state_misses_cache(self, broker, front):
        import json
        import threading
        import urllib.request

        from repro.service.server import make_http_server

        rows = sorted(grid_instance(3, 2).rows)
        winner, loser = rows[0], rows[1]  # (0, 0) beats (0, 1): one clique
        broker.prefer(winner, loser, "grid")

        server = make_http_server(front, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]

            def post(path, payload):
                request = urllib.request.Request(
                    f"http://{host}:{port}{path}",
                    data=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request) as response:
                    return json.loads(response.read())

            def counters():
                with urllib.request.urlopen(
                    f"http://{host}:{port}/stats"
                ) as response:
                    return json.loads(response.read())["route_reports"]

            # Priority active: the report blocks sqlite (RA302) and a
            # repeat is served from the cache.
            first = post("/analyze", {"query": self.QUERY})
            repeat = post("/analyze", {"query": self.QUERY})
            assert repeat["fingerprint"] == first["fingerprint"]
            codes = [d["code"] for d in first["diagnostics"]]
            assert any(code.startswith("RA302") for code in codes)
            stats = counters()
            assert stats["misses"] == 1
            assert stats["hits"] == 1

            # Deleting the loser deactivates the declared edge: the next
            # analyze MUST miss the cache and see an unblocked pushdown.
            deletion = post(
                "/update",
                {"op": "delete", "relation": "R", "values": list(loser.values)},
            )
            assert deletion["op"] == "delete"
            fresh = post("/analyze", {"query": self.QUERY})
            assert counters()["misses"] == 2
            assert fresh["fingerprint"] != first["fingerprint"]
            fresh_codes = [d["code"] for d in fresh["diagnostics"]]
            assert not any(code.startswith("RA302") for code in fresh_codes)
            assert fresh["routes"]["sqlite"] == "sqlite"

            # Re-inserting restores the active-priority state: the key
            # matches the original entry again (a hit, not a recompute).
            post("/update", {"relation": "R", "values": list(loser.values)})
            revived = post("/analyze", {"query": self.QUERY})
            assert revived["fingerprint"] == first["fingerprint"]
            stats = counters()
            assert stats["misses"] == 2
            assert stats["hits"] == 2
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestAnalyzeHttp:
    def test_post_analyze_path(self, front):
        import json
        import threading
        import urllib.request

        from repro.service.server import make_http_server

        server = make_http_server(front, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            request = urllib.request.Request(
                f"http://{host}:{port}/analyze",
                data=json.dumps({"query": "EXISTS y . R(x, y)"}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request) as response:
                body = json.loads(response.read())
            assert body["routes"]["sqlite"] == "sqlite"
            assert body["fingerprint"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
