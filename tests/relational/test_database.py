"""Unit tests for multi-relation databases and source integration."""

import pytest

from repro.exceptions import SchemaError, UnknownRelationError
from repro.relational.database import Database, integrate_sources
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema

R = RelationSchema("R", ["A:number", "B:number"])
S = RelationSchema("S", ["X", "Y"])


def make_db():
    return Database(
        [
            RelationInstance.from_values(R, [(1, 1), (2, 2)]),
            RelationInstance.from_values(S, [("a", "b")]),
        ]
    )


class TestDatabase:
    def test_relation_lookup(self):
        assert len(make_db().relation("R")) == 2

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            make_db().relation("T")

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SchemaError):
            Database([RelationInstance(R), RelationInstance(R)])

    def test_all_rows_spans_relations(self):
        assert len(make_db().all_rows()) == 3

    def test_len_counts_all_tuples(self):
        assert len(make_db()) == 3

    def test_active_domain_spans_relations(self):
        assert make_db().active_domain() == {1, 2, "a", "b"}

    def test_single(self):
        db = Database.single(RelationInstance.from_values(R, [(1, 1)]))
        assert db.schema.relation_names == ("R",)

    def test_restrict(self):
        db = make_db()
        keep = Row(R, (1, 1))
        restricted = db.restrict({keep})
        assert restricted.all_rows() == frozenset({keep})
        # Schema is preserved even for emptied relations.
        assert restricted.schema.has_relation("S")

    def test_from_rows_round_trip(self):
        db = make_db()
        rebuilt = Database.from_rows(db.schema, db.all_rows())
        assert rebuilt == db

    def test_from_rows_rejects_foreign(self):
        other = RelationSchema("T", ["Z"])
        with pytest.raises(UnknownRelationError):
            Database.from_rows(make_db().schema, [Row(other, ("v",))])

    def test_union(self):
        db1 = make_db()
        db2 = Database(
            [
                RelationInstance.from_values(R, [(9, 9)]),
                RelationInstance(S),
            ]
        )
        merged = db1.union(db2)
        assert len(merged.relation("R")) == 3

    def test_union_schema_mismatch(self):
        db1 = make_db()
        db2 = Database([RelationInstance(R)])
        with pytest.raises(SchemaError):
            db1.union(db2)


class TestIntegrateSources:
    def test_union_of_sources(self):
        s1 = RelationInstance.from_values(R, [(1, 1)])
        s2 = RelationInstance.from_values(R, [(1, 2)])
        merged = integrate_sources([s1, s2])
        assert len(merged) == 2

    def test_requires_at_least_one_source(self):
        with pytest.raises(SchemaError):
            integrate_sources([])
