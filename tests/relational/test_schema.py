"""Unit tests for relation and database schemas."""

import pytest

from repro.exceptions import SchemaError, UnknownAttributeError, UnknownRelationError
from repro.relational.domain import AttributeType
from repro.relational.schema import (
    Attribute,
    DatabaseSchema,
    RelationSchema,
    schema_from_mapping,
)


class TestAttribute:
    def test_default_type_is_name(self):
        assert Attribute("Dept").type is AttributeType.NAME

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("bad name")


class TestRelationSchemaConstruction:
    def test_string_specs_with_type_suffix(self):
        schema = RelationSchema("Mgr", ["Name", "Salary:number"])
        assert schema.type_of("Name") is AttributeType.NAME
        assert schema.type_of("Salary") is AttributeType.NUMBER

    def test_tuple_specs(self):
        schema = RelationSchema("R", [("A", AttributeType.NUMBER)])
        assert schema.type_of("A") is AttributeType.NUMBER

    def test_attribute_objects_pass_through(self):
        attr = Attribute("X", AttributeType.NUMBER)
        schema = RelationSchema("R", [attr])
        assert schema.attributes == (attr,)

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["A", "A"])

    def test_empty_attribute_list_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])

    def test_unknown_type_suffix_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["A:float"])

    def test_invalid_relation_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("bad name", ["A"])


class TestRelationSchemaAccess:
    def test_index_of(self):
        schema = RelationSchema("R", ["A", "B", "C"])
        assert schema.index_of("B") == 1

    def test_index_of_unknown_attribute(self):
        schema = RelationSchema("R", ["A"])
        with pytest.raises(UnknownAttributeError):
            schema.index_of("Z")

    def test_attribute_names_ordered(self):
        schema = RelationSchema("R", ["C", "A", "B"])
        assert schema.attribute_names == ("C", "A", "B")

    def test_arity(self):
        assert RelationSchema("R", ["A", "B"]).arity == 2

    def test_has_attribute(self):
        schema = RelationSchema("R", ["A"])
        assert schema.has_attribute("A")
        assert not schema.has_attribute("B")


class TestValidateValues:
    def test_wrong_arity_rejected(self):
        schema = RelationSchema("R", ["A", "B"])
        with pytest.raises(SchemaError):
            schema.validate_values(("x",))

    def test_type_checked(self):
        schema = RelationSchema("R", ["A:number"])
        with pytest.raises(SchemaError):
            schema.validate_values(("not a number",))

    def test_valid_values_become_tuple(self):
        schema = RelationSchema("R", ["A", "B:number"])
        assert schema.validate_values(["x", 3]) == ("x", 3)


class TestSchemaEquality:
    def test_equal_schemas(self):
        assert RelationSchema("R", ["A"]) == RelationSchema("R", ["A"])

    def test_different_types_not_equal(self):
        assert RelationSchema("R", ["A"]) != RelationSchema("R", ["A:number"])

    def test_hashable(self):
        assert len({RelationSchema("R", ["A"]), RelationSchema("R", ["A"])}) == 1


class TestDatabaseSchema:
    def test_lookup(self):
        db = DatabaseSchema([RelationSchema("R", ["A"]), RelationSchema("S", ["B"])])
        assert db.relation("S").attribute_names == ("B",)

    def test_unknown_relation(self):
        db = DatabaseSchema([RelationSchema("R", ["A"])])
        with pytest.raises(UnknownRelationError):
            db.relation("T")

    def test_duplicate_relations_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([RelationSchema("R", ["A"]), RelationSchema("R", ["B"])])

    def test_from_mapping(self):
        db = schema_from_mapping({"R": ["A", "B:number"]})
        assert db.relation("R").type_of("B") is AttributeType.NUMBER

    def test_iteration_and_len(self):
        db = schema_from_mapping({"R": ["A"], "S": ["B"]})
        assert len(db) == 2
        assert {schema.name for schema in db} == {"R", "S"}
