"""The paper's adversarial "trivial" families (Examples 6 and 10).

Section 3 motivates the optimality notions by exhibiting families that
satisfy most of P1–P4 while making essentially no use of the priority:

* **Example 6** — return *all* repairs unless the priority is total, in
  which case return the single Algorithm-1 repair.  Satisfies P1–P4 yet
  ignores every partial priority.
* **Example 10 (T-Rep)** — fix one canonical total extension of the
  given priority and return the Algorithm-1 repair for it.  This is a
  family of *globally optimal* repairs satisfying P1 and P4 (the paper
  also lists P3; as written the construction returns a single repair
  even for the empty priority, so P3 fails unless the extension choice
  is special-cased — both readings are provided).  Crucially it violates
  **P2 monotonicity**, which is the paper's point: optimality alone does
  not prevent groundless elimination of repairs.
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.core.cleaning import clean
from repro.priorities.priority import Priority
from repro.relational.rows import Row, sorted_rows
from repro.repairs.enumerate import enumerate_repairs

Repair = FrozenSet[Row]


def example6_family(priority: Priority) -> List[Repair]:
    """Example 6: all repairs unless total, then the Algorithm-1 repair."""
    if priority.is_total:
        return [clean(priority)]
    return sorted(
        enumerate_repairs(priority.graph),
        key=lambda repair: sorted_rows(repair).__repr__(),
    )


def trep_family(priority: Priority) -> List[Repair]:
    """Example 10's T-Rep, literally as written.

    Deterministically completes the priority to a total one and returns
    the unique Algorithm-1 repair of the completion.  Always a single
    globally optimal repair — P1 and P4 hold, P2 and P3 fail in general.
    """
    return [clean(priority.some_total_extension())]


def trep_family_patched(priority: Priority) -> List[Repair]:
    """T-Rep with the empty priority special-cased to all repairs.

    This variant matches the property profile the paper states for
    Example 10 (P1, P3, P4 — but not P2).
    """
    if priority.is_empty:
        return sorted(
            enumerate_repairs(priority.graph),
            key=lambda repair: sorted_rows(repair).__repr__(),
        )
    return [clean(priority.some_total_extension())]
