"""CSV import/export for relation instances.

The header row carries attribute names, optionally with ``:number`` /
``:name`` type suffixes (``Salary:number``).  Without suffixes, types are
inferred per column: a column whose every field parses as a non-negative
integer becomes NUMBER, otherwise NAME.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.exceptions import SchemaError
from repro.relational.domain import AttributeType
from repro.relational.instance import RelationInstance
from repro.relational.schema import Attribute, RelationSchema


def _is_natural(text: str) -> bool:
    try:
        return int(text) >= 0
    except ValueError:
        return False


def _schema_from_header(
    relation_name: str, header: Sequence[str], records: List[List[str]]
) -> RelationSchema:
    """Build a schema from a CSV header, inferring untyped columns."""
    attributes: List[Attribute] = []
    for col, raw in enumerate(header):
        raw = raw.strip()
        if ":" in raw:
            name, _, type_text = raw.partition(":")
            try:
                attr_type = AttributeType(type_text.strip())
            except ValueError as exc:
                raise SchemaError(f"unknown column type in header: {raw!r}") from exc
            attributes.append(Attribute(name.strip(), attr_type))
        else:
            fields = [record[col] for record in records]
            numeric = bool(fields) and all(_is_natural(field) for field in fields)
            attributes.append(
                Attribute(raw, AttributeType.NUMBER if numeric else AttributeType.NAME)
            )
    return RelationSchema(relation_name, attributes)


def read_instance_csv(
    path: Union[str, Path],
    relation_name: Optional[str] = None,
    schema: Optional[RelationSchema] = None,
) -> RelationInstance:
    """Load a relation instance from a CSV file.

    If ``schema`` is given it is used directly (the header is validated
    against it); otherwise a schema is built from the header, with the
    relation named after the file stem unless ``relation_name`` is given.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        return read_instance_csv_text(
            handle.read(), relation_name or path.stem, schema
        )


def read_instance_csv_text(
    text: str,
    relation_name: str,
    schema: Optional[RelationSchema] = None,
) -> RelationInstance:
    """Load a relation instance from CSV text (see :func:`read_instance_csv`)."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration as exc:
        raise SchemaError("CSV input is empty (missing header row)") from exc
    records = [record for record in reader if record]
    for record in records:
        if len(record) != len(header):
            raise SchemaError(
                f"CSV record {record!r} has {len(record)} fields, "
                f"expected {len(header)}"
            )
    if schema is None:
        schema = _schema_from_header(relation_name, header, records)
    else:
        header_names = [cell.partition(":")[0].strip() for cell in header]
        if tuple(header_names) != schema.attribute_names:
            raise SchemaError(
                f"CSV header {header_names} does not match schema "
                f"{schema.attribute_names}"
            )
    tuples = []
    for record in records:
        if len(record) != schema.arity:
            raise SchemaError(
                f"CSV record {record!r} has {len(record)} fields, "
                f"expected {schema.arity}"
            )
        # Numeric fields tolerate surrounding whitespace; name fields are
        # taken verbatim (whitespace can be significant in a name value).
        tuples.append(
            tuple(
                attr.type.parse(
                    field.strip() if attr.type is AttributeType.NUMBER else field
                )
                for attr, field in zip(schema.attributes, record)
            )
        )
    return RelationInstance.from_values(schema, tuples)


def write_instance_csv(instance: RelationInstance, path: Union[str, Path]) -> None:
    """Write an instance to CSV with a typed header (round-trippable)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        handle.write(instance_to_csv_text(instance))


def instance_to_csv_text(instance: RelationInstance) -> str:
    """Render an instance as CSV text with a typed header."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        f"{attr.name}:{attr.type.value}" for attr in instance.schema.attributes
    )
    for row in instance.sorted():
        writer.writerow(row.values)
    return buffer.getvalue()
