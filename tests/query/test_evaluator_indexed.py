"""Regression tests pinning the semantics the indexes must preserve.

The hash indexes and the planner change how bindings are enumerated;
these tests pin the behaviours a subtly wrong index could silently
alter: two-domain comparison semantics, unbound-variable errors,
probes against empty or absent relations, shadowed quantifiers, and
context reuse across queries.  Every behavioural case is asserted on
both routes (indexed and ``naive=True``).
"""

import pytest

from repro.exceptions import QueryBindingError
from repro.query.ast import And, Atom, Comparison, Exists, Not, Var
from repro.query.evaluator import (
    ContextCache,
    EvaluationContext,
    answers,
    evaluate,
    make_context,
)
from repro.query.parser import parse_query
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema

SCHEMA = RelationSchema("Mgr", ["Name", "Dept", "Salary:number"])
ROWS = RelationInstance.from_values(
    SCHEMA,
    [
        ("Mary", "R&D", 40),
        ("John", "PR", 30),
        ("Eve", "IT", 40),
    ],
)

ROUTES = [False, True]
ROUTE_IDS = ["indexed", "naive"]


@pytest.mark.parametrize("naive", ROUTES, ids=ROUTE_IDS)
class TestMixedDomainComparisons:
    """Order over N only: name/number comparisons are false, not errors."""

    def test_ground_mixed_order_is_false(self, naive):
        assert not evaluate(parse_query("Mary < 40"), ROWS, naive=naive)
        assert not evaluate(parse_query("40 > Mary"), ROWS, naive=naive)

    def test_mixed_order_inside_planned_conjunction(self, naive):
        # The planner emits the comparison as a filter after the atom
        # binds n and s; it must reject, not raise, on (name, number).
        query = parse_query("EXISTS n, d, s . Mgr(n, d, s) AND n < s")
        assert not evaluate(query, ROWS, naive=naive)

    def test_mixed_order_between_bound_names(self, naive):
        query = parse_query("EXISTS n1, d1, s1, n2, d2, s2 . "
                            "Mgr(n1, d1, s1) AND Mgr(n2, d2, s2) AND n1 < n2")
        assert not evaluate(query, ROWS, naive=naive)

    def test_mixed_equality_is_just_false(self, naive):
        query = parse_query("EXISTS n, d, s . Mgr(n, d, s) AND n = 40")
        assert not evaluate(query, ROWS, naive=naive)

    def test_open_query_filters_mixed_orders(self, naive):
        result = answers(
            parse_query("EXISTS d . Mgr(n, d, s) AND s > 35"),
            ROWS,
            ("n",),
            naive=naive,
        )
        assert result == {("Mary",), ("Eve",)}


@pytest.mark.parametrize("naive", ROUTES, ids=ROUTE_IDS)
class TestUnboundVariableErrors:
    def test_free_variable_without_binding_raises(self, naive):
        with pytest.raises(QueryBindingError):
            evaluate(parse_query("Mgr(n, 'R&D', 40)"), ROWS, naive=naive)

    def test_partial_binding_raises(self, naive):
        with pytest.raises(QueryBindingError):
            evaluate(
                parse_query("Mgr(n, d, 40)"), ROWS, {"n": "Mary"}, naive=naive
            )

    def test_unknown_answer_variable_raises(self, naive):
        with pytest.raises(QueryBindingError):
            answers(parse_query("Mgr(n, d, s)"), ROWS, ("nope",), naive=naive)

    def test_binding_survives_evaluation(self, naive):
        # The evaluator mutates a working copy; caller bindings and
        # shadow scopes must be restored on every path.
        binding = {"n": "Mary"}
        assert evaluate(
            parse_query("EXISTS d, s . Mgr(n, d, s)"), ROWS, binding, naive=naive
        )
        assert binding == {"n": "Mary"}


@pytest.mark.parametrize("naive", ROUTES, ids=ROUTE_IDS)
class TestEmptyRelationProbes:
    def test_exists_over_empty_instance(self, naive):
        empty = RelationInstance(SCHEMA)
        assert not evaluate(
            parse_query("EXISTS n, d, s . Mgr(n, d, s)"), empty, naive=naive
        )

    def test_answers_over_empty_instance(self, naive):
        empty = RelationInstance(SCHEMA)
        assert (
            answers(parse_query("Mgr(n, d, s)"), empty, naive=naive) == frozenset()
        )

    def test_absent_relation_in_context(self, naive):
        # The query mentions a relation no row populates: probes must
        # come back empty instead of failing.
        query = Exists(
            ["n", "d", "s", "o"],
            And([Atom("Mgr", [Var("n"), Var("d"), Var("s")]),
                 Atom("Absent", [Var("o")])]),
        )
        assert not evaluate(query, ROWS, naive=naive)

    def test_negated_absent_relation_holds(self, naive):
        query = Exists(
            ["n", "d", "s"],
            And([Atom("Mgr", [Var("n"), Var("d"), Var("s")]),
                 Not(Atom("Absent", [Var("n")]))]),
        )
        assert evaluate(query, ROWS, naive=naive)


@pytest.mark.parametrize("naive", ROUTES, ids=ROUTE_IDS)
class TestShadowedQuantifiers:
    """Re-quantifying a name must save and restore the outer binding."""

    def test_inner_exists_shadows_outer(self, naive):
        # The first conjunct binds n; the inner EXISTS reuses the name;
        # the third conjunct must still see the *outer* n.
        query = Exists(
            ["n", "d", "s"],
            And(
                [
                    Atom("Mgr", [Var("n"), Var("d"), Var("s")]),
                    Exists(["n"], Atom("Mgr", [Var("n"), "PR", 30])),
                    Comparison("=", Var("n"), "Mary"),
                ]
            ),
        )
        assert evaluate(query, ROWS, naive=naive)

    def test_later_block_variable_shadow_does_not_narrow(self, naive):
        # Regression: with R = {(1,1)} and S = {(5,9)}, the inner block
        # EXISTS x, y . S(x, y) re-quantifies y; the outer y (bound to 1
        # by R(y, y)) must not constrain x's candidates to S rows whose
        # second column is 1 — both routes must find the (5, 9) witness.
        r_schema = RelationSchema("Rn", ["A:number", "B:number"])
        s_schema = RelationSchema("Sn", ["A:number", "B:number"])
        rows = frozenset(
            RelationInstance.from_values(r_schema, [(1, 1)]).rows
            | RelationInstance.from_values(s_schema, [(5, 9)]).rows
        )
        query = Exists(
            ["y"],
            And(
                [
                    Atom("Rn", [Var("y"), Var("y")]),
                    Exists(["x", "y"], Atom("Sn", [Var("x"), Var("y")])),
                ]
            ),
        )
        assert evaluate(query, rows, naive=naive)

    def test_shadowing_respects_inner_scope(self, naive):
        # Inner n ranges independently: even with outer n pinned to
        # Mary, the inner block can witness John.
        query = Exists(
            ["n"],
            And(
                [
                    Comparison("=", Var("n"), "Mary"),
                    Exists(["n"], Atom("Mgr", [Var("n"), "PR", 30])),
                ]
            ),
        )
        assert evaluate(query, ROWS, naive=naive)


@pytest.mark.parametrize("naive", ROUTES, ids=ROUTE_IDS)
class TestRepeatedVariables:
    def test_repeated_variable_in_atom(self, naive):
        schema = RelationSchema("E", ["A:number", "B:number"])
        rows = RelationInstance.from_values(schema, [(1, 2), (3, 3)])
        assert evaluate(
            Exists(["v"], Atom("E", [Var("v"), Var("v")])), rows, naive=naive
        )
        assert answers(
            Atom("E", [Var("v"), Var("v")]), rows, ("v",), naive=naive
        ) == {(3,)}


class TestContextSharing:
    def test_indexes_are_lazy_and_reused(self):
        context = make_context(ROWS)
        assert not context._indexes
        query = parse_query("EXISTS d, s . Mgr(Mary, d, s)")
        assert evaluate(query, ROWS, context=context)
        built = dict(context._indexes)
        assert built  # the probe materialized at least one index
        assert evaluate(query, ROWS, context=context)
        assert dict(context._indexes) == built  # reused, not rebuilt

    def test_with_constants_overlays_domain(self):
        context = make_context(ROWS)
        view = context.with_constants(frozenset({99}))
        assert 99 in view.adom and 99 not in context.adom
        # Shared structure: indexes built through the view serve the base.
        assert view._indexes is context._indexes
        assert context.with_constants(frozenset({40})) is context
        # Constant sets differing only in covered values share a view.
        assert context.with_constants(frozenset({99, 40})) is view

    def test_context_cache_is_content_keyed(self):
        cache = ContextCache(max_entries=2)
        rows = frozenset(ROWS.rows)
        first = cache.context_for(rows)
        assert cache.context_for(frozenset(ROWS.rows)) is first
        # Constants not in the instance produce an overlay of the same base.
        view = cache.context_for(rows, frozenset({99}))
        assert view is not first and view.relations is first.relations

    def test_context_cache_evicts_fifo(self):
        cache = ContextCache(max_entries=1)
        rows = frozenset(ROWS.rows)
        cache.context_for(rows)
        cache.context_for(frozenset())
        assert len(cache) == 1

    def test_domain_constant_reachable_through_cache(self):
        cache = ContextCache()
        rows = frozenset(ROWS.rows)
        query = parse_query("EXISTS v . v = 41")
        from repro.query.ast import constants_of

        context = cache.context_for(rows, constants_of(query))
        assert evaluate(query, rows, context=context)

    def test_naive_cache_builds_naive_contexts(self):
        cache = ContextCache(naive=True)
        assert cache.context_for(frozenset(ROWS.rows)).naive
