"""Serving-layer observability: /metrics, richer /stats and /healthz,
the access log, unified broker cache stats, and ``repro query --profile``."""

from __future__ import annotations

import io
import json
import re
import threading
import urllib.error
import urllib.request

import pytest

import repro
from repro.cli import main
from repro.datagen.generators import GRID_FDS, grid_instance
from repro.obs import RECORDER, REGISTRY
from repro.service.broker import Request, RequestBroker
from repro.service.server import ServiceError, ServiceFrontEnd, make_http_server

#: One sample per non-comment exposition line: name{labels} value
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.e+-]+$|^.* \+Inf.*$"
)


@pytest.fixture
def broker():
    broker = RequestBroker()
    broker.register("grid", grid_instance(3, 2), GRID_FDS)
    yield broker
    broker.close()


@pytest.fixture
def front(broker):
    return ServiceFrontEnd(broker)


class TestBrokerObservability:
    def test_backend_of(self, broker):
        assert broker.backend_of("grid") in {"sqlite", "prefsql"}
        memory_only = RequestBroker()
        memory_only.register(
            "m", grid_instance(2, 2), GRID_FDS, sqlite_pushdown=False
        )
        try:
            assert memory_only.backend_of("m") == "incremental"
        finally:
            memory_only.close()

    def test_cache_stats_uniform_shape(self, broker):
        broker.submit([Request(query="EXISTS y . R(x, y)")])
        broker.submit([Request(query="EXISTS y . R(x, y)")])
        caches = broker.stats()["caches"]
        assert set(caches) == {"answer", "context", "component_repair"}
        for family in caches.values():
            assert set(family) == {"entries", "hits", "misses", "evictions"}
        assert caches["answer"]["hits"] >= 1

    def test_stats_reports_backend_per_database(self, broker):
        stats = broker.stats()
        assert stats["databases"]["grid"]["backend"] == broker.backend_of(
            "grid"
        )


class TestFrontEndEndpoints:
    def test_healthz_reports_version_and_backend(self, front):
        body = front.health()
        assert body["version"] == repro.__version__
        assert body["backends"]["grid"] in {
            "incremental", "sqlite", "prefsql",
        }
        assert body["uptime_s"] >= 0

    def test_stats_embeds_metrics_snapshot(self, front):
        front.handle({"query": "EXISTS y . R(x, y)"})
        stats = front.handle({"op": "stats"})
        assert "repro_queries_total" in stats["metrics"]
        assert "caches" in stats

    def test_metrics_renders_query_families(self, front):
        front.handle({"query": "EXISTS y . R(x, y)"})
        text = front.metrics()
        assert "# TYPE repro_queries_total counter" in text
        assert "# TYPE repro_query_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_cache_events_total" in text

    def test_metrics_lines_are_well_formed(self, front):
        front.handle({"query": "EXISTS y . R(x, y)"})
        for line in front.metrics().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert _SAMPLE.match(line), f"malformed sample: {line!r}"


class TestAccessLog:
    def test_query_appends_one_line(self, broker):
        log = io.StringIO()
        front = ServiceFrontEnd(broker, access_log=log)
        front.handle({"query": "EXISTS y . R(x, y)"})
        lines = log.getvalue().splitlines()
        assert len(lines) == 1
        assert "db=grid" in lines[0]
        assert "route=" in lines[0]
        assert "latency_ms=" in lines[0]
        assert re.search(r"answers=\d+|answers=(true|false|undetermined)",
                         lines[0])

    def test_batch_logs_every_item(self, broker):
        log = io.StringIO()
        front = ServiceFrontEnd(broker, access_log=log)
        front.handle(
            {
                "op": "batch",
                "requests": [
                    {"query": "EXISTS y . R(x, y)"},
                    {"query": "EXISTS x, y . R(x, y)"},
                ],
            }
        )
        assert len(log.getvalue().splitlines()) == 2

    def test_no_log_stream_writes_nothing(self, front):
        front.handle({"query": "EXISTS y . R(x, y)"})  # must not raise


class TestHttpMetricsEndpoint:
    @pytest.fixture
    def server(self, front):
        server = make_http_server(front, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()

    def _url(self, server, path):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}{path}"

    def test_get_metrics_prometheus_text(self, server, front):
        front.handle({"query": "EXISTS y . R(x, y)"})
        with urllib.request.urlopen(self._url(server, "/metrics")) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == (
                "text/plain; version=0.0.4"
            )
            body = response.read().decode()
        assert "repro_queries_total" in body
        assert body.endswith("\n")

    def test_healthz_over_http_reports_version(self, server):
        with urllib.request.urlopen(self._url(server, "/healthz")) as response:
            body = json.loads(response.read())
        assert body["version"] == repro.__version__
        assert "backends" in body


class TestFlightRecorderServing:
    def test_stats_embeds_recorder_summary(self, front):
        front.handle({"query": "EXISTS y . R(x, y)"})
        recorder = front.handle({"op": "stats"})["recorder"]
        assert recorder["enabled"] is True
        assert recorder["recorded"] >= 1
        assert recorder["ring_entries"] >= 1

    def test_query_result_carries_trace_id(self, front):
        body = front.handle({"query": "EXISTS y . R(x, y)"})
        trace_id = body["trace_id"]
        record = RECORDER.get(trace_id)
        assert record is not None
        assert record.database == "grid"
        assert record.engine == body["engine"]
        assert record.route == body["route"]

    def test_cached_result_has_no_trace_id(self, front):
        first = front.handle({"query": "EXISTS y . R(x, y)"})
        second = front.handle({"query": "EXISTS y . R(x, y)"})
        assert "trace_id" in first
        assert second["cached"] is True
        assert "trace_id" not in second

    def test_debug_queries_lists_the_record(self, front):
        body = front.handle({"query": "EXISTS y . R(x, y)"})
        listing = front.debug_queries()
        assert listing["count"] >= 1
        match = next(
            q for q in listing["queries"] if q["trace_id"] == body["trace_id"]
        )
        # The broker records the parsed formula's canonical form.
        assert "R(x, y)" in match["query"] and "EXISTS y" in match["query"]
        assert match["trace"]["name"] == "query"
        assert front.debug_query(body["trace_id"]) == match

    def test_debug_query_unknown_id_raises(self, front):
        with pytest.raises(ServiceError, match="no recorded query"):
            front.debug_query("nope-123")

    def test_batch_access_log_has_per_request_latency_and_trace(self, broker):
        log = io.StringIO()
        front = ServiceFrontEnd(broker, access_log=log)
        front.handle(
            {
                "op": "batch",
                "requests": [
                    {"query": "EXISTS y . R(x, y)"},
                    {"query": "EXISTS x, y . R(x, y)"},
                ],
            }
        )
        lines = log.getvalue().splitlines()
        assert len(lines) == 2
        latencies = [
            float(re.search(r"latency_ms=([0-9.]+)", line).group(1))
            for line in lines
        ]
        # Per-request timing, not the batch total split evenly.
        assert all(value > 0 for value in latencies)
        assert latencies[0] != latencies[1]
        traces = [
            re.search(r"trace=(\S+)", line).group(1) for line in lines
        ]
        for token in traces:
            assert token == "-" or RECORDER.get(token) is not None
        assert any(token != "-" for token in traces)


class TestHttpDebugEndpoints:
    @pytest.fixture
    def server(self, front):
        server = make_http_server(front, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()

    def _url(self, server, path):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}{path}"

    def _get(self, server, path):
        with urllib.request.urlopen(self._url(server, path)) as response:
            return response.status, json.loads(response.read())

    def test_slow_query_record_over_http_with_span_tree(self, server, front):
        # Acceptance pin: a slow query's record — full span tree included
        # — is retrievable over HTTP filtered by minimum latency.
        RECORDER.configure(sample_rate=0.0, slow_ms=0.0)
        body = front.handle({"query": "EXISTS y . R(x, y)"})
        status, listing = self._get(
            server, f"/debug/queries?min_ms=0&route={body['route']}"
        )
        assert status == 200
        match = next(
            q for q in listing["queries"] if q["trace_id"] == body["trace_id"]
        )
        assert match["slow"] is True and match["sampled"] is False
        tree = match["trace"]
        assert tree["name"] == "query"
        assert tree["attributes"]["trace_id"] == body["trace_id"]
        assert tree["children"], "span tree lost its children over HTTP"

        status, record = self._get(
            server, f"/debug/queries/{body['trace_id']}"
        )
        assert status == 200
        assert record == match

    def test_debug_queries_filters_and_errors(self, server, front):
        front.handle({"query": "EXISTS y . R(x, y)"})
        status, listing = self._get(server, "/debug/queries?limit=1")
        assert status == 200 and listing["count"] <= 1
        status, empty = self._get(server, "/debug/queries?min_ms=1e9")
        assert status == 200 and empty["count"] == 0

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/debug/queries?min_ms=banana")
        assert excinfo.value.code == 400

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/debug/queries/unknown-id")
        assert excinfo.value.code == 404
        assert "error" in json.loads(excinfo.value.read())


class TestCliTopTrace:
    @pytest.fixture
    def server(self, front):
        server = make_http_server(front, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}", front
        server.shutdown()
        server.server_close()

    def test_top_renders_recorded_queries(self, server, capsys):
        url, front = server
        body = front.handle({"query": "EXISTS y . R(x, y)"})
        assert main(["top", "--url", url]) == 0
        out = capsys.readouterr().out
        assert body["trace_id"] in out
        assert "ROUTE" in out and "R(x, y)" in out

    def test_top_json_and_empty_listing(self, server, capsys):
        url, front = server
        assert main(["top", "--url", url, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"count": 0, "queries": []}
        assert main(["top", "--url", url]) == 0
        assert "no recorded queries" in capsys.readouterr().out

    def test_trace_renders_span_tree(self, server, capsys):
        url, front = server
        body = front.handle({"query": "EXISTS y . R(x, y)"})
        assert main(["trace", body["trace_id"], "--url", url]) == 0
        out = capsys.readouterr().out
        assert f"trace {body['trace_id']}" in out
        assert "└─" in out
        assert "engine=" in out and "route=" in out

    def test_trace_unknown_id_exits_with_error(self, server):
        url, _ = server
        with pytest.raises(SystemExit, match="no recorded query"):
            main(["trace", "unknown-id", "--url", url])

    def test_top_unreachable_server_explains(self):
        with pytest.raises(SystemExit, match="repro serve"):
            main(["top", "--url", "http://127.0.0.1:1"])

    def test_top_watch_refreshes_until_iterations(self, server, capsys):
        url, front = server
        front.handle({"query": "EXISTS y . R(x, y)"})
        assert main(
            ["top", "--url", url, "--watch", "0.01", "--iterations", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("repro top @") == 2
        assert out.count("ROUTE") == 2

    def test_top_watch_rejects_nonpositive_interval(self, server):
        url, _ = server
        with pytest.raises(SystemExit, match="positive"):
            main(["top", "--url", url, "--watch", "0"])

    def test_trace_latest_shorthand(self, server, capsys):
        url, front = server
        front.handle({"query": "EXISTS y . R(x, y)"})
        latest = front.handle({"query": "EXISTS x, y . R(x, y)"})
        assert main(["trace", "latest", "--url", url]) == 0
        assert f"trace {latest['trace_id']}" in capsys.readouterr().out

    def test_trace_slowest_shorthand(self, server, capsys):
        url, front = server
        front.handle({"query": "EXISTS y . R(x, y)"})
        front.handle({"query": "EXISTS x, y . R(x, y)"})
        slowest = front.debug_queries(slowest=True, limit=1)["queries"][0]
        assert main(["trace", "slowest", "--url", url]) == 0
        assert f"trace {slowest['trace_id']}" in capsys.readouterr().out

    def test_trace_shorthand_with_empty_recorder_explains(self, server):
        url, _ = server
        with pytest.raises(SystemExit, match="no recorded queries"):
            main(["trace", "latest", "--url", url])


class TestCliProfile:
    @pytest.fixture
    def mgr_csv(self, tmp_path):
        path = tmp_path / "Mgr.csv"
        path.write_text(
            "Name,Dept,Salary:number\nMary,RD,40\nMary,IT,20\nJohn,RD,10\n"
        )
        return path

    def test_profile_prints_span_tree(self, mgr_csv, capsys):
        code = main(
            [
                "query",
                "--csv", str(mgr_csv),
                "--relation", "Mgr",
                "--fd", "Name -> Dept, Salary",
                "--query", "EXISTS d, s . Mgr(Mary, d, s)",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "└─" in out
        assert "route=" in out
        assert "parse" in out

    def test_profile_json_keeps_stdout_machine_readable(self, mgr_csv, capsys):
        code = main(
            [
                "query",
                "--csv", str(mgr_csv),
                "--relation", "Mgr",
                "--fd", "Name -> Dept, Salary",
                "--query", "EXISTS d, s . Mgr(Mary, d, s)",
                "--profile",
                "--json",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["verdict"] == "true"
        assert "└─" in captured.err
        # The span tree ships inside the machine-readable payload too.
        assert payload["trace"]["name"] == "query"
        assert payload["trace"]["children"]

    def test_serve_rejects_bad_recorder_flags(self, mgr_csv):
        base = [
            "serve",
            "--csv", str(mgr_csv),
            "--relation", "Mgr",
            "--fd", "Name -> Dept, Salary",
        ]
        with pytest.raises(SystemExit, match="--trace-sample"):
            main(base + ["--trace-sample", "1.5"])
        with pytest.raises(SystemExit, match="--slow-ms"):
            main(base + ["--slow-ms", "-3"])

    def test_profile_prefsql_backend_shows_route(self, mgr_csv, capsys):
        code = main(
            [
                "query",
                "--csv", str(mgr_csv),
                "--relation", "Mgr",
                "--fd", "Name -> Dept, Salary",
                "--backend", "prefsql",
                "--prefer-new", "Salary",
                "--family", "G",
                "--query", "EXISTS d, s . Mgr(Mary, d, s)",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "route=prefsql" in out or "route=sqlite" in out
