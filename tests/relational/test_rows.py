"""Unit tests for immutable rows."""

import pytest

from repro.exceptions import SchemaError, UnknownAttributeError
from repro.relational.rows import Row, sorted_rows
from repro.relational.schema import RelationSchema

SCHEMA = RelationSchema("Mgr", ["Name", "Dept", "Salary:number"])


class TestRowBasics:
    def test_attribute_access(self):
        row = Row(SCHEMA, ("Mary", "R&D", 40))
        assert row["Name"] == "Mary"
        assert row["Salary"] == 40

    def test_unknown_attribute(self):
        row = Row(SCHEMA, ("Mary", "R&D", 40))
        with pytest.raises(UnknownAttributeError):
            row["Reports"]

    def test_relation_name(self):
        assert Row(SCHEMA, ("Mary", "R&D", 40)).relation == "Mgr"

    def test_type_validation_on_construction(self):
        with pytest.raises(SchemaError):
            Row(SCHEMA, ("Mary", "R&D", "forty"))

    def test_arity_validation(self):
        with pytest.raises(SchemaError):
            Row(SCHEMA, ("Mary", "R&D"))

    def test_immutability(self):
        row = Row(SCHEMA, ("Mary", "R&D", 40))
        with pytest.raises(AttributeError):
            row.values = ("X", "Y", 1)

    def test_iteration_and_len(self):
        row = Row(SCHEMA, ("Mary", "R&D", 40))
        assert list(row) == ["Mary", "R&D", 40]
        assert len(row) == 3


class TestRowEquality:
    def test_equal_by_relation_and_values(self):
        other_schema = RelationSchema("Mgr", ["Name", "Dept", "Salary:number"])
        assert Row(SCHEMA, ("Mary", "R&D", 40)) == Row(
            other_schema, ("Mary", "R&D", 40)
        )

    def test_different_values_not_equal(self):
        assert Row(SCHEMA, ("Mary", "R&D", 40)) != Row(SCHEMA, ("Mary", "R&D", 41))

    def test_different_relation_not_equal(self):
        other = RelationSchema("Emp", ["Name", "Dept", "Salary:number"])
        assert Row(SCHEMA, ("Mary", "R&D", 40)) != Row(other, ("Mary", "R&D", 40))

    def test_hash_consistent_with_equality(self):
        a = Row(SCHEMA, ("Mary", "R&D", 40))
        b = Row(SCHEMA, ("Mary", "R&D", 40))
        assert len({a, b}) == 1


class TestRowOperations:
    def test_project(self):
        row = Row(SCHEMA, ("Mary", "R&D", 40))
        assert row.project(["Salary", "Name"]) == (40, "Mary")

    def test_agrees_with(self):
        a = Row(SCHEMA, ("Mary", "R&D", 40))
        b = Row(SCHEMA, ("Mary", "IT", 40))
        assert a.agrees_with(b, ["Name", "Salary"])
        assert not a.agrees_with(b, ["Dept"])

    def test_replace(self):
        row = Row(SCHEMA, ("Mary", "R&D", 40))
        updated = row.replace(Salary=50)
        assert updated["Salary"] == 50
        assert row["Salary"] == 40  # original untouched

    def test_replace_validates_types(self):
        row = Row(SCHEMA, ("Mary", "R&D", 40))
        with pytest.raises(SchemaError):
            row.replace(Salary="lots")


class TestRowOrdering:
    def test_sorted_rows_is_deterministic(self):
        rows = [
            Row(SCHEMA, ("Mary", "R&D", 40)),
            Row(SCHEMA, ("John", "PR", 30)),
            Row(SCHEMA, ("John", "PR", 4)),
        ]
        assert sorted_rows(set(rows)) == sorted_rows(set(reversed(rows)))

    def test_numbers_sort_numerically(self):
        schema = RelationSchema("R", ["A:number"])
        rows = [Row(schema, (value,)) for value in (10, 2, 33)]
        assert [row["A"] for row in sorted_rows(rows)] == [2, 10, 33]
