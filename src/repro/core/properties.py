"""Executable checkers for the axioms P1–P4 (paper Section 1).

A *family of preferred repairs* assigns to every priority a set of
repairs.  The paper postulates:

* **P1 non-emptiness** — ``RepΦ ≠ ∅``;
* **P2 monotonicity** — ``Φ ⊆ Ψ ⇒ RepΨ ⊆ RepΦ``;
* **P3 non-discrimination** — ``Rep∅ = Rep``;
* **P4 categoricity** — ``Φ total ⇒ |RepΦ| = 1``.

These are ∀-statements over all priorities, so they cannot be *proved*
by testing; the checkers here *refute or corroborate* them on concrete
scenarios, and the property-based test-suite runs them over randomized
instances.  A family is represented extensionally as a callable
``Priority → list of repairs``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

from repro.constraints.conflict_graph import ConflictGraph
from repro.priorities.priority import Priority
from repro.relational.rows import Row
from repro.repairs.enumerate import enumerate_repairs

Repair = FrozenSet[Row]
FamilyFunction = Callable[[Priority], Sequence[Repair]]


def check_p1_nonempty(family: FamilyFunction, priority: Priority) -> bool:
    """P1 on one scenario: the selected repair set is nonempty."""
    return len(family(priority)) > 0


def check_p2_monotone_pair(
    family: FamilyFunction, smaller: Priority, larger: Priority
) -> bool:
    """P2 on one extension pair: ``Rep(larger) ⊆ Rep(smaller)``."""
    if not larger.is_extension_of(smaller):
        raise ValueError("second priority does not extend the first")
    return set(family(larger)) <= set(family(smaller))


def check_p2_monotone(
    family: FamilyFunction,
    priority: Priority,
    samples: int = 8,
    rng: Optional[random.Random] = None,
) -> bool:
    """P2 against sampled extensions of ``priority`` (and one total one)."""
    rng = rng or random.Random(0)
    extensions: List[Priority] = []
    free = priority.unoriented_edges()
    if free:
        extensions.append(priority.some_total_extension())
    for _ in range(samples):
        if not free:
            break
        chosen = rng.sample(free, rng.randint(1, len(free)))
        additional = []
        for pair in chosen:
            first, second = tuple(pair)
            additional.append((first, second) if rng.random() < 0.5 else (second, first))
        try:
            extensions.append(priority.extend(additional))
        except Exception:
            continue  # random orientation may be cyclic; skip it
    base = set(family(priority))
    return all(set(family(extension)) <= base for extension in extensions)


def check_p3_nondiscrimination(
    family: FamilyFunction, graph: ConflictGraph
) -> bool:
    """P3: with the empty priority, every repair is selected."""
    from repro.priorities.priority import empty_priority

    selected = set(family(empty_priority(graph)))
    return selected == set(enumerate_repairs(graph))


def check_p4_categorical(
    family: FamilyFunction, priority: Priority
) -> Optional[bool]:
    """P4 on one scenario: a total priority selects exactly one repair.

    Returns ``None`` when the priority is not total (P4 says nothing).
    """
    if not priority.is_total:
        return None
    return len(family(priority)) == 1


@dataclass
class PropertyReport:
    """Outcome of running all four checkers on one scenario."""

    p1: bool
    p2: bool
    p3: bool
    p4: Optional[bool]
    violations: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def all_hold(self) -> bool:
        return self.p1 and self.p2 and self.p3 and (self.p4 is not False)


def audit_family(
    family: FamilyFunction,
    priority: Priority,
    samples: int = 8,
    rng: Optional[random.Random] = None,
) -> PropertyReport:
    """Run every property checker on one scenario and report."""
    p1 = check_p1_nonempty(family, priority)
    p2 = check_p2_monotone(family, priority, samples, rng)
    p3 = check_p3_nondiscrimination(family, priority.graph)
    p4 = check_p4_categorical(family, priority)
    violations = tuple(
        name
        for name, outcome in (("P1", p1), ("P2", p2), ("P3", p3), ("P4", p4))
        if outcome is False
    )
    return PropertyReport(p1, p2, p3, p4, violations)
