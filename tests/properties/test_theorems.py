"""Property-based tests of the paper's propositions and theorems.

Universally quantified statements cannot be proved by testing; these
tests *corroborate* them over randomized instances (and would refute
them with a minimal counterexample, as happened for the claims recorded
in tests/paper/test_errata.py).
"""

import random

from hypothesis import assume, given, settings

from repro.core.cleaning import all_cleaning_results, clean, is_common_repair
from repro.core.families import Family, family_chain, preferred_repairs
from repro.core.optimality import is_globally_optimal
from repro.priorities.priority import empty_priority
from repro.repairs.enumerate import enumerate_repairs
from tests.conftest import key_priorities, two_fd_priorities


class TestProposition1:
    @given(two_fd_priorities(max_tuples=7))
    @settings(max_examples=50, deadline=None)
    def test_total_priority_unique_cleaning_result(self, data):
        _, priority = data
        total = priority.some_total_extension()
        outcomes = set(all_cleaning_results(total))
        assert len(outcomes) == 1
        assert outcomes == {clean(total)}


class TestProposition6:
    @given(two_fd_priorities())
    @settings(max_examples=60, deadline=None)
    def test_common_repairs_are_globally_optimal(self, data):
        """C-Rep ⊆ G-Rep."""
        _, priority = data
        repairs = list(enumerate_repairs(priority.graph))
        for common in all_cleaning_results(priority):
            assert is_globally_optimal(common, priority, repairs)


class TestTheorem1:
    @given(two_fd_priorities())
    @settings(max_examples=60, deadline=None)
    def test_a_common_globally_optimal_repair_always_exists(self, data):
        """Theorem 1 (via Prop 7): the common repairs are nonempty, so
        every P1/P2 family of globally optimal repairs shares a member."""
        _, priority = data
        assert all_cleaning_results(priority)


class TestTheorem2:
    @given(two_fd_priorities(max_tuples=7))
    @settings(max_examples=120, deadline=None)
    def test_c_equals_g_when_not_cyclically_extendable(self, data):
        """C-Rep and G-Rep coincide for priorities that cannot be
        extended to a cyclic orientation of the conflict graph."""
        _, priority = data
        assume(not priority.extendable_to_cyclic_orientation())
        chain = family_chain(priority)
        assert set(chain[Family.COMMON]) == set(chain[Family.GLOBAL])

    def test_separation_requires_cyclic_extendability(self):
        """Contrapositive sanity: our stock C ≠ G example (the Example 9
        reconstruction) is cyclically extendable."""
        from repro.datagen.paper_instances import example9_reconstructed

        scenario = example9_reconstructed()
        chain = family_chain(scenario.priority)
        assert set(chain[Family.COMMON]) == set(chain[Family.GLOBAL])  # equal here
        # A genuine C ⊊ G case must be extendable-to-cyclic by Theorem 2;
        # search small random instances for one and check.
        found = self._find_separation()
        if found is not None:
            assert found.extendable_to_cyclic_orientation()

    @staticmethod
    def _find_separation():
        from repro.constraints.conflict_graph import build_conflict_graph
        from repro.priorities.builders import random_priority
        from repro.datagen.generators import GRID_FDS, random_inconsistent_instance

        for seed in range(300):
            rng = random.Random(seed)
            instance = random_inconsistent_instance(
                rng.randint(3, 7), key_domain=2, rng=rng
            )
            graph = build_conflict_graph(instance, GRID_FDS)
            if not graph.edge_count:
                continue
            priority = random_priority(graph, density=0.5, rng=rng)
            chain = family_chain(priority)
            if set(chain[Family.COMMON]) != set(chain[Family.GLOBAL]):
                return priority
        return None


class TestPropertySweep:
    @given(two_fd_priorities(max_tuples=6))
    @settings(max_examples=30, deadline=None)
    def test_p1_p2_p3_for_all_families(self, data):
        from repro.core.properties import (
            check_p1_nonempty,
            check_p2_monotone,
            check_p3_nondiscrimination,
        )

        _, priority = data
        for family in Family:
            fn = lambda p, f=family: preferred_repairs(f, p)
            assert check_p1_nonempty(fn, priority), family
            assert check_p2_monotone(fn, priority, samples=3,
                                     rng=random.Random(1)), family
            assert check_p3_nondiscrimination(fn, priority.graph), family

    @given(two_fd_priorities(max_tuples=6))
    @settings(max_examples=30, deadline=None)
    def test_p4_for_categorical_families(self, data):
        """P4 holds for G-Rep and C-Rep (Propositions 4, 6) — and, per
        erratum E2, for S-Rep as well."""
        _, priority = data
        total = priority.some_total_extension()
        for family in (Family.SEMI_GLOBAL, Family.GLOBAL, Family.COMMON):
            assert len(preferred_repairs(family, total)) == 1, family

    @given(two_fd_priorities(max_tuples=6))
    @settings(max_examples=30, deadline=None)
    def test_empty_priority_all_families_equal_rep(self, data):
        _, priority = data
        empty = empty_priority(priority.graph)
        chain = family_chain(empty)
        rep = set(chain[Family.REP])
        for family in Family:
            assert set(chain[family]) == rep, family
