"""Normal forms for quantifier-free formulas.

The tractable consistent-query-answering algorithm for {∀,∃}-free
queries (Figure 5, row ``Rep``; algorithmics from [6, 7]) works on the
*disjunctive normal form* of the negated query: ``true`` is a consistent
answer to quantifier-free ``Q`` iff no repair satisfies ``¬Q``, and
satisfiability of a conjunction of literals in *some* repair admits a
polynomial witness search on the conflict graph.

This module provides negation normal form (NNF), DNF conversion with a
safety bound on blow-up, and a structured :class:`LiteralConjunction`
view (positive facts / negated facts / ground comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.exceptions import QueryError
from repro.query.ast import (
    And,
    Atom,
    Comparison,
    FalseFormula,
    Formula,
    Implies,
    Not,
    Or,
    TrueFormula,
    is_quantifier_free,
)

#: Safety valve: DNF conversion refuses to produce more than this many
#: disjuncts (the query is part of the *fixed* input in data complexity,
#: so any constant is principled; this one is generous).
MAX_DNF_DISJUNCTS = 4096


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form of a quantifier-free formula.

    Eliminates ``IMPLIES`` and pushes ``NOT`` down to literals;
    negated comparisons are replaced by their complementary operator.
    """
    if not is_quantifier_free(formula):
        raise QueryError("NNF conversion requires a quantifier-free formula")
    return _nnf(formula, negate=False)


def _nnf(formula: Formula, negate: bool) -> Formula:
    if isinstance(formula, TrueFormula):
        return FalseFormula() if negate else formula
    if isinstance(formula, FalseFormula):
        return TrueFormula() if negate else formula
    if isinstance(formula, Atom):
        return Not(formula) if negate else formula
    if isinstance(formula, Comparison):
        return formula.negated() if negate else formula
    if isinstance(formula, Not):
        return _nnf(formula.body, not negate)
    if isinstance(formula, And):
        parts = [_nnf(part, negate) for part in formula.parts]
        return Or(parts) if negate else And(parts)
    if isinstance(formula, Or):
        parts = [_nnf(part, negate) for part in formula.parts]
        return And(parts) if negate else Or(parts)
    if isinstance(formula, Implies):
        rewritten = Or((Not(formula.antecedent), formula.consequent))
        return _nnf(rewritten, negate)
    raise TypeError(f"unexpected formula node {formula!r}")


def to_dnf(formula: Formula) -> List[List[Formula]]:
    """DNF of a quantifier-free formula as a list of literal lists.

    Each inner list is a conjunction of literals (atoms, negated atoms,
    comparisons); the outer list is their disjunction.  Trivially-true
    disjuncts collapse the result to ``[[]]`` (the empty conjunction);
    an unsatisfiable formula yields ``[]``.
    """
    nnf = to_nnf(formula)
    disjuncts = _dnf(nnf)
    cleaned: List[List[Formula]] = []
    for disjunct in disjuncts:
        literals: List[Formula] = []
        trivially_false = False
        for literal in disjunct:
            if isinstance(literal, TrueFormula):
                continue
            if isinstance(literal, FalseFormula):
                trivially_false = True
                break
            literals.append(literal)
        if trivially_false:
            continue
        if not literals:
            return [[]]
        cleaned.append(literals)
    return cleaned


def _dnf(formula: Formula) -> List[Tuple[Formula, ...]]:
    if isinstance(formula, Or):
        result: List[Tuple[Formula, ...]] = []
        for part in formula.parts:
            result.extend(_dnf(part))
            _check_size(result)
        return result
    if isinstance(formula, And):
        result = [()]
        for part in formula.parts:
            branches = _dnf(part)
            result = [left + right for left in result for right in branches]
            _check_size(result)
        return result
    return [(formula,)]


def _check_size(disjuncts: Sequence[object]) -> None:
    if len(disjuncts) > MAX_DNF_DISJUNCTS:
        raise QueryError(
            f"DNF conversion exceeded {MAX_DNF_DISJUNCTS} disjuncts; "
            "the query is too large for the tractable algorithm"
        )


@dataclass(frozen=True)
class LiteralConjunction:
    """A conjunction of ground literals, split by kind."""

    positive: Tuple[Atom, ...]
    negative: Tuple[Atom, ...]
    comparisons: Tuple[Comparison, ...]

    @classmethod
    def from_literals(cls, literals: Sequence[Formula]) -> "LiteralConjunction":
        positive: List[Atom] = []
        negative: List[Atom] = []
        comparisons: List[Comparison] = []
        for literal in literals:
            if isinstance(literal, Atom):
                positive.append(literal)
            elif isinstance(literal, Not) and isinstance(literal.body, Atom):
                negative.append(literal.body)
            elif isinstance(literal, Comparison):
                comparisons.append(literal)
            else:
                raise QueryError(f"not a literal: {literal}")
        return cls(tuple(positive), tuple(negative), tuple(comparisons))

    @property
    def is_ground(self) -> bool:
        return (
            all(atom.is_ground for atom in self.positive + self.negative)
            and not any(comp.free_variables() for comp in self.comparisons)
        )
