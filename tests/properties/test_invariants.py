"""Cross-cutting invariants of the substrates, property-tested.

These are not claims from the paper but structural facts the paper's
machinery silently relies on; pinning them guards the implementation
against regressions that golden tests would miss.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.conflict_graph import build_conflict_graph
from repro.datagen.generators import GRID_FDS
from repro.priorities.winnow import winnow
from repro.query.ast import And, Atom, Comparison, Const, Not, Or
from repro.query.evaluator import evaluate
from repro.query.normalize import to_dnf, to_nnf
from repro.repairs.enumerate import enumerate_repairs
from tests.conftest import key_instances, key_priorities


class TestRepairStructure:
    @given(key_instances())
    @settings(max_examples=50, deadline=None)
    def test_tuple_in_every_repair_iff_isolated(self, instance):
        graph = build_conflict_graph(instance, GRID_FDS)
        repairs = list(enumerate_repairs(graph))
        in_all = set(graph.vertices)
        for repair in repairs:
            in_all &= repair
        assert in_all == graph.isolated_vertices()

    @given(key_instances())
    @settings(max_examples=50, deadline=None)
    def test_every_tuple_is_in_some_repair(self, instance):
        """Repairs cover the instance: each tuple is consistent alone."""
        graph = build_conflict_graph(instance, GRID_FDS)
        covered = set()
        for repair in enumerate_repairs(graph):
            covered |= repair
        assert covered == graph.vertices

    @given(key_instances())
    @settings(max_examples=50, deadline=None)
    def test_repairs_are_pairwise_incomparable(self, instance):
        graph = build_conflict_graph(instance, GRID_FDS)
        repairs = list(enumerate_repairs(graph))
        for i, first in enumerate(repairs):
            for second in repairs[i + 1 :]:
                assert not first <= second and not second <= first


class TestWinnowInvariants:
    @given(key_priorities())
    @settings(max_examples=50, deadline=None)
    def test_winnow_is_idempotent(self, data):
        _, priority = data
        rows = priority.graph.vertices
        once = winnow(priority, rows)
        assert winnow(priority, once) == once

    @given(key_priorities())
    @settings(max_examples=50, deadline=None)
    def test_winnow_is_monotone_shrinking(self, data):
        _, priority = data
        rows = priority.graph.vertices
        assert winnow(priority, rows) <= rows

    @given(key_priorities())
    @settings(max_examples=50, deadline=None)
    def test_winnow_antitone_in_priority(self, data):
        """More orientations can only shrink the winnow set."""
        from repro.priorities.priority import empty_priority

        _, priority = data
        rows = priority.graph.vertices
        baseline = winnow(empty_priority(priority.graph), rows)
        assert winnow(priority, rows) <= baseline


# ---------------------------------------------------------------------------
# Ground-formula strategies for evaluator/normal-form semantics checks
# ---------------------------------------------------------------------------


def ground_formulas(depth=3):
    atoms = st.builds(
        lambda a, b: Atom("R", [Const(a), Const(b)]),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
    )
    comparisons = st.builds(
        lambda op, a, b: Comparison(op, Const(a), Const(b)),
        st.sampled_from(["=", "!=", "<", ">", "<=", ">="]),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
    )
    leaves = st.one_of(atoms, comparisons)
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.builds(Not, children),
            st.builds(lambda a, b: And([a, b]), children, children),
            st.builds(lambda a, b: Or([a, b]), children, children),
        ),
        max_leaves=8,
    )


class TestNormalFormSemantics:
    @given(key_instances(max_tuples=6), ground_formulas())
    @settings(max_examples=80, deadline=None)
    def test_nnf_preserves_truth(self, instance, formula):
        assert evaluate(to_nnf(formula), instance) == evaluate(formula, instance)

    @given(key_instances(max_tuples=6), ground_formulas())
    @settings(max_examples=80, deadline=None)
    def test_dnf_preserves_truth(self, instance, formula):
        disjuncts = to_dnf(formula)
        reconstructed = any(
            all(evaluate(literal, instance) for literal in conjunction)
            for conjunction in disjuncts
        )
        assert reconstructed == evaluate(formula, instance)

    @given(key_instances(max_tuples=6), ground_formulas())
    @settings(max_examples=80, deadline=None)
    def test_negation_is_involutive(self, instance, formula):
        assert evaluate(Not(Not(formula)), instance) == evaluate(formula, instance)


class TestTractableCqaAgainstDnfSemantics:
    @given(key_instances(max_tuples=6), ground_formulas())
    @settings(max_examples=60, deadline=None)
    def test_some_repair_satisfies_is_sound_and_complete(self, instance, formula):
        from repro.cqa.tractable import some_repair_satisfies_qf

        graph = build_conflict_graph(instance, GRID_FDS)
        expected = any(
            evaluate(formula, repair) for repair in enumerate_repairs(graph)
        )
        assert some_repair_satisfies_qf(formula, graph) == expected
