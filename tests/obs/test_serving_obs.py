"""Serving-layer observability: /metrics, richer /stats and /healthz,
the access log, unified broker cache stats, and ``repro query --profile``."""

from __future__ import annotations

import io
import json
import re
import threading
import urllib.request

import pytest

import repro
from repro.cli import main
from repro.datagen.generators import GRID_FDS, grid_instance
from repro.obs import REGISTRY
from repro.service.broker import Request, RequestBroker
from repro.service.server import ServiceFrontEnd, make_http_server

#: One sample per non-comment exposition line: name{labels} value
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.e+-]+$|^.* \+Inf.*$"
)


@pytest.fixture
def broker():
    broker = RequestBroker()
    broker.register("grid", grid_instance(3, 2), GRID_FDS)
    yield broker
    broker.close()


@pytest.fixture
def front(broker):
    return ServiceFrontEnd(broker)


class TestBrokerObservability:
    def test_backend_of(self, broker):
        assert broker.backend_of("grid") in {"sqlite", "prefsql"}
        memory_only = RequestBroker()
        memory_only.register(
            "m", grid_instance(2, 2), GRID_FDS, sqlite_pushdown=False
        )
        try:
            assert memory_only.backend_of("m") == "incremental"
        finally:
            memory_only.close()

    def test_cache_stats_uniform_shape(self, broker):
        broker.submit([Request(query="EXISTS y . R(x, y)")])
        broker.submit([Request(query="EXISTS y . R(x, y)")])
        caches = broker.stats()["caches"]
        assert set(caches) == {"answer", "context", "component_repair"}
        for family in caches.values():
            assert set(family) == {"entries", "hits", "misses", "evictions"}
        assert caches["answer"]["hits"] >= 1

    def test_stats_reports_backend_per_database(self, broker):
        stats = broker.stats()
        assert stats["databases"]["grid"]["backend"] == broker.backend_of(
            "grid"
        )


class TestFrontEndEndpoints:
    def test_healthz_reports_version_and_backend(self, front):
        body = front.health()
        assert body["version"] == repro.__version__
        assert body["backends"]["grid"] in {
            "incremental", "sqlite", "prefsql",
        }
        assert body["uptime_s"] >= 0

    def test_stats_embeds_metrics_snapshot(self, front):
        front.handle({"query": "EXISTS y . R(x, y)"})
        stats = front.handle({"op": "stats"})
        assert "repro_queries_total" in stats["metrics"]
        assert "caches" in stats

    def test_metrics_renders_query_families(self, front):
        front.handle({"query": "EXISTS y . R(x, y)"})
        text = front.metrics()
        assert "# TYPE repro_queries_total counter" in text
        assert "# TYPE repro_query_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_cache_events_total" in text

    def test_metrics_lines_are_well_formed(self, front):
        front.handle({"query": "EXISTS y . R(x, y)"})
        for line in front.metrics().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert _SAMPLE.match(line), f"malformed sample: {line!r}"


class TestAccessLog:
    def test_query_appends_one_line(self, broker):
        log = io.StringIO()
        front = ServiceFrontEnd(broker, access_log=log)
        front.handle({"query": "EXISTS y . R(x, y)"})
        lines = log.getvalue().splitlines()
        assert len(lines) == 1
        assert "db=grid" in lines[0]
        assert "route=" in lines[0]
        assert "latency_ms=" in lines[0]
        assert re.search(r"answers=\d+|answers=(true|false|undetermined)",
                         lines[0])

    def test_batch_logs_every_item(self, broker):
        log = io.StringIO()
        front = ServiceFrontEnd(broker, access_log=log)
        front.handle(
            {
                "op": "batch",
                "requests": [
                    {"query": "EXISTS y . R(x, y)"},
                    {"query": "EXISTS x, y . R(x, y)"},
                ],
            }
        )
        assert len(log.getvalue().splitlines()) == 2

    def test_no_log_stream_writes_nothing(self, front):
        front.handle({"query": "EXISTS y . R(x, y)"})  # must not raise


class TestHttpMetricsEndpoint:
    @pytest.fixture
    def server(self, front):
        server = make_http_server(front, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()

    def _url(self, server, path):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}{path}"

    def test_get_metrics_prometheus_text(self, server, front):
        front.handle({"query": "EXISTS y . R(x, y)"})
        with urllib.request.urlopen(self._url(server, "/metrics")) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == (
                "text/plain; version=0.0.4"
            )
            body = response.read().decode()
        assert "repro_queries_total" in body
        assert body.endswith("\n")

    def test_healthz_over_http_reports_version(self, server):
        with urllib.request.urlopen(self._url(server, "/healthz")) as response:
            body = json.loads(response.read())
        assert body["version"] == repro.__version__
        assert "backends" in body


class TestCliProfile:
    @pytest.fixture
    def mgr_csv(self, tmp_path):
        path = tmp_path / "Mgr.csv"
        path.write_text(
            "Name,Dept,Salary:number\nMary,RD,40\nMary,IT,20\nJohn,RD,10\n"
        )
        return path

    def test_profile_prints_span_tree(self, mgr_csv, capsys):
        code = main(
            [
                "query",
                "--csv", str(mgr_csv),
                "--relation", "Mgr",
                "--fd", "Name -> Dept, Salary",
                "--query", "EXISTS d, s . Mgr(Mary, d, s)",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "└─" in out
        assert "route=" in out
        assert "parse" in out

    def test_profile_json_keeps_stdout_machine_readable(self, mgr_csv, capsys):
        code = main(
            [
                "query",
                "--csv", str(mgr_csv),
                "--relation", "Mgr",
                "--fd", "Name -> Dept, Salary",
                "--query", "EXISTS d, s . Mgr(Mary, d, s)",
                "--profile",
                "--json",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["verdict"] == "true"
        assert "└─" in captured.err

    def test_profile_prefsql_backend_shows_route(self, mgr_csv, capsys):
        code = main(
            [
                "query",
                "--csv", str(mgr_csv),
                "--relation", "Mgr",
                "--fd", "Name -> Dept, Salary",
                "--backend", "prefsql",
                "--prefer-new", "Salary",
                "--family", "G",
                "--query", "EXISTS d, s . Mgr(Mary, d, s)",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "route=prefsql" in out or "route=sqlite" in out
