"""Example 4 / Figure 1 — experiment EX4/F1.

The instance r_n has exactly 2^n repairs.  We benchmark (a) full
enumeration, whose cost must track 2^n, and (b) component-factored
counting, which stays polynomial because the grid splits into n
independent 2-cliques.  The counts are asserted exactly.
"""

import sys

if not __package__:
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import pytest

from benchmarks._cli import run_pytest_module, sizes

from repro.repairs.enumerate import count_repairs, enumerate_repairs

from benchmarks.workloads import grid_workload

ENUM_SIZES = sizes(full=[8, 12, 16], smoke=[4, 6])
COUNT_SIZES = sizes(full=[16, 64, 256], smoke=[8, 16])
CLIQUE_SIZES = sizes(full=[2, 3, 4], smoke=[2])


@pytest.mark.parametrize("n", ENUM_SIZES)
def test_enumerate_all_repairs(benchmark, n):
    _, graph, _ = grid_workload(n)

    def run():
        return sum(1 for _ in enumerate_repairs(graph))

    assert benchmark(run) == 2**n


@pytest.mark.parametrize("n", COUNT_SIZES)
def test_count_repairs_by_factoring(benchmark, n):
    _, graph, _ = grid_workload(n)
    assert benchmark(count_repairs, graph) == 2**n


@pytest.mark.parametrize("per_group", CLIQUE_SIZES)
def test_count_with_larger_cliques(benchmark, per_group):
    _, graph, _ = grid_workload(12, per_group)
    assert benchmark(count_repairs, graph) == per_group**12


if __name__ == "__main__":
    sys.exit(run_pytest_module(__file__, __doc__))
