"""Unit and property tests for Algorithm 1 and C-Rep (Props 1 and 7)."""

import pytest
from hypothesis import given, settings

from repro.core.cleaning import all_cleaning_results, clean, is_common_repair
from repro.datagen.paper_instances import (
    example7_scenario,
    example8_scenario,
    example9_reconstructed,
    mgr_scenario,
)
from repro.exceptions import CleaningError
from repro.repairs.enumerate import enumerate_repairs
from tests.conftest import key_priorities, two_fd_priorities


class TestCleanAlgorithm1:
    def test_result_is_a_repair(self):
        scenario = mgr_scenario()
        result = clean(scenario.priority)
        assert scenario.graph.is_maximal_independent(result)

    def test_total_priority_unique_result(self):
        """Proposition 1: any sequence of choices yields the same repair."""
        scenario = example8_scenario()
        assert scenario.priority.is_total
        first = clean(scenario.priority, chooser=lambda c: c[0])
        last = clean(scenario.priority, chooser=lambda c: c[-1])
        assert first == last == scenario.row_set("tc")

    @given(two_fd_priorities())
    @settings(max_examples=50, deadline=None)
    def test_total_priorities_are_confluent(self, data):
        """Proposition 1 on random instances."""
        _, priority = data
        total = priority.some_total_extension()
        assert clean(total, chooser=lambda c: c[0]) == clean(
            total, chooser=lambda c: c[-1]
        )

    def test_chooser_must_pick_from_winnow(self):
        scenario = example7_scenario()
        with pytest.raises(CleaningError):
            clean(scenario.priority, chooser=lambda c: scenario.rows["tb"])

    def test_empty_instance(self):
        from repro.constraints.conflict_graph import ConflictGraph
        from repro.priorities.priority import Priority

        graph = ConflictGraph([], [])
        assert clean(Priority(graph, ())) == frozenset()


class TestAllCleaningResults:
    def test_mgr_common_repairs(self):
        scenario = mgr_scenario()
        results = all_cleaning_results(scenario.priority)
        assert set(results) == {
            scenario.row_set("mary_rd", "john_pr"),
            scenario.row_set("john_rd", "mary_it"),
        }

    def test_empty_priority_gives_all_repairs(self):
        """With no orientations, Algorithm 1 can reach every repair."""
        scenario = mgr_scenario(with_priority=False)
        results = set(all_cleaning_results(scenario.priority))
        assert results == set(enumerate_repairs(scenario.graph))

    def test_reconstructed_example9_single_common_repair(self):
        scenario = example9_reconstructed()
        results = all_cleaning_results(scenario.priority)
        assert results == [scenario.row_set("ta", "tc", "te")]

    def test_memoized_equals_naive(self):
        scenario = mgr_scenario()
        assert set(all_cleaning_results(scenario.priority, memoized=True)) == set(
            all_cleaning_results(scenario.priority, memoized=False)
        )

    @given(two_fd_priorities())
    @settings(max_examples=40, deadline=None)
    def test_results_are_repairs(self, data):
        _, priority = data
        for result in all_cleaning_results(priority):
            assert priority.graph.is_maximal_independent(result) or (
                not priority.graph.vertices and result == frozenset()
            )


class TestCommonRepairChecking:
    def test_membership_by_simulation(self):
        """Proposition 7 / Corollary 2: the PTIME simulation check."""
        scenario = mgr_scenario()
        assert is_common_repair(
            scenario.row_set("mary_rd", "john_pr"), scenario.priority
        )
        assert not is_common_repair(
            scenario.row_set("mary_it", "john_pr"), scenario.priority
        )

    def test_non_repair_rejected(self):
        scenario = mgr_scenario()
        assert not is_common_repair(scenario.row_set("mary_rd"), scenario.priority)

    @given(key_priorities())
    @settings(max_examples=50, deadline=None)
    def test_simulation_agrees_with_enumeration_key(self, data):
        _, priority = data
        common = set(all_cleaning_results(priority))
        for repair in enumerate_repairs(priority.graph):
            assert is_common_repair(repair, priority) == (repair in common)

    @given(two_fd_priorities())
    @settings(max_examples=50, deadline=None)
    def test_simulation_agrees_with_enumeration_two_fd(self, data):
        """Confluence of the restricted simulation (Proposition 7)."""
        _, priority = data
        common = set(all_cleaning_results(priority))
        for repair in enumerate_repairs(priority.graph):
            assert is_common_repair(repair, priority) == (repair in common)
