"""Experiments EX1-EX3, EX7/F2, EX8/F3, EX9/F4 — the paper's worked
examples as benchmark targets.

Each benchmark rebuilds a figure's scenario from raw values and
recomputes the artifact the paper reports (conflict graph, repair
families, query verdicts), asserting the expected outputs so the
timing covers the full reproduce-the-example pipeline.
"""

import sys

if not __package__:
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import pytest

from benchmarks._cli import run_pytest_module

from repro.core.families import Family, family_chain
from repro.cqa.answers import Verdict
from repro.cqa.engine import CqaEngine
from repro.datagen.paper_instances import (
    Q1_TEXT,
    Q2_TEXT,
    example4_scenario,
    example7_scenario,
    example8_scenario,
    example9_printed,
    example9_reconstructed,
    mgr_scenario,
)


def test_examples_1_to_3_pipeline(benchmark):
    """EX1-EX3: integrate, detect conflicts, answer Q1/Q2 preferentially."""

    def run():
        scenario = mgr_scenario()
        engine = CqaEngine(
            scenario.instance,
            scenario.dependencies,
            scenario.priority,
            Family.GLOBAL,
        )
        return engine.answer(Q1_TEXT).verdict, engine.answer(Q2_TEXT).verdict

    q1_verdict, q2_verdict = benchmark(run)
    assert q1_verdict is Verdict.FALSE
    assert q2_verdict is Verdict.TRUE


@pytest.mark.parametrize(
    "builder,expected_sizes",
    [
        (example7_scenario, {"Rep": 3, "L-Rep": 1, "S-Rep": 1, "G-Rep": 1, "C-Rep": 1}),
        (example8_scenario, {"Rep": 2, "L-Rep": 2, "S-Rep": 1, "G-Rep": 1, "C-Rep": 1}),
        (example9_printed, {"Rep": 4, "L-Rep": 1, "S-Rep": 1, "G-Rep": 1, "C-Rep": 1}),
        (
            example9_reconstructed,
            {"Rep": 2, "L-Rep": 2, "S-Rep": 2, "G-Rep": 1, "C-Rep": 1},
        ),
    ],
    ids=["ex7_fig2", "ex8_fig3", "ex9_printed_fig4", "ex9_reconstructed_fig4"],
)
def test_figure_family_tables(benchmark, builder, expected_sizes):
    def run():
        scenario = builder()
        return {
            str(family): len(repairs)
            for family, repairs in family_chain(scenario.priority).items()
        }

    assert benchmark(run) == expected_sizes


def test_figure1_grid(benchmark):
    """EX4/F1: build the n=4 grid and enumerate its 16 repairs."""
    from repro.repairs.enumerate import enumerate_repairs

    def run():
        scenario = example4_scenario(4)
        return sum(1 for _ in enumerate_repairs(scenario.graph))

    assert benchmark(run) == 16


if __name__ == "__main__":
    sys.exit(run_pytest_module(__file__, __doc__))
