"""Repairs: enumeration, checking and sampling of maximal consistent subsets."""

from repro.repairs.enumerate import (
    Repair,
    all_repairs,
    count_repairs,
    enumerate_repairs,
    repairs_capped,
)
from repro.repairs.checking import (
    complete_to_repair,
    consistent_subinstance,
    is_repair,
    is_repair_on_graph,
)
from repro.repairs.sampling import random_repair, sample_repairs

__all__ = [
    "Repair",
    "all_repairs",
    "complete_to_repair",
    "consistent_subinstance",
    "count_repairs",
    "enumerate_repairs",
    "is_repair",
    "is_repair_on_graph",
    "random_repair",
    "repairs_capped",
    "sample_repairs",
]
