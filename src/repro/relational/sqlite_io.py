"""SQLite persistence for relation instances and databases.

Uses only the standard-library :mod:`sqlite3` driver.  Each relation is
stored as a table whose columns mirror the schema (NAME attributes become
``TEXT``, NUMBER attributes become ``INTEGER``), plus a companion
``_repro_schema`` table recording declared attribute types so that
round-trips preserve domains exactly even for empty instances.

Connections are always used through context managers and queries are
parameterized — never string-interpolated — per standard database-code
hygiene.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.exceptions import SchemaError, UnknownRelationError
from repro.relational.domain import AttributeType
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import Attribute, RelationSchema

_SCHEMA_TABLE = "_repro_schema"

_SQL_TYPES = {
    AttributeType.NAME: "TEXT",
    AttributeType.NUMBER: "INTEGER",
}


def _quote_ident(name: str) -> str:
    """Quote an identifier; names are validated by the schema layer."""
    return '"' + name.replace('"', '""') + '"'


def _ensure_schema_table(connection: sqlite3.Connection) -> None:
    connection.execute(
        f"CREATE TABLE IF NOT EXISTS {_SCHEMA_TABLE} ("
        "relation TEXT NOT NULL, position INTEGER NOT NULL, "
        "attribute TEXT NOT NULL, type TEXT NOT NULL, "
        "PRIMARY KEY (relation, position))"
    )


def save_instance(
    instance: RelationInstance, target: Union[str, Path, sqlite3.Connection]
) -> None:
    """Store ``instance`` into a SQLite database file or open connection.

    Any existing table of the same name is replaced.
    """
    own = not isinstance(target, sqlite3.Connection)
    connection = sqlite3.connect(target) if own else target
    try:
        with connection:
            _ensure_schema_table(connection)
            name = instance.schema.name
            connection.execute(f"DROP TABLE IF EXISTS {_quote_ident(name)}")
            columns = ", ".join(
                f"{_quote_ident(attr.name)} {_SQL_TYPES[attr.type]} NOT NULL"
                for attr in instance.schema.attributes
            )
            connection.execute(f"CREATE TABLE {_quote_ident(name)} ({columns})")
            connection.execute(
                f"DELETE FROM {_SCHEMA_TABLE} WHERE relation = ?", (name,)
            )
            connection.executemany(
                f"INSERT INTO {_SCHEMA_TABLE} VALUES (?, ?, ?, ?)",
                [
                    (name, pos, attr.name, attr.type.value)
                    for pos, attr in enumerate(instance.schema.attributes)
                ],
            )
            placeholders = ", ".join("?" for _ in instance.schema.attributes)
            connection.executemany(
                f"INSERT INTO {_quote_ident(name)} VALUES ({placeholders})",
                [row.values for row in instance.sorted()],
            )
    finally:
        if own:
            connection.close()


def load_instance(
    source: Union[str, Path, sqlite3.Connection], relation_name: str
) -> RelationInstance:
    """Load one relation instance from a SQLite database."""
    own = not isinstance(source, sqlite3.Connection)
    connection = sqlite3.connect(source) if own else source
    try:
        schema = _load_schema(connection, relation_name)
        cursor = connection.execute(f"SELECT * FROM {_quote_ident(relation_name)}")
        loaded_columns = [description[0] for description in cursor.description]
        if tuple(loaded_columns) != schema.attribute_names:
            raise SchemaError(
                f"table columns {loaded_columns} do not match recorded schema "
                f"{schema.attribute_names}"
            )
        return RelationInstance.from_values(schema, cursor.fetchall())
    finally:
        if own:
            connection.close()


def _load_schema(connection: sqlite3.Connection, relation_name: str) -> RelationSchema:
    _ensure_schema_table(connection)
    cursor = connection.execute(
        f"SELECT attribute, type FROM {_SCHEMA_TABLE} "
        "WHERE relation = ? ORDER BY position",
        (relation_name,),
    )
    records = cursor.fetchall()
    if records:
        return RelationSchema(
            relation_name,
            [Attribute(attr, AttributeType(type_text)) for attr, type_text in records],
        )
    # Fall back to SQLite's own catalog for tables created outside repro.
    cursor = connection.execute(
        "SELECT name, type FROM pragma_table_info(?) ORDER BY cid", (relation_name,)
    )
    records = cursor.fetchall()
    if not records:
        raise UnknownRelationError(
            f"no table {relation_name!r} in the SQLite database"
        )
    attributes = [
        Attribute(
            attr,
            AttributeType.NUMBER if sql_type.upper().startswith("INT") else AttributeType.NAME,
        )
        for attr, sql_type in records
    ]
    return RelationSchema(relation_name, attributes)


def save_database(
    database: Database, target: Union[str, Path, sqlite3.Connection]
) -> None:
    """Store every relation of ``database`` (see :func:`save_instance`)."""
    own = not isinstance(target, sqlite3.Connection)
    connection = sqlite3.connect(target) if own else target
    try:
        for instance in database:
            save_instance(instance, connection)
    finally:
        if own:
            connection.close()


def load_database(
    source: Union[str, Path, sqlite3.Connection],
    relation_names: Optional[Iterable[str]] = None,
) -> Database:
    """Load several relations into a :class:`Database`.

    Without ``relation_names``, loads every relation recorded in the
    companion schema table.
    """
    own = not isinstance(source, sqlite3.Connection)
    connection = sqlite3.connect(source) if own else source
    try:
        if relation_names is None:
            _ensure_schema_table(connection)
            cursor = connection.execute(
                f"SELECT DISTINCT relation FROM {_SCHEMA_TABLE} ORDER BY relation"
            )
            relation_names = [record[0] for record in cursor.fetchall()]
        instances: List[RelationInstance] = [
            load_instance(connection, name) for name in relation_names
        ]
        return Database(instances)
    finally:
        if own:
            connection.close()
