"""`analyze(schema, fds, priority, query) -> RouteReport`.

The one place the routing rules of every engine live:

* **memory** (:class:`repro.cqa.engine.CqaEngine`): always streams;
  route ``"naive"`` or ``"indexed"``.
* **sqlite** (:class:`repro.backend.engine.SqlCqaEngine`): blocked by
  declared priority edges (``RA302`` — the rewriting is
  preference-blind) and by every shape/theory blocker of the
  classification; otherwise route ``"sqlite"``.
* **prefsql** (:class:`repro.prefsql.engine.PrefSqlCqaEngine`): blocked
  by duplicate physical rows in a mentioned prioritized relation
  (``RA303``) and the classification blockers; otherwise routes
  ``"prefsql"`` when the query mentions a profiled relation with
  priority edges, else plain ``"sqlite"``.

Everything except the duplicate-row set is data-independent; callers
that know their instance pass ``duplicate_row_relations`` (the engines
compute it once per theory change, the broker's report cache keys on
it), so a cached report stays exact.

Blocking order per engine reproduces each engine's historical check
order: the theory gate (RA302 / RA303) fires *before* shape analysis,
exactly as ``SqlCqaEngine._decide`` and ``PrefSqlCqaEngine._analyze``
short-circuit, so :meth:`RouteReport.expected_last_route` matches the
engine's ``last_route`` string bit-for-bit.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.constraints.fd import FunctionalDependency
from repro.query.ast import Formula, relations_of
from repro.relational.schema import DatabaseSchema

from .model import (
    MEMORY,
    PREFSQL,
    SQLITE,
    Diagnostic,
    RouteReport,
    Span,
    make_diagnostic,
    theory_fingerprint,
)
from .profiles import NotRewritable, dirty_profile
from .shapes import Classification, classify


def profiled_relations(
    schema: DatabaseSchema,
    dependencies: Sequence[FunctionalDependency],
    names: AbstractSet[str],
) -> FrozenSet[str]:
    """The subset of ``names`` with a usable conflict profile (violable
    FDs sharing one LHS) — the relations the prefsql engine orients
    edges for."""
    usable = set()
    for name in names:
        try:
            profile = dirty_profile(schema.relation(name), dependencies)
        except NotRewritable:
            continue
        if profile is not None:
            usable.add(name)
    return frozenset(usable)


def _priority_relations(priority_edges: Sequence) -> FrozenSet[str]:
    names = set()
    for preferred, dominated in priority_edges:
        names.add(preferred.relation)
        names.add(dominated.relation)
    return frozenset(names)


def _fingerprint(
    schema: DatabaseSchema,
    dependencies: Sequence[FunctionalDependency],
    priority_edges: Sequence,
    duplicate_row_relations: AbstractSet[str],
    formula: Formula,
    variables: Optional[Sequence[str]],
    naive: bool,
) -> str:
    return theory_fingerprint(
        {
            "schema": [
                [
                    relation.name,
                    [[a.name, a.type.value] for a in relation.attributes],
                ]
                for relation in schema
            ],
            "fds": sorted(
                [fd.relation, sorted(fd.lhs), sorted(fd.rhs)]
                for fd in dependencies
            ),
            "priority": sorted(
                [
                    [preferred.relation, list(preferred.values)],
                    [dominated.relation, list(dominated.values)],
                ]
                for preferred, dominated in priority_edges
            ),
            "duplicates": sorted(duplicate_row_relations),
            "query": str(formula),
            "variables": list(variables) if variables is not None else None,
            "naive": naive,
        }
    )


def _locate(diagnostic: Diagnostic, query_text: Optional[str]) -> Diagnostic:
    """Best-effort span: first occurrence of the subject token."""
    if query_text and diagnostic.subject:
        start = query_text.find(diagnostic.subject)
        if start >= 0:
            return diagnostic.with_span(
                Span(start, start + len(diagnostic.subject))
            )
    return diagnostic


def analyze(
    schema: DatabaseSchema,
    dependencies: Sequence[FunctionalDependency],
    query: Formula,
    variables: Optional[Sequence[str]] = None,
    *,
    priority: Sequence = (),
    duplicate_row_relations: AbstractSet[str] = frozenset(),
    naive: bool = False,
    query_text: Optional[str] = None,
) -> RouteReport:
    """Classify the quadruple and predict every engine's route.

    ``priority`` is a sequence of ``(preferred, dominated)`` row pairs
    (the spelling of :class:`repro.priorities.priority.Priority` edges);
    ``duplicate_row_relations`` names prioritized relations whose stored
    rows are not physically unique (the prefsql engine streams those).
    Raises :class:`repro.exceptions.QueryBindingError` for answer
    variables not free in the formula, like every engine does.
    """
    classification = classify(query, schema, dependencies, variables)
    text = query_text if query_text is not None else str(query)

    diagnostics: List[Diagnostic] = []
    prioritized_all = _priority_relations(priority)
    if prioritized_all:
        # SqlCqaEngine refuses *any* declared priority, before it even
        # looks at the query.
        diagnostics.append(make_diagnostic("RA302"))

    # The prefsql engine intersects relations_of(formula) — the full
    # mention set, even inside non-conjunctive constructs — with its
    # blocked/prioritized maps, and that check precedes shape analysis.
    mentioned = relations_of(query)
    duplicated = sorted(mentioned & set(duplicate_row_relations))
    if duplicated:
        # PrefSqlCqaEngine reports min() of the blocked intersection.
        diagnostics.append(
            make_diagnostic(
                "RA303", subject=duplicated[0], relation=duplicated[0]
            )
        )

    # Classification diagnostics include the C_forest verdict: a sound
    # multi-dirty key-join forest arrives as informational RA011 (both
    # pushed engines compile it), anything else as blocking RA201.
    diagnostics.extend(classification.diagnostics)

    prioritized_mentioned = tuple(
        sorted(
            mentioned
            & profiled_relations(schema, dependencies, prioritized_all)
        )
    )
    routes: Dict[str, str] = {
        MEMORY: "naive" if naive else "indexed",
        SQLITE: "sqlite",
        PREFSQL: "prefsql" if prioritized_mentioned else "sqlite",
    }

    return RouteReport(
        query=text,
        fingerprint=_fingerprint(
            schema,
            dependencies,
            priority,
            duplicate_row_relations,
            query,
            variables,
            naive,
        ),
        routes=routes,
        diagnostics=tuple(_locate(d, text) for d in diagnostics),
        plan_kind=classification.plan_kind,
        relations=tuple(sorted(mentioned)),
        prioritized=prioritized_mentioned,
    )
