"""Repair optimality notions (paper Section 3).

Given a repair ``r'`` of instance ``r`` and a priority ``≻``:

* **locally optimal** — no single tuple ``x ∈ r'`` can be swapped for a
  dominating tuple ``y ≻ x`` keeping consistency;
* **semi-globally optimal** — no nonempty ``X ⊆ r'`` can be swapped for
  one tuple ``y`` dominating all of ``X`` keeping consistency;
* **globally optimal** — no nonempty ``X ⊆ r'`` can be swapped for a
  *set* ``Y`` covering ``X`` under domination, keeping consistency;
  equivalently (Proposition 5) ``r'`` is ≪-maximal among repairs.

Global ⟹ semi-global ⟹ local.  The local and semi-global checks are
polynomial (Theorem 4, Corollary 1); the global check requires
essential nondeterminism (Theorem 5, co-NP-complete) and is realized
here as an exact exponential witness search.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import AbstractSet, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.constraints.conflict_graph import ConflictGraph
from repro.core.lifting import maximal_under_preference, strictly_prefers
from repro.priorities.priority import Priority
from repro.relational.rows import Row

Repair = FrozenSet[Row]


def is_locally_optimal(repair: AbstractSet[Row], priority: Priority) -> bool:
    """L-repair check, PTIME (Theorem 4).

    ``r'`` fails iff some outside tuple ``y`` has exactly one conflict
    neighbour ``x`` inside ``r'`` and ``y ≻ x`` — then ``(r'∖{x}) ∪ {y}``
    is consistent and locally improves.
    """
    graph = priority.graph
    repair = frozenset(repair)
    for outsider in graph.vertices - repair:
        inside = graph.neighbours(outsider) & repair
        if len(inside) == 1:
            (blocker,) = inside
            if priority.dominates(outsider, blocker):
                return False
    return True


def is_semi_globally_optimal(repair: AbstractSet[Row], priority: Priority) -> bool:
    """S-repair check, PTIME (Corollary 1).

    ``r'`` fails iff some outside tuple ``y`` dominates *all* of its
    conflict neighbours inside ``r'`` (take ``X = n(y) ∩ r'``; the set is
    nonempty because ``r'`` is maximal).
    """
    graph = priority.graph
    repair = frozenset(repair)
    for outsider in graph.vertices - repair:
        inside = graph.neighbours(outsider) & repair
        if inside and all(
            priority.dominates(outsider, blocker) for blocker in inside
        ):
            return False
    return True


def is_globally_optimal(
    repair: AbstractSet[Row],
    priority: Priority,
    repairs: Optional[Sequence[Repair]] = None,
) -> bool:
    """G-repair check via Proposition 5 (co-NP-complete, Theorem 5).

    ``r'`` is globally optimal iff no repair is ≪-preferred over it.
    The search enumerates repairs lazily with early exit; pass a
    precomputed ``repairs`` list when checking many candidates against
    the same instance.
    """
    from repro.repairs.enumerate import enumerate_repairs  # cycle guard

    repair = frozenset(repair)
    candidates: Iterable[Repair] = (
        repairs if repairs is not None else enumerate_repairs(priority.graph)
    )
    for other in candidates:
        if strictly_prefers(priority, repair, other):
            return False
    return True


def globally_optimal_repairs(
    priority: Priority, repairs: Optional[Sequence[Repair]] = None
) -> List[Repair]:
    """All globally optimal repairs (the ≪-maximal repairs)."""
    from repro.repairs.enumerate import enumerate_repairs  # cycle guard

    pool: List[Repair] = (
        list(repairs) if repairs is not None else list(enumerate_repairs(priority.graph))
    )
    return maximal_under_preference(priority, pool)


def _nonempty_subsets(rows: Sequence[Row]) -> Iterable[FrozenSet[Row]]:
    return (
        frozenset(subset)
        for subset in chain.from_iterable(
            combinations(rows, size) for size in range(1, len(rows) + 1)
        )
    )


def is_globally_optimal_by_definition(
    repair: AbstractSet[Row], priority: Priority
) -> bool:
    """G-optimality by the *definitional* replacement test (Section 3).

    Searches for a nonempty ``X ⊆ r'`` and a set ``Y`` with
    ``∀x∈X ∃y∈Y. y ≻ x`` such that ``(r' ∖ X) ∪ Y`` is consistent.
    Doubly exponential in the repair size — use only on small instances;
    property tests cross-check it against the Proposition 5 form, and
    ablation ABL1 measures the gap.
    """
    graph = priority.graph
    repair = frozenset(repair)
    for removed in _nonempty_subsets(sorted(repair)):
        kept = repair - removed
        # WLOG Y contains only dominators of X that do not conflict with
        # the kept part: other tuples never help consistency or coverage.
        candidates = sorted(
            {
                winner
                for lost in removed
                for winner in priority.dominators_of(lost)
                if not graph.neighbours(winner) & kept
            }
        )
        for gained in _nonempty_subsets(candidates):
            if not graph.is_independent(gained):
                continue
            if all(
                any(priority.dominates(winner, lost) for winner in gained)
                for lost in removed
            ):
                return False
    return True


def optimality_profile(repair: AbstractSet[Row], priority: Priority) -> dict:
    """Which optimality notions the repair satisfies (diagnostics)."""
    local = is_locally_optimal(repair, priority)
    semi = is_semi_globally_optimal(repair, priority)
    overall = is_globally_optimal(repair, priority)
    return {"local": local, "semi_global": semi, "global": overall}
