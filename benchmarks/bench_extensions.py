"""Benchmarks for the future-work extensions (EXT1-EXT3).

EXT1  Aggregation: closed-form key ranges (PTIME) vs enumeration over
      the exponential repair space — the tractability frontier of [2].
EXT2  Denial-constraint CQA over conflict hypergraphs (paper §6).
EXT3  Cyclic-preference condensation overhead vs plain priorities.
"""

import sys

if not __package__:
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import pytest

from benchmarks._cli import run_pytest_module, sizes

from repro.constraints.conflict_graph import build_conflict_graph
from repro.core.cyclic import CyclicPreference
from repro.core.families import Family
from repro.cqa.aggregation import (
    Aggregate,
    key_range_consistent_answer,
    range_consistent_answer,
)
from repro.cqa.hypergraph_cqa import DenialCqaEngine
from repro.constraints.denial import fd_as_denial
from repro.datagen.generators import GRID_FDS, GRID_SCHEMA
from repro.priorities.priority import empty_priority

from benchmarks.workloads import grid_workload, random_workload

# --------------------------------------------------------------------------
# EXT1: aggregation
# --------------------------------------------------------------------------


EXT1_CLOSED_SIZES = sizes(full=[32, 128, 512], smoke=[16])
EXT1_ENUM_SIZES = sizes(full=[5, 7, 9], smoke=[4])
EXT2_SIZES = sizes(full=[8, 12, 16], smoke=[6])
EXT3_SIZES = sizes(full=[64, 128, 256], smoke=[24])


@pytest.mark.parametrize("groups", EXT1_CLOSED_SIZES)
def test_ext1_aggregate_closed_form(benchmark, groups):
    _, graph, _ = grid_workload(groups, per_group=3)
    result = benchmark(key_range_consistent_answer, graph, Aggregate.SUM, "B")
    assert result.lower is not None and result.lower <= result.upper


@pytest.mark.parametrize("groups", EXT1_ENUM_SIZES)
def test_ext1_aggregate_by_enumeration(benchmark, groups):
    _, graph, _ = grid_workload(groups, per_group=3)
    priority = empty_priority(graph)
    result = benchmark(
        range_consistent_answer, priority, Aggregate.SUM, "B", Family.REP
    )
    assert result == key_range_consistent_answer(graph, Aggregate.SUM, "B")


# --------------------------------------------------------------------------
# EXT2: denial-constraint CQA
# --------------------------------------------------------------------------


@pytest.mark.parametrize("n", EXT2_SIZES)
def test_ext2_denial_cqa(benchmark, n):
    instance, _, _ = random_workload(n)
    denial = fd_as_denial(GRID_FDS[0], GRID_SCHEMA)

    def run():
        engine = DenialCqaEngine(instance, [denial])
        return engine.answer("R(0, 0) OR NOT R(0, 0)")

    answer = benchmark(run)
    assert answer.verdict.value == "true"


# --------------------------------------------------------------------------
# EXT3: cyclic-preference condensation
# --------------------------------------------------------------------------


@pytest.mark.parametrize("n", EXT3_SIZES)
def test_ext3_condensation_overhead(benchmark, n):
    _, graph, priority = random_workload(n, density=0.7)
    preference = CyclicPreference(graph, priority.edges)
    condensed = benchmark(preference.condense)
    assert condensed == priority  # acyclic input: identity


if __name__ == "__main__":
    sys.exit(run_pytest_module(__file__, __doc__))
