"""Regression tests: value-skew-aware atom ordering in the planner.

The cardinality-only estimate ranks a small skewed relation ahead of a
larger uniform one even when probing the skewed bound column returns
almost every row — the 99%-one-key regression this satellite fixes with
per-key value histograms (:meth:`EvaluationContext.probe_width`).
"""

from __future__ import annotations

from repro.query.evaluator import EvaluationContext, answers, evaluate
from repro.query.parser import parse_query
from repro.query.planner import AtomStep, plan_block
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema

KEYS = RelationSchema("Keys", ["K:number"])
SKEWED = RelationSchema("Skewed", ["K:number", "P:number"])
UNIFORM = RelationSchema("Uniform", ["K:number", "Q:number"])


def _skewed_rows(total: int = 100):
    """99% of Skewed shares key 0; Uniform spreads keys evenly.

    ``Keys`` is a tiny driver relation: it generates the join key, so
    the planner's real decision is which of the two probed relations to
    visit next once ``k`` is bound.
    """
    rows = [Row(KEYS, [0]), Row(KEYS, [1])]
    rows.extend(Row(SKEWED, [0, position]) for position in range(total - 1))
    rows.append(Row(SKEWED, [1, total]))
    rows.extend(Row(UNIFORM, [position, position]) for position in range(total + 20))
    return rows


class TestProbeWidth:
    def test_uniform_column_width_is_mean_bucket_size(self):
        context = EvaluationContext(
            Row(UNIFORM, [k, v]) for k in range(4) for v in range(3)
        )
        assert context.probe_width("Uniform", (0,)) == 3.0

    def test_skewed_column_width_approaches_cardinality(self):
        context = EvaluationContext(_skewed_rows(100))
        width = context.probe_width("Skewed", (0,))
        assert width > 95  # 99 rows share one key: expected probe ≈ 98

    def test_empty_positions_cost_the_full_scan(self):
        context = EvaluationContext(_skewed_rows(10))
        assert context.probe_width("Skewed", ()) == 10.0

    def test_absent_relation_is_free(self):
        context = EvaluationContext([])
        assert context.probe_width("Nope", (0,)) == 0.0


class TestSkewAwareOrdering:
    QUERY = parse_query(
        "EXISTS p, q . Keys(k) AND Skewed(k, p) AND Uniform(k, q) AND p = q"
    )

    def test_planner_defers_the_skewed_probe(self):
        """With histograms, Uniform (larger but even) is probed first.

        ``Keys`` binds ``k``; both remaining atoms then probe one bound
        column.  The cardinality tie-break prefers Skewed (100 rows vs
        120), but the histogram exposes that a probe on its 99%-one-key
        column returns ~98 rows versus Uniform's 1.
        """
        context = EvaluationContext(_skewed_rows(100))
        plan = context.plan_for(("k", "p", "q"), self.QUERY.body)
        atom_order = [
            step.atom.relation for step in plan.steps if isinstance(step, AtomStep)
        ]
        assert atom_order == ["Keys", "Uniform", "Skewed"]

    def test_cardinality_only_fallback_keeps_the_old_order(self):
        """`plan_block` without an estimator preserves PR 3 behavior."""
        context = EvaluationContext(_skewed_rows(100))
        plan = plan_block(
            ("k", "p", "q"), self.QUERY.body, context.cardinality
        )
        atom_order = [
            step.atom.relation for step in plan.steps if isinstance(step, AtomStep)
        ]
        assert atom_order == ["Keys", "Skewed", "Uniform"]

    def test_answers_are_identical_with_and_without_histograms(self):
        rows = _skewed_rows(40)
        indexed = answers(self.QUERY, rows, ("k",))
        naive = answers(self.QUERY, rows, ("k",), naive=True)
        assert indexed == naive
        assert indexed  # key 0 joins through p = q

    def test_closed_evaluation_matches_naive_on_skew(self):
        rows = _skewed_rows(40)
        closed = parse_query(
            "EXISTS k, p, q . Keys(k) AND Skewed(k, p) AND Uniform(k, q) "
            "AND p = q"
        )
        assert evaluate(closed, rows) == evaluate(closed, rows, naive=True)
