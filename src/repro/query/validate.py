"""Schema validation of formulas.

The evaluator is schema-agnostic (it sees only value tuples), so an
atom with the wrong arity or a misspelled relation name would silently
evaluate to false.  When a schema is available, :func:`check_against_schema`
turns such mistakes into loud :class:`QueryError` diagnostics.
"""

from __future__ import annotations

from repro.exceptions import QueryError
from repro.query.ast import (
    And,
    Atom,
    Comparison,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    TrueFormula,
)
from repro.relational.schema import DatabaseSchema


def check_against_schema(formula: Formula, schema: DatabaseSchema) -> Formula:
    """Validate every atom's relation name and arity; return the formula."""
    _walk(formula, schema)
    return formula


def _walk(node: Formula, schema: DatabaseSchema) -> None:
    if isinstance(node, Atom):
        if not schema.has_relation(node.relation):
            raise QueryError(
                f"query mentions unknown relation {node.relation!r} "
                f"(schema has {sorted(schema.relation_names)})"
            )
        expected = schema.relation(node.relation).arity
        if len(node.terms) != expected:
            raise QueryError(
                f"atom {node} has {len(node.terms)} terms but relation "
                f"{node.relation!r} has arity {expected}"
            )
    elif isinstance(node, Not):
        _walk(node.body, schema)
    elif isinstance(node, (And, Or)):
        for part in node.parts:
            _walk(part, schema)
    elif isinstance(node, Implies):
        _walk(node.antecedent, schema)
        _walk(node.consequent, schema)
    elif isinstance(node, (Exists, Forall)):
        _walk(node.body, schema)
    elif not isinstance(node, (Comparison, TrueFormula, FalseFormula)):
        raise TypeError(f"unexpected formula node {node!r}")
