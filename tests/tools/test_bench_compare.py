"""tools/bench_compare.py: metric flattening, regression warnings,
strict-mode exit codes, and resilience to missing files."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from tools.bench_compare import _load_metrics, compare_file, main


def _write(directory: Path, name: str, payload: dict) -> Path:
    path = directory / name
    path.write_text(json.dumps(payload))
    return path


class TestFlattening:
    def test_nested_numeric_leaves_get_dotted_paths(self, tmp_path):
        path = _write(
            tmp_path,
            "BENCH_x.json",
            {
                "outer": {"inner": {"p95": 0.5}},
                "speedup": 3.0,
                "answers_identical": True,  # bool: not a metric
                "label": "text",  # string: not a metric
            },
        )
        metrics = _load_metrics(path)
        assert metrics == {"outer.inner.p95": 0.5, "speedup": 3.0}

    def test_environment_descriptors_are_ignored(self, tmp_path):
        path = _write(
            tmp_path,
            "BENCH_x.json",
            {"python": 3.12, "seed": 7, "limit": 0.05, "real_metric": 1.0},
        )
        assert _load_metrics(path) == {"real_metric": 1.0}


class TestCompare:
    def test_stable_metrics_produce_no_warnings(self, tmp_path):
        committed = _write(tmp_path, "a.json", {"speedup": 2.0, "p95_s": 0.1})
        fresh = _write(tmp_path, "b.json", {"speedup": 1.9, "p95_s": 0.11})
        lines, warnings = compare_file(committed, fresh)
        assert not warnings
        assert any("speedup" in line and "x0.95" in line for line in lines)

    def test_halved_speedup_warns(self, tmp_path):
        committed = _write(tmp_path, "a.json", {"sql_speedup": 4.0})
        fresh = _write(tmp_path, "b.json", {"sql_speedup": 1.0})
        lines, warnings = compare_file(committed, fresh)
        assert len(warnings) == 1 and "sql_speedup" in warnings[0]
        assert any("REGRESSION" in line for line in lines)

    def test_halved_throughput_warns(self, tmp_path):
        committed = _write(
            tmp_path, "a.json",
            {"cells": {"c4": {"throughput_rps": 5000.0}}, "best_throughput_rps": 6000.0},
        )
        fresh = _write(
            tmp_path, "b.json",
            {"cells": {"c4": {"throughput_rps": 2000.0}}, "best_throughput_rps": 5900.0},
        )
        lines, warnings = compare_file(committed, fresh)
        assert len(warnings) == 1 and "throughput_rps" in warnings[0]
        assert any("throughput halved" in line for line in lines)

    def test_stable_throughput_does_not_warn(self, tmp_path):
        committed = _write(tmp_path, "a.json", {"throughput_rps": 5000.0})
        fresh = _write(tmp_path, "b.json", {"throughput_rps": 3000.0})
        _, warnings = compare_file(committed, fresh)
        assert not warnings

    def test_doubled_p95_warns(self, tmp_path):
        committed = _write(tmp_path, "a.json", {"open": {"p95": 0.01}})
        fresh = _write(tmp_path, "b.json", {"open": {"p95": 0.05}})
        _, warnings = compare_file(committed, fresh)
        assert len(warnings) == 1 and "open.p95" in warnings[0]

    def test_new_and_absent_metrics_are_reported_not_fatal(self, tmp_path):
        committed = _write(tmp_path, "a.json", {"gone": 1.0})
        fresh = _write(tmp_path, "b.json", {"added": 2.0})
        lines, warnings = compare_file(committed, fresh)
        assert not warnings
        assert any("(new)" in line for line in lines)
        assert any("(absent)" in line for line in lines)


class TestMain:
    @pytest.fixture
    def dirs(self, tmp_path):
        committed = tmp_path / "committed"
        fresh = tmp_path / "fresh"
        committed.mkdir()
        fresh.mkdir()
        return committed, fresh

    def _argv(self, committed: Path, fresh: Path, *extra: str):
        return ["--fresh", str(fresh), "--committed", str(committed), *extra]

    def test_regression_exits_zero_by_default(self, dirs, capsys):
        committed, fresh = dirs
        _write(committed, "BENCH_a.json", {"speedup": 4.0})
        _write(fresh, "BENCH_a.json", {"speedup": 1.0})
        assert main(self._argv(committed, fresh)) == 0
        out = capsys.readouterr().out
        assert "1 regression warning(s):" in out
        assert "WARNING:" in out

    def test_strict_turns_warnings_into_failure(self, dirs):
        committed, fresh = dirs
        _write(committed, "BENCH_a.json", {"speedup": 4.0})
        _write(fresh, "BENCH_a.json", {"speedup": 1.0})
        assert main(self._argv(committed, fresh, "--strict")) == 1

    def test_clean_run_reports_no_regressions(self, dirs, capsys):
        committed, fresh = dirs
        _write(committed, "BENCH_a.json", {"p95_s": 0.1})
        _write(fresh, "BENCH_a.json", {"p95_s": 0.12})
        assert main(self._argv(committed, fresh, "--strict")) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_missing_baseline_and_missing_fresh_are_informational(
        self, dirs, capsys
    ):
        committed, fresh = dirs
        _write(fresh, "BENCH_new.json", {"metric": 1.0})
        _write(committed, "BENCH_old.json", {"metric": 1.0})
        assert main(self._argv(committed, fresh, "--strict")) == 0
        out = capsys.readouterr().out
        assert "no committed baseline" in out
        assert "not emitted by this run" in out

    def test_empty_fresh_directory_is_not_fatal(self, dirs, capsys):
        committed, fresh = dirs
        assert main(self._argv(committed, fresh)) == 0
        assert "no BENCH_*.json" in capsys.readouterr().err
