"""Integrity constraints: FDs, FD theory, conflicts, (hyper)graphs."""

from repro.constraints.fd import (
    FunctionalDependency,
    key_dependency,
    parse_fd_set,
    validate_fd_set,
)
from repro.constraints.fd_theory import (
    attribute_closure,
    bcnf_violations,
    candidate_keys,
    equivalent,
    implies,
    is_3nf,
    is_bcnf,
    is_superkey,
    is_trivial,
    minimal_cover,
    project_dependencies,
)
from repro.constraints.conflicts import (
    ConflictEdge,
    conflicting_pairs,
    edge,
    find_conflicts,
    is_consistent,
)
from repro.constraints.conflict_graph import (
    ConflictGraph,
    build_conflict_graph,
    render_conflict_graph,
)
from repro.constraints.denial import (
    ConflictHypergraph,
    DenialConstraint,
    build_conflict_hypergraph,
    fd_as_denial,
    violation_sets,
)

__all__ = [
    "ConflictEdge",
    "ConflictGraph",
    "ConflictHypergraph",
    "DenialConstraint",
    "FunctionalDependency",
    "attribute_closure",
    "bcnf_violations",
    "build_conflict_graph",
    "build_conflict_hypergraph",
    "candidate_keys",
    "conflicting_pairs",
    "edge",
    "equivalent",
    "fd_as_denial",
    "find_conflicts",
    "implies",
    "is_3nf",
    "is_bcnf",
    "is_consistent",
    "is_superkey",
    "is_trivial",
    "key_dependency",
    "minimal_cover",
    "parse_fd_set",
    "project_dependencies",
    "render_conflict_graph",
    "validate_fd_set",
    "violation_sets",
]
