"""Priority builders: turning user knowledge into conflict orientations.

Section 1 of the paper lists the information data-cleaning systems
typically expose for conflict resolution — tuple timestamps and source
reliability — and Example 3 resolves conflicts with a *partial* order on
source reliability.  These builders derive priorities from exactly such
inputs.  Each construction orients edges along a strict (partial) order
on tuples, so acyclicity holds by construction; the resulting
:class:`Priority` re-validates anyway.
"""

from __future__ import annotations

import random
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.constraints.conflict_graph import ConflictGraph
from repro.exceptions import CyclicPriorityError, PriorityError
from repro.priorities.priority import Priority, PriorityEdge
from repro.relational.rows import Row, sorted_rows


def priority_from_pairs(
    graph: ConflictGraph, pairs: Iterable[Tuple[Row, Row]]
) -> Priority:
    """Priority from explicit ``(winner, loser)`` pairs (validated)."""
    return Priority(graph, pairs)


def priority_from_relation(
    graph: ConflictGraph, pairs: Iterable[Tuple[Row, Row]]
) -> Priority:
    """Priority from an arbitrary acyclic relation on *all* tuples.

    The paper notes it is often more natural for a user to provide an
    acyclic relation on the whole instance; its restriction to
    conflicting pairs is then used.  Acyclicity of the full relation is
    checked first so the two views stay equivalent.
    """
    pairs = list(pairs)
    _assert_relation_acyclic(pairs)
    filtered = [
        (winner, loser)
        for winner, loser in pairs
        if graph.are_conflicting(winner, loser)
    ]
    return Priority(graph, filtered)


def priority_from_ranking(
    graph: ConflictGraph,
    rank_of: Callable[[Row], float],
    higher_wins: bool = True,
) -> Priority:
    """Orient each conflict edge toward the lower-ranked tuple.

    Ties stay unoriented, yielding a partial priority.  Acyclic because
    every edge strictly decreases the rank.  This also implements
    timestamp-based resolution ("remove from consideration old, outdated
    tuples"): rank by modification time with ``higher_wins=True``.
    """
    edges: List[PriorityEdge] = []
    for pair in graph.edges():
        first, second = tuple(pair)
        rank_first, rank_second = rank_of(first), rank_of(second)
        if rank_first == rank_second:
            continue
        winner, loser = (
            (first, second) if (rank_first > rank_second) == higher_wins else (second, first)
        )
        edges.append((winner, loser))
    return Priority(graph, edges)


def priority_from_timestamps(
    graph: ConflictGraph, timestamp_of: Mapping[Row, float]
) -> Priority:
    """Newer tuples dominate older conflicting ones (ties unoriented)."""
    missing = [row for row in graph.vertices if row not in timestamp_of]
    if missing:
        raise PriorityError(f"missing timestamps for {len(missing)} tuples")
    return priority_from_ranking(graph, timestamp_of.__getitem__)


def priority_from_source_reliability(
    graph: ConflictGraph,
    source_of: Mapping[Row, Hashable],
    more_reliable_than: Iterable[Tuple[Hashable, Hashable]],
) -> Priority:
    """Example 3: orient conflicts from more- to less-reliable sources.

    ``more_reliable_than`` is a set of ``(better, worse)`` source pairs;
    its transitive closure must be a strict partial order (acyclic).
    Conflicts between sources the order does not compare stay
    unoriented — exactly how Example 3 leaves s1 vs s2 open.
    """
    closure = _transitive_closure(list(more_reliable_than))
    for source_a, source_b in closure:
        if (source_b, source_a) in closure or source_a == source_b:
            raise CyclicPriorityError(
                f"source reliability order is cyclic around {source_a!r}"
            )
    edges: List[PriorityEdge] = []
    for pair in graph.edges():
        first, second = tuple(pair)
        src_first, src_second = source_of[first], source_of[second]
        if (src_first, src_second) in closure:
            edges.append((first, second))
        elif (src_second, src_first) in closure:
            edges.append((second, first))
    return Priority(graph, edges)


def random_priority(
    graph: ConflictGraph,
    density: float = 1.0,
    rng: Optional[random.Random] = None,
) -> Priority:
    """A random acyclic orientation of ~``density`` of the conflict edges.

    Draws a random linear order on the vertices and orients each
    selected edge consistently with it, which guarantees acyclicity and
    (for ``density=1``) can produce every total priority obtainable from
    a linear order.
    """
    if not 0.0 <= density <= 1.0:
        raise PriorityError(f"density must be in [0, 1], got {density}")
    rng = rng or random.Random()
    order = sorted_rows(graph.vertices)
    rng.shuffle(order)
    position = {row: pos for pos, row in enumerate(order)}
    edges: List[PriorityEdge] = []
    for pair in graph.edges():
        if rng.random() > density:
            continue
        first, second = tuple(pair)
        if position[first] < position[second]:
            edges.append((first, second))
        else:
            edges.append((second, first))
    return Priority(graph, edges)


def _transitive_closure(
    pairs: Sequence[Tuple[Hashable, Hashable]]
) -> Set[Tuple[Hashable, Hashable]]:
    closure: Set[Tuple[Hashable, Hashable]] = set(pairs)
    changed = True
    while changed:
        changed = False
        for a, b in list(closure):
            for c, d in list(closure):
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    return closure


def _assert_relation_acyclic(pairs: Sequence[Tuple[Row, Row]]) -> None:
    adjacency: Dict[Row, Set[Row]] = {}
    for winner, loser in pairs:
        adjacency.setdefault(winner, set()).add(loser)
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[Row, int] = {}

    def visit(start: Row) -> None:
        stack = [(start, iter(adjacency.get(start, ())))]
        colour[start] = GREY
        while stack:
            vertex, children = stack[-1]
            advanced = False
            for child in children:
                state = colour.get(child, WHITE)
                if state == GREY:
                    raise CyclicPriorityError(
                        f"relation contains a cycle through {child!r}"
                    )
                if state == WHITE:
                    colour[child] = GREY
                    stack.append((child, iter(adjacency.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                colour[vertex] = BLACK
                stack.pop()

    for vertex in adjacency:
        if colour.get(vertex, WHITE) == WHITE:
            visit(vertex)
