"""Isolate the process-wide registry: every obs test starts empty."""

from __future__ import annotations

import pytest

from repro.obs import REGISTRY


@pytest.fixture(autouse=True)
def clean_registry():
    REGISTRY.reset()
    REGISTRY.enabled = True
    yield
    REGISTRY.reset()
    REGISTRY.enabled = True
