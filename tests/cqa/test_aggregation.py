"""Tests for range-consistent aggregate answers (paper future work / [2])."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.constraints.conflict_graph import build_conflict_graph
from repro.core.families import Family
from repro.cqa.aggregation import (
    Aggregate,
    AggregateRange,
    aggregate_value,
    key_range_consistent_answer,
    range_consistent_answer,
)
from repro.datagen.generators import GRID_FDS, GRID_SCHEMA
from repro.datagen.paper_instances import mgr_scenario
from repro.exceptions import QueryError
from repro.priorities.priority import Priority, empty_priority
from repro.relational.instance import RelationInstance
from tests.conftest import key_instances, key_priorities


def kv(*pairs):
    instance = RelationInstance.from_values(GRID_SCHEMA, pairs)
    return build_conflict_graph(instance, GRID_FDS)


class TestAggregateValue:
    def test_count_star(self):
        graph = kv((1, 1), (2, 2))
        assert aggregate_value(graph.vertices, Aggregate.COUNT_STAR) == 2

    def test_min_max_sum(self):
        graph = kv((1, 5), (2, 7))
        rows = graph.vertices
        assert aggregate_value(rows, Aggregate.MIN, "B") == 5
        assert aggregate_value(rows, Aggregate.MAX, "B") == 7
        assert aggregate_value(rows, Aggregate.SUM, "B") == 12

    def test_avg_is_exact_rational(self):
        graph = kv((1, 1), (2, 2))
        assert aggregate_value(graph.vertices, Aggregate.AVG, "B") == Fraction(3, 2)

    def test_empty_min_is_none(self):
        assert aggregate_value([], Aggregate.MIN, "B") is None

    def test_missing_attribute_rejected(self):
        with pytest.raises(QueryError):
            aggregate_value([], Aggregate.MIN)

    def test_non_numeric_rejected(self):
        scenario = mgr_scenario()
        with pytest.raises(QueryError):
            aggregate_value(scenario.instance.rows, Aggregate.SUM, "Name")


class TestRangeByEnumeration:
    def test_sum_range_over_repairs(self):
        graph = kv((0, 1), (0, 5), (1, 10))
        result = range_consistent_answer(
            empty_priority(graph), Aggregate.SUM, "B"
        )
        assert result == AggregateRange(11, 15)
        assert not result.is_exact
        assert 12 in result and 20 not in result

    def test_count_star_exact_for_key(self):
        graph = kv((0, 1), (0, 2), (1, 1))
        result = range_consistent_answer(
            empty_priority(graph), Aggregate.COUNT_STAR
        )
        assert result == AggregateRange(2, 2)
        assert result.is_exact

    def test_preferences_narrow_the_range(self):
        scenario = mgr_scenario()
        classic = range_consistent_answer(
            scenario.priority, Aggregate.SUM, "Salary", Family.REP
        )
        preferred = range_consistent_answer(
            scenario.priority, Aggregate.SUM, "Salary", Family.GLOBAL
        )
        assert classic.widens(preferred)
        # r1 sums to 70, r2 to 30, the dropped r3 to 50.
        assert preferred == AggregateRange(30, 70)
        assert classic == AggregateRange(30, 70)

    def test_min_over_preferred_repairs(self):
        scenario = mgr_scenario()
        result = range_consistent_answer(
            scenario.priority, Aggregate.MIN, "Salary", Family.GLOBAL
        )
        assert result == AggregateRange(10, 30)


class TestClosedForm:
    def test_matches_paper_style_example(self):
        graph = kv((0, 1), (0, 5), (1, 10), (2, 3), (2, 4))
        assert key_range_consistent_answer(graph, Aggregate.SUM, "B") == (
            AggregateRange(1 + 10 + 3, 5 + 10 + 4)
        )
        assert key_range_consistent_answer(graph, Aggregate.MIN, "B") == (
            AggregateRange(1, 4)
        )
        assert key_range_consistent_answer(graph, Aggregate.MAX, "B") == (
            AggregateRange(10, 10)
        )
        assert key_range_consistent_answer(graph, Aggregate.COUNT_STAR) == (
            AggregateRange(3, 3)
        )

    def test_avg_closed_form(self):
        graph = kv((0, 2), (0, 4), (1, 6))
        result = key_range_consistent_answer(graph, Aggregate.AVG, "B")
        assert result == AggregateRange(Fraction(8, 2), Fraction(10, 2))

    def test_empty_instance(self):
        graph = kv()
        assert key_range_consistent_answer(graph, Aggregate.MIN, "B") == (
            AggregateRange(None, None)
        )
        assert key_range_consistent_answer(graph, Aggregate.COUNT_STAR) == (
            AggregateRange(0, 0)
        )

    def test_rejects_non_clique_components(self):
        from repro.datagen.generators import CHAIN_FDS, chain_instance

        instance = chain_instance(4)
        graph = build_conflict_graph(instance, CHAIN_FDS)
        with pytest.raises(QueryError):
            key_range_consistent_answer(graph, Aggregate.SUM, "B")

    @pytest.mark.parametrize(
        "aggregate,attribute",
        [
            (Aggregate.COUNT_STAR, None),
            (Aggregate.COUNT, "B"),
            (Aggregate.MIN, "B"),
            (Aggregate.MAX, "B"),
            (Aggregate.SUM, "B"),
            (Aggregate.AVG, "B"),
        ],
    )
    @given(instance=key_instances(max_tuples=7))
    @settings(max_examples=30, deadline=None)
    def test_closed_form_equals_enumeration(self, aggregate, attribute, instance):
        graph = build_conflict_graph(instance, GRID_FDS)
        if not graph.vertices:
            return
        closed = key_range_consistent_answer(graph, aggregate, attribute)
        exact = range_consistent_answer(
            empty_priority(graph), aggregate, attribute
        )
        assert closed == exact


class TestMonotonicityAcrossFamilies:
    @given(key_priorities(max_tuples=6))
    @settings(max_examples=30, deadline=None)
    def test_narrower_families_give_narrower_ranges(self, data):
        _, priority = data
        if not priority.graph.vertices:
            return
        rep = range_consistent_answer(priority, Aggregate.SUM, "B", Family.REP)
        for family in (Family.LOCAL, Family.SEMI_GLOBAL, Family.GLOBAL, Family.COMMON):
            narrowed = range_consistent_answer(
                priority, Aggregate.SUM, "B", family
            )
            assert rep.widens(narrowed), family
