"""Tests for consistent query answering over denial constraints (§6)."""

import pytest

from repro.constraints.denial import DenialConstraint, fd_as_denial
from repro.cqa.answers import Verdict
from repro.cqa.engine import CqaEngine
from repro.cqa.hypergraph_cqa import DenialCqaEngine
from repro.datagen.paper_instances import mgr_scenario
from repro.exceptions import QueryError
from repro.query.ast import Atom, Comparison, Var
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema

EMP = RelationSchema("Emp", ["Name", "Dept", "Salary:number"])
BUDGET = RelationSchema("Budget", ["Dept", "Cap:number"])


def overpaid_engine():
    """Emp joined with Budget: salaries may not exceed the dept cap."""
    emp = RelationInstance.from_values(
        EMP, [("Mary", "R&D", 40), ("John", "R&D", 10), ("Zoe", "IT", 15)]
    )
    budget = RelationInstance.from_values(BUDGET, [("R&D", 20), ("IT", 30)])
    constraint = DenialConstraint(
        (
            Atom("Emp", [Var("n"), Var("d"), Var("s")]),
            Atom("Budget", [Var("d"), Var("c")]),
        ),
        Comparison(">", Var("s"), Var("c")),
    )
    return DenialCqaEngine(Database([emp, budget]), [constraint])


class TestCrossRelationDenial:
    def test_two_repairs(self):
        # Mary(40) vs the R&D cap(20): drop either; Zoe and John safe.
        engine = overpaid_engine()
        assert len(engine.repairs()) == 2

    def test_unaffected_facts_are_certain(self):
        engine = overpaid_engine()
        assert engine.answer("Emp(John, 'R&D', 10)").verdict is Verdict.TRUE
        assert engine.answer("Emp(Zoe, 'IT', 15)").verdict is Verdict.TRUE
        assert engine.answer("Budget('IT', 30)").verdict is Verdict.TRUE

    def test_conflicted_facts_are_undetermined(self):
        engine = overpaid_engine()
        assert engine.answer("Emp(Mary, 'R&D', 40)").verdict is Verdict.UNDETERMINED
        assert engine.answer("Budget('R&D', 20)").verdict is Verdict.UNDETERMINED

    def test_disjunction_across_the_conflict(self):
        engine = overpaid_engine()
        answer = engine.answer("Emp(Mary, 'R&D', 40) OR Budget('R&D', 20)")
        assert answer.verdict is Verdict.TRUE

    def test_certain_answers_open_query(self):
        engine = overpaid_engine()
        result = engine.certain_answers(
            "EXISTS d, s . Emp(n, d, s)", ("n",)
        )
        assert result.certain == {("John",), ("Zoe",)}
        assert result.possible == {("Mary",), ("John",), ("Zoe",)}

    def test_open_query_rejected_by_answer(self):
        engine = overpaid_engine()
        with pytest.raises(QueryError):
            engine.answer("Emp(n, d, s)")


class TestFdEquivalence:
    def test_matches_graph_engine_on_fds(self):
        """FDs as denial constraints give the same verdicts as the
        conflict-graph engine (hypergraph generalizes graph)."""
        scenario = mgr_scenario()
        denials = [
            fd_as_denial(fd, scenario.instance.schema)
            for fd in scenario.dependencies
        ]
        hyper = DenialCqaEngine(scenario.instance, denials)
        graph_engine = CqaEngine(scenario.instance, scenario.dependencies)
        assert set(hyper.repairs()) == set(graph_engine.repairs())
        for query in (
            "Mgr(Mary, 'R&D', 40, 3)",
            "Mgr(Mary, 'R&D', 40, 3) OR Mgr(Mary, 'IT', 20, 1)",
            "EXISTS d, s, w . Mgr(Mary, d, s, w)",
        ):
            assert hyper.answer(query).verdict == graph_engine.answer(query).verdict

    def test_counterexample_surfaces(self):
        engine = overpaid_engine()
        answer = engine.answer("Emp(Mary, 'R&D', 40)")
        assert answer.counterexample is not None
        assert answer.satisfying == 1
