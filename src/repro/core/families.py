"""The four preferred-repair families: L-Rep, S-Rep, G-Rep, C-Rep.

Each family maps ``(instance, FDs, priority)`` — equivalently a
:class:`Priority` over a conflict graph — to a subset of the repairs:

===========  ===============================================  ==========
family       selection rule                                    checking
===========  ===============================================  ==========
``REP``      all repairs (no preference; classic CQA [1])      PTIME
``L``        locally optimal repairs                           PTIME
``S``        semi-globally optimal repairs                     PTIME
``G``        globally optimal (≪-maximal) repairs              co-NP-c
``C``        common repairs = outcomes of Algorithm 1          PTIME
===========  ===============================================  ==========

Containments (Propositions 3, 4, 6): C ⊆ G ⊆ S ⊆ L ⊆ Rep.
"""

from __future__ import annotations

import enum
from typing import AbstractSet, Callable, Dict, FrozenSet, List, Optional, Sequence

from repro.constraints.conflict_graph import ConflictGraph, build_conflict_graph
from repro.constraints.fd import FunctionalDependency
from repro.core.cleaning import all_cleaning_results, is_common_repair
from repro.core.optimality import (
    globally_optimal_repairs,
    is_globally_optimal,
    is_locally_optimal,
    is_semi_globally_optimal,
)
from repro.priorities.priority import Priority, empty_priority
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.repairs.enumerate import enumerate_repairs, repair_sort_key

Repair = FrozenSet[Row]


class Family(enum.Enum):
    """Identifier of a preferred-repair family."""

    REP = "Rep"
    LOCAL = "L-Rep"
    SEMI_GLOBAL = "S-Rep"
    GLOBAL = "G-Rep"
    COMMON = "C-Rep"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def preferred_repairs(
    family: Family,
    priority: Priority,
    repairs: Optional[Sequence[Repair]] = None,
) -> List[Repair]:
    """``X-Rep≻`` for the given family, in deterministic order.

    ``repairs`` may carry a precomputed list of all repairs to share
    enumeration work across families (ignored by ``COMMON``, which
    never needs the full repair set).
    """
    if family is Family.COMMON:
        return all_cleaning_results(priority)
    pool: List[Repair] = (
        list(repairs)
        if repairs is not None
        else list(enumerate_repairs(priority.graph))
    )
    if family is Family.REP:
        selected = pool
    elif family is Family.LOCAL:
        selected = [r for r in pool if is_locally_optimal(r, priority)]
    elif family is Family.SEMI_GLOBAL:
        selected = [r for r in pool if is_semi_globally_optimal(r, priority)]
    elif family is Family.GLOBAL:
        selected = globally_optimal_repairs(priority, pool)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown family {family!r}")
    return sorted(selected, key=repair_sort_key)


def is_preferred_repair(
    family: Family,
    candidate: AbstractSet[Row],
    priority: Priority,
    repairs: Optional[Sequence[Repair]] = None,
) -> bool:
    """X-repair checking (problem ``B`` of Section 4.1).

    L-, S- and C-checking run in polynomial time (Theorem 4,
    Corollaries 1 and 2); G-checking performs the co-NP witness search.
    """
    graph = priority.graph
    if family is Family.COMMON:
        return graph.is_maximal_independent(candidate) and is_common_repair(
            candidate, priority
        )
    if not graph.is_maximal_independent(candidate):
        return False
    if family is Family.REP:
        return True
    if family is Family.LOCAL:
        return is_locally_optimal(candidate, priority)
    if family is Family.SEMI_GLOBAL:
        return is_semi_globally_optimal(candidate, priority)
    if family is Family.GLOBAL:
        return is_globally_optimal(candidate, priority, repairs)
    raise ValueError(f"unknown family {family!r}")  # pragma: no cover


def family_chain(
    priority: Priority, repairs: Optional[Sequence[Repair]] = None
) -> Dict[Family, List[Repair]]:
    """All five families at once, sharing one repair enumeration."""
    pool = (
        list(repairs)
        if repairs is not None
        else list(enumerate_repairs(priority.graph))
    )
    return {
        family: preferred_repairs(family, priority, pool) for family in Family
    }


def preferred_repairs_of_instance(
    family: Family,
    instance: RelationInstance,
    dependencies: Sequence[FunctionalDependency],
    priority_edges: Sequence = (),
) -> List[Repair]:
    """Convenience entry point from raw instance + FDs + priority pairs."""
    graph = build_conflict_graph(instance, dependencies)
    priority = Priority(graph, priority_edges)
    return preferred_repairs(family, priority)
