#!/usr/bin/env python3
"""Data integration at scale: many sources, partial reliability knowledge.

Generates a synthetic multi-source employee directory (the workload the
paper's introduction motivates), integrates it into one inconsistent
relation, and compares conflict-resolution strategies:

* classic CQA (no preferences),
* preferred CQA under each family (L/S/G/C) with a reliability order,
* the rank-with-fusion baseline [17],
* stratified preferred subtheories [4].

Run:  python examples/data_integration.py [seed]
"""

import random
import sys

from repro import CqaEngine, Family
from repro.baselines.ranking import resolve_with_fusion
from repro.baselines.stratified import preferred_subtheories
from repro.constraints.conflict_graph import build_conflict_graph
from repro.datagen.generators import (
    INTEGRATION_FDS,
    integration_instance,
)
from repro.priorities.builders import priority_from_source_reliability


def main(seed: int = 7) -> None:
    rng = random.Random(seed)
    instance, source_of = integration_instance(
        people=12, sources=4, disagreement=0.6, rng=rng
    )
    graph = build_conflict_graph(instance, INTEGRATION_FDS)
    print(
        f"Integrated {len(instance)} tuples from 4 sources: "
        f"{graph.edge_count} conflicts across "
        f"{sum(1 for c in graph.connected_components() if len(c) > 1)} clusters"
    )

    # The analyst knows s0 is the master system and s3 is a stale
    # export, but cannot rank s1 against s2 (partial preference, exactly
    # the paper's Example 3 at scale).
    reliability = [("s0", "s1"), ("s0", "s2"), ("s1", "s3"), ("s2", "s3")]
    priority = priority_from_source_reliability(graph, source_of, reliability)
    print(
        f"Reliability order orients {len(priority.edges)} of "
        f"{graph.edge_count} conflicts (total: {priority.is_total})"
    )

    # How much does each family narrow the repair space?
    engine = CqaEngine(instance, INTEGRATION_FDS, priority)
    print("\nRepair-space narrowing:")
    for family in Family:
        print(f"  {str(family):7s} {len(engine.repairs(family)):6d} repairs")

    # Certain answers improve monotonically with narrowing.
    query = "SELECT e.Name, e.Dept FROM Emp e"
    print(f"\nCertain answers to {query!r}:")
    for family in (Family.REP, Family.LOCAL, Family.GLOBAL, Family.COMMON):
        result = engine.sql_certain_answers(query, family)
        print(
            f"  {str(family):7s} certain={len(result.certain):3d} "
            f"possible={len(result.possible):3d} "
            f"disputed={len(result.disputed):3d}"
        )

    # Baseline [17]: rank sources, fuse ties — loses information.
    source_rank = {"s0": 3.0, "s1": 2.0, "s2": 2.0, "s3": 1.0}
    fusion = resolve_with_fusion(
        graph, lambda row: source_rank[source_of[row]]
    )
    print(
        f"\nRank/fusion baseline: kept {len(fusion.kept)} real tuples, "
        f"invented {len(fusion.invented)} fused tuples"
    )

    # Baseline [4]: strata (s0 | s1,s2 | s3).
    stratum_of = {"s0": 0, "s1": 1, "s2": 1, "s3": 2}
    subtheories = preferred_subtheories(
        graph, lambda row: stratum_of[source_of[row]]
    )
    print(f"Stratified subtheories [4]: {len(subtheories)} preferred databases")

    # Spot-check: a person whose department is certain under G-Rep.
    result = engine.sql_certain_answers(query, Family.GLOBAL)
    for name, dept in sorted(result.certain)[:5]:
        print(f"  certain under G-Rep: {name} works in {dept}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
