"""Functional dependencies.

A functional dependency ``X → Y`` over relation ``R`` states that any
two tuples agreeing on all attributes of ``X`` must agree on all
attributes of ``Y`` (paper, equation (1)).  Two tuples *conflict* w.r.t.
``X → Y`` when they agree on ``X`` but differ on some attribute of
``Y``.

Dependencies can be built programmatically or parsed from text::

    FunctionalDependency.parse("Dept -> Name, Salary, Reports", relation="Mgr")
"""

from __future__ import annotations

import re
from typing import AbstractSet, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConstraintError, ConstraintSyntaxError
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema


class FunctionalDependency:
    """An FD ``lhs → rhs`` over an optionally named relation.

    When ``relation`` is ``None`` the dependency applies to whatever
    single relation it is checked against (the paper's one-relation
    setting); in multi-relation databases every FD must name its
    relation.
    """

    __slots__ = ("lhs", "rhs", "relation")

    def __init__(
        self,
        lhs: Iterable[str],
        rhs: Iterable[str],
        relation: Optional[str] = None,
    ) -> None:
        self.lhs: FrozenSet[str] = frozenset(lhs)
        self.rhs: FrozenSet[str] = frozenset(rhs)
        self.relation = relation
        if not self.rhs:
            raise ConstraintError("functional dependency needs a right-hand side")
        # An empty LHS is legal: it asserts all tuples agree on RHS.

    @classmethod
    def parse(cls, text: str, relation: Optional[str] = None) -> "FunctionalDependency":
        """Parse ``"A, B -> C D"`` (either arrow side may use , or space).

        An optional relation prefix is accepted: ``"Mgr: Dept -> Name"``.
        """
        body = text.strip()
        if ":" in body:
            prefix, _, body = body.partition(":")
            prefix = prefix.strip()
            if relation is not None and prefix != relation:
                raise ConstraintSyntaxError(
                    f"dependency names relation {prefix!r} but {relation!r} was given"
                )
            relation = prefix
        if "->" not in body:
            raise ConstraintSyntaxError(f"missing '->' in dependency {text!r}")
        lhs_text, _, rhs_text = body.partition("->")
        lhs = _parse_attribute_list(lhs_text)
        rhs = _parse_attribute_list(rhs_text)
        if not rhs:
            raise ConstraintSyntaxError(f"empty right-hand side in {text!r}")
        return cls(lhs, rhs, relation)

    def validate_against(self, schema: RelationSchema) -> None:
        """Check every referenced attribute exists in ``schema``."""
        if self.relation is not None and self.relation != schema.name:
            raise ConstraintError(
                f"dependency over {self.relation!r} checked against "
                f"relation {schema.name!r}"
            )
        for attribute in self.lhs | self.rhs:
            schema.index_of(attribute)

    def applies_to(self, relation_name: str) -> bool:
        """Whether this FD constrains the given relation."""
        return self.relation is None or self.relation == relation_name

    def is_key_for(self, schema: RelationSchema) -> bool:
        """Whether this FD is a key dependency: lhs → all other attributes."""
        return self.lhs | self.rhs >= set(schema.attribute_names)

    def conflicting(self, first: Row, second: Row) -> bool:
        """Whether two rows conflict w.r.t. this dependency.

        Rows of relations this FD does not apply to never conflict.
        """
        if first.relation != second.relation:
            return False
        if not self.applies_to(first.relation):
            return False
        lhs, rhs = sorted(self.lhs), sorted(self.rhs)
        if not first.agrees_with(second, lhs):
            return False
        return not first.agrees_with(second, rhs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FunctionalDependency):
            return NotImplemented
        return (
            self.lhs == other.lhs
            and self.rhs == other.rhs
            and self.relation == other.relation
        )

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs, self.relation))

    def __repr__(self) -> str:
        lhs = " ".join(sorted(self.lhs)) or "∅"
        rhs = " ".join(sorted(self.rhs))
        prefix = f"{self.relation}: " if self.relation else ""
        return f"{prefix}{lhs} -> {rhs}"


def _parse_attribute_list(text: str) -> Tuple[str, ...]:
    parts = [part for part in re.split(r"[,\s]+", text.strip()) if part]
    for part in parts:
        if not part.replace("_", "").isalnum():
            raise ConstraintSyntaxError(f"invalid attribute name {part!r}")
    return tuple(parts)


def parse_fd_set(
    specs: Iterable[str], relation: Optional[str] = None
) -> List[FunctionalDependency]:
    """Parse several dependency strings (see :meth:`FunctionalDependency.parse`)."""
    return [FunctionalDependency.parse(spec, relation) for spec in specs]


def key_dependency(
    schema: RelationSchema, key: Sequence[str]
) -> FunctionalDependency:
    """The key dependency ``key → (all other attributes)`` of ``schema``."""
    key_set = frozenset(key)
    rest = frozenset(schema.attribute_names) - key_set
    if not rest:
        raise ConstraintError(
            f"key {sorted(key_set)} covers all attributes of {schema.name!r}; "
            "the dependency would be trivial"
        )
    return FunctionalDependency(key_set, rest, schema.name)


def validate_fd_set(
    dependencies: Iterable[FunctionalDependency], schema: RelationSchema
) -> None:
    """Validate each dependency against the (single-relation) schema."""
    for dependency in dependencies:
        dependency.validate_against(schema)
