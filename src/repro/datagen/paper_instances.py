"""The paper's worked examples as executable fixtures.

Single source of truth for every instance, dependency set, priority and
query appearing in the paper (Examples 1–10, Figures 1–4).  Tests,
benchmarks and the runnable examples all build on these constructors so
the reproduced artifacts stay in lockstep with the text.

Erratum (Example 9).  The tuple values printed in the paper
(``ta=(1,1,0,0), tb=(1,2,1,1), tc=(2,1,1,2), td=(2,2,2,1),
te=(0,0,2,2)``) make the conflict graph the 5-vertex *path*
``ta–tb–tc–td–te``, which has **four** maximal independent sets, not the
two the paper lists, and under the printed priority chain
``ta≻tb≻tc≻td≻te`` the semi-globally optimal repairs collapse to
``{ta,tc,te}`` alone — contradicting the claim that both listed repairs
are semi-globally optimal.  One can prove no total priority on the path
makes both alternating repairs semi-globally optimal.  The claims *are*
simultaneously realizable when every "odd" tuple conflicts with every
"even" tuple (complete bipartite ``K_{3,2}``) and only the chain is
oriented (matching Section 3.3's remark that "the user provides
priority only for some of the violated functional dependencies" — the
priority is partial, not total).  :func:`example9_printed` exposes the
literal values; :func:`example9_reconstructed` exposes the
claims-conformant reconstruction.  EXPERIMENTS.md records both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.constraints.conflict_graph import ConflictGraph, build_conflict_graph
from repro.constraints.fd import FunctionalDependency
from repro.priorities.priority import Priority
from repro.query.ast import Formula
from repro.query.parser import parse_query
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema


@dataclass(frozen=True)
class Scenario:
    """A paper example bundled for direct use in tests and benches."""

    name: str
    instance: RelationInstance
    dependencies: Tuple[FunctionalDependency, ...]
    graph: ConflictGraph
    priority: Priority
    #: Paper-facing tuple names (``ta``, ``tb``, ...) to rows.
    rows: Dict[str, Row]

    def row_set(self, *names: str) -> frozenset:
        """The frozenset of rows with the given paper names."""
        return frozenset(self.rows[name] for name in names)


# ---------------------------------------------------------------------------
# Examples 1-3: the Mgr data-integration scenario
# ---------------------------------------------------------------------------

#: Query Q1 — "does John earn more than Mary?" (Example 1).  With
#: Mgr(Name, Dept, Salary, Reports), x=Dept, y=Salary, z=Reports.
Q1_TEXT = (
    "EXISTS x1, y1, z1, x2, y2, z2 . "
    "Mgr(Mary, x1, y1, z1) AND Mgr(John, x2, y2, z2) AND y1 < y2"
)

#: Query Q2 — "does Mary earn more and write fewer reports than John?"
#: (Example 3).
Q2_TEXT = (
    "EXISTS x1, y1, z1, x2, y2, z2 . "
    "Mgr(Mary, x1, y1, z1) AND Mgr(John, x2, y2, z2) AND y1 > y2 AND z1 < z2"
)


def mgr_schema() -> RelationSchema:
    """The schema ``Mgr(Name, Dept, Salary, Reports)`` of Example 1."""
    return RelationSchema(
        "Mgr", ["Name", "Dept", "Salary:number", "Reports:number"]
    )


def mgr_dependencies() -> Tuple[FunctionalDependency, ...]:
    """fd1: Dept → Name Salary Reports; fd2: Name → Dept Salary Reports."""
    return (
        FunctionalDependency.parse("Dept -> Name, Salary, Reports", "Mgr"),
        FunctionalDependency.parse("Name -> Dept, Salary, Reports", "Mgr"),
    )


def mgr_sources() -> Tuple[RelationInstance, RelationInstance, RelationInstance]:
    """The three consistent sources s1, s2, s3 (salaries in thousands)."""
    schema = mgr_schema()
    s1 = RelationInstance.from_values(schema, [("Mary", "R&D", 40, 3)])
    s2 = RelationInstance.from_values(schema, [("John", "R&D", 10, 2)])
    s3 = RelationInstance.from_values(
        schema, [("Mary", "IT", 20, 1), ("John", "PR", 30, 4)]
    )
    return s1, s2, s3


def mgr_source_of() -> Dict[Row, str]:
    """Tuple → source-name map for the integrated Mgr instance."""
    s1, s2, s3 = mgr_sources()
    labels: Dict[Row, str] = {}
    for name, source in (("s1", s1), ("s2", s2), ("s3", s3)):
        for row in source:
            labels[row] = name
    return labels


def mgr_scenario(with_priority: bool = True) -> Scenario:
    """Examples 1–3: ``r = s1 ∪ s2 ∪ s3`` with the Example-3 priority.

    The priority encodes "s3 is less reliable than s1 and than s2; the
    relative reliability of s1 and s2 is unknown", orienting the two
    conflicts that involve s3 tuples and leaving the s1-vs-s2 conflict
    open.  Pass ``with_priority=False`` for the bare Example-1 setting.
    """
    from repro.priorities.builders import priority_from_source_reliability

    s1, s2, s3 = mgr_sources()
    instance = s1.union(s2).union(s3)
    dependencies = mgr_dependencies()
    graph = build_conflict_graph(instance, dependencies)
    if with_priority:
        priority = priority_from_source_reliability(
            graph, mgr_source_of(), [("s1", "s3"), ("s2", "s3")]
        )
    else:
        priority = Priority(graph, ())
    schema = instance.schema
    rows = {
        "mary_rd": Row(schema, ("Mary", "R&D", 40, 3)),
        "john_rd": Row(schema, ("John", "R&D", 10, 2)),
        "mary_it": Row(schema, ("Mary", "IT", 20, 1)),
        "john_pr": Row(schema, ("John", "PR", 30, 4)),
    }
    return Scenario("mgr", instance, dependencies, graph, priority, rows)


def q1() -> Formula:
    """Parsed query Q1."""
    return parse_query(Q1_TEXT)


def q2() -> Formula:
    """Parsed query Q2."""
    return parse_query(Q2_TEXT)


# ---------------------------------------------------------------------------
# Example 4 / Figure 1: the 2^n-repair grid
# ---------------------------------------------------------------------------


def example4_schema() -> RelationSchema:
    return RelationSchema("R", ["A:number", "B:number"])


def example4_instance(n: int) -> RelationInstance:
    """``r_n = {(0,0),(0,1),...,(n-1,0),(n-1,1)}`` over R(A,B)."""
    schema = example4_schema()
    return RelationInstance.from_values(
        schema, [(i, b) for i in range(n) for b in (0, 1)]
    )


def example4_scenario(n: int = 4) -> Scenario:
    """Example 4 with the FD ``A → B``; Figure 1 is the case n = 4."""
    instance = example4_instance(n)
    dependencies = (FunctionalDependency.parse("A -> B", "R"),)
    graph = build_conflict_graph(instance, dependencies)
    rows = {
        f"t{i}{b}": Row(instance.schema, (i, b)) for i in range(n) for b in (0, 1)
    }
    return Scenario(
        f"example4_n{n}", instance, dependencies, graph, Priority(graph, ()), rows
    )


# ---------------------------------------------------------------------------
# Example 7 / Figure 2: priorities on one key dependency
# ---------------------------------------------------------------------------


def example7_scenario() -> Scenario:
    """R(A,B), key A → B, r = {ta=(1,1), tb=(1,2), tc=(1,3)},
    priority ta ≻ tc and ta ≻ tb.  Only {ta} is locally optimal."""
    schema = RelationSchema("R", ["A:number", "B:number"])
    instance = RelationInstance.from_values(schema, [(1, 1), (1, 2), (1, 3)])
    dependencies = (FunctionalDependency.parse("A -> B", "R"),)
    graph = build_conflict_graph(instance, dependencies)
    ta, tb, tc = (Row(schema, (1, b)) for b in (1, 2, 3))
    priority = Priority(graph, [(ta, tc), (ta, tb)])
    return Scenario(
        "example7",
        instance,
        dependencies,
        graph,
        priority,
        {"ta": ta, "tb": tb, "tc": tc},
    )


# ---------------------------------------------------------------------------
# Example 8 / Figure 3: duplicates defeat local optimality
# ---------------------------------------------------------------------------


def example8_scenario() -> Scenario:
    """R(A,B,C), FD A → B, r = {ta=(1,1,1), tb=(1,1,2), tc=(1,2,3)},
    total priority tc ≻ ta, tc ≻ tb.  Repairs {ta,tb} and {tc} are both
    locally optimal; only {tc} is semi-globally optimal."""
    schema = RelationSchema("R", ["A:number", "B:number", "C:number"])
    instance = RelationInstance.from_values(
        schema, [(1, 1, 1), (1, 1, 2), (1, 2, 3)]
    )
    dependencies = (FunctionalDependency.parse("A -> B", "R"),)
    graph = build_conflict_graph(instance, dependencies)
    ta = Row(schema, (1, 1, 1))
    tb = Row(schema, (1, 1, 2))
    tc = Row(schema, (1, 2, 3))
    priority = Priority(graph, [(tc, ta), (tc, tb)])
    return Scenario(
        "example8",
        instance,
        dependencies,
        graph,
        priority,
        {"ta": ta, "tb": tb, "tc": tc},
    )


# ---------------------------------------------------------------------------
# Example 9 / Figure 4: two variants (printed values vs reconstruction)
# ---------------------------------------------------------------------------


def example9_printed() -> Scenario:
    """Example 9 with the tuple values exactly as printed.

    The conflict graph is the path ``ta–tb–tc–td–te`` (A→B gives
    ta–tb and tc–td; C→D gives tb–tc and td–te).  See the module
    docstring: with these values the paper's stated repair set and
    S-Rep are not reproduced; tests assert the *actual* semantics.
    """
    schema = RelationSchema(
        "R", ["A:number", "B:number", "C:number", "D:number"]
    )
    values = {
        "ta": (1, 1, 0, 0),
        "tb": (1, 2, 1, 1),
        "tc": (2, 1, 1, 2),
        "td": (2, 2, 2, 1),
        "te": (0, 0, 2, 2),
    }
    instance = RelationInstance.from_values(schema, values.values())
    dependencies = (
        FunctionalDependency.parse("A -> B", "R"),
        FunctionalDependency.parse("C -> D", "R"),
    )
    graph = build_conflict_graph(instance, dependencies)
    rows = {name: Row(schema, vals) for name, vals in values.items()}
    priority = Priority(
        graph,
        [
            (rows["ta"], rows["tb"]),
            (rows["tb"], rows["tc"]),
            (rows["tc"], rows["td"]),
            (rows["td"], rows["te"]),
        ],
    )
    return Scenario("example9_printed", instance, dependencies, graph, priority, rows)


def example9_reconstructed() -> Scenario:
    """Example 9 with values realizing every claim of the paper.

    The conflict graph is complete bipartite between {ta,tc,te} and
    {tb,td} (so the repairs are exactly ``r1 = {ta,tc,te}`` and
    ``r2 = {tb,td}``), both FDs contribute conflicts, and only the
    chain ``ta≻tb≻tc≻td≻te`` is oriented (a *partial* priority, per
    Section 3.3).  Then S-Rep = {r1, r2} (non-categoricity), G-Rep =
    {r1} (Section 3.3's "r2 is not globally optimal and r1 is") and
    C-Rep = {r1}.
    """
    schema = RelationSchema(
        "R", ["A:number", "B:number", "C:number", "D:number"]
    )
    # A is constant so A→B links every B=1 tuple with every B=2 tuple
    # (complete bipartite); C→D additionally creates the tb–te conflict,
    # so both dependencies participate ("mutual conflicts").
    values = {
        "ta": (1, 1, 0, 0),
        "tb": (1, 2, 1, 1),
        "tc": (1, 1, 2, 0),
        "td": (1, 2, 2, 0),
        "te": (1, 1, 1, 2),
    }
    instance = RelationInstance.from_values(schema, values.values())
    dependencies = (
        FunctionalDependency.parse("A -> B", "R"),
        FunctionalDependency.parse("C -> D", "R"),
    )
    graph = build_conflict_graph(instance, dependencies)
    rows = {name: Row(schema, vals) for name, vals in values.items()}
    priority = Priority(
        graph,
        [
            (rows["ta"], rows["tb"]),
            (rows["tb"], rows["tc"]),
            (rows["tc"], rows["td"]),
            (rows["td"], rows["te"]),
        ],
    )
    return Scenario(
        "example9_reconstructed", instance, dependencies, graph, priority, rows
    )


def all_scenarios() -> List[Scenario]:
    """Every paper scenario (used by sweeping property tests)."""
    return [
        mgr_scenario(),
        mgr_scenario(with_priority=False),
        example4_scenario(3),
        example7_scenario(),
        example8_scenario(),
        example9_printed(),
        example9_reconstructed(),
    ]
