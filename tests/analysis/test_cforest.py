"""C_forest recognition: multi-atom dirty joins that follow key paths.

The fixtures here are the ≥3 multi-atom shapes the recognizer must
accept (chain of two, chain of three, branching tree) plus the shapes it
must reject (non-key join, join cycle, dirty self-join).  Recognition is
explanation-only: the blocking RA201 stays, RA011 rides along as info,
and the engine still falls back — which the differential checks pin.
"""

import sqlite3

import pytest

from repro.analysis import analyze, recognize_c_forest
from repro.analysis.shapes import classify
from repro.backend import SqlCqaEngine
from repro.constraints.fd import FunctionalDependency
from repro.query.ast import And, Atom, Exists, Var
from repro.query.validate import check_against_schema
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.sqlite_io import save_database

R_SCHEMA = RelationSchema("R", ["K", "A", "B"])
T_SCHEMA = RelationSchema("T", ["A", "C", "D"])
U_SCHEMA = RelationSchema("U", ["C", "E"])
W_SCHEMA = RelationSchema("W", ["B", "F"])
SCHEMA = DatabaseSchema([R_SCHEMA, T_SCHEMA, U_SCHEMA, W_SCHEMA])

#: Every relation dirty, keyed on its first attribute.
FDS = [
    FunctionalDependency.parse("K -> A", "R"),
    FunctionalDependency.parse("A -> C", "T"),
    FunctionalDependency.parse("C -> E", "U"),
    FunctionalDependency.parse("B -> F", "W"),
]

k, a, b, c, d, e, f = (
    Var("k"), Var("a"), Var("b"), Var("c"), Var("d"), Var("e"), Var("f"),
)


def _report(formula, dependencies=FDS):
    checked = check_against_schema(formula, SCHEMA)
    return analyze(SCHEMA, dependencies, checked)


def _codes(report):
    return [diag.full_code for diag in report.diagnostics]


CHAIN_OF_TWO = Exists(
    ["k", "a", "b", "c", "d"],
    And([Atom("R", [k, a, b]), Atom("T", [a, c, d])]),
)

CHAIN_OF_THREE = Exists(
    ["k", "a", "b", "c", "d", "e"],
    And([Atom("R", [k, a, b]), Atom("T", [a, c, d]), Atom("U", [c, e])]),
)

BRANCHING_TREE = Exists(
    ["k", "a", "b", "c", "d", "f"],
    And([Atom("R", [k, a, b]), Atom("T", [a, c, d]), Atom("W", [b, f])]),
)

RECOGNIZED = [
    ("chain-of-two", CHAIN_OF_TWO, "T joins R through its key ['A']"),
    ("chain-of-three", CHAIN_OF_THREE, "U joins T through its key ['C']"),
    ("branching-tree", BRANCHING_TREE, "W joins R through its key ['B']"),
]


class TestRecognizedShapes:
    @pytest.mark.parametrize(
        "label,query,phrase",
        RECOGNIZED,
        ids=[case[0] for case in RECOGNIZED],
    )
    def test_ra011_with_explanation(self, label, query, phrase):
        report = _report(query)
        assert "RA011-rewritable-c-forest" in _codes(report), label
        info = next(d for d in report.diagnostics if d.code == "RA011")
        assert phrase in info.message, (label, info.message)
        # Recognition explains; it does not unblock.
        assert report.blocked("sqlite"), label
        assert report.blocking("sqlite")[0].code == "RA201", label

    @pytest.mark.parametrize(
        "label,query,phrase",
        RECOGNIZED,
        ids=[case[0] for case in RECOGNIZED],
    )
    def test_engine_still_falls_back_as_predicted(self, label, query, phrase):
        database = Database(
            [
                RelationInstance.from_values(
                    R_SCHEMA, [("k1", "a1", "b1"), ("k1", "a2", "b1")]
                ),
                RelationInstance.from_values(
                    T_SCHEMA, [("a1", "c1", "d1"), ("a1", "c2", "d1")]
                ),
                RelationInstance.from_values(U_SCHEMA, [("c1", "e1")]),
                RelationInstance.from_values(W_SCHEMA, [("b1", "f1")]),
            ]
        )
        connection = sqlite3.connect(":memory:")
        save_database(database, connection, FDS)
        report = _report(query)
        with SqlCqaEngine(connection, FDS) as engine:
            engine.answer(query)
            assert report.expected_last_route("sqlite") == engine.last_route, label


class TestRejectedShapes:
    def test_non_key_join_is_not_recognized(self):
        # T joins R through D (a non-key position of T).
        query = Exists(
            ["k", "a", "b", "x", "c"],
            And([Atom("R", [k, a, b]), Atom("T", [Var("x"), c, a])]),
        )
        report = _report(query)
        assert report.blocking("sqlite")[0].code == "RA201"
        assert "RA011-rewritable-c-forest" not in _codes(report)

    def test_shared_variable_outside_key_is_not_recognized(self):
        # The key of T is covered, but a second shared variable lands in
        # a non-key position — repair choices would correlate.
        query = Exists(
            ["k", "a", "b", "d"],
            And([Atom("R", [k, a, b]), Atom("T", [a, b, d])]),
        )
        report = _report(query)
        assert report.blocking("sqlite")[0].code == "RA201"
        assert "RA011-rewritable-c-forest" not in _codes(report)

    def test_dirty_self_join_is_not_recognized(self):
        query = Exists(
            ["k", "a", "b", "a2", "b2"],
            And([Atom("R", [k, a, b]), Atom("R", [k, Var("a2"), Var("b2")])]),
        )
        report = _report(query)
        assert report.blocking("sqlite")[0].code == "RA201"
        assert "RA011-rewritable-c-forest" not in _codes(report)

    def test_join_cycle_is_not_recognized(self):
        # R-T share a; T-U share c; U-R share k: a cycle, not a forest.
        query = Exists(
            ["k", "a", "b", "c", "d"],
            And(
                [
                    Atom("R", [k, a, b]),
                    Atom("T", [a, c, d]),
                    Atom("U", [c, k]),
                ]
            ),
        )
        report = _report(query)
        assert report.blocking("sqlite")[0].code == "RA201"
        assert "RA011-rewritable-c-forest" not in _codes(report)

    def test_clean_query_has_no_recognition(self):
        query = Exists(["z"], Atom("R", [k, a, Var("z")]))
        classification = classify(
            check_against_schema(query, SCHEMA), SCHEMA, FDS
        )
        assert recognize_c_forest(classification, SCHEMA) is None


class TestConstantsInKeys:
    def test_constant_key_position_counts_as_covered(self):
        # T's key position holds a constant: still a key join.
        query = Exists(
            ["k", "a", "b", "c", "d"],
            And([Atom("R", [k, a, b]), Atom("T", ["a1", c, d])]),
        )
        report = _report(query)
        # No shared variables at all: the atoms are isolated trees.
        assert "RA011-rewritable-c-forest" in _codes(report)
        info = next(d for d in report.diagnostics if d.code == "RA011")
        assert "isolated dirty atoms" in info.message
