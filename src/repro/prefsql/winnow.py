"""The winnow operator ω≻ and Algorithm 1, compiled to SQLite SQL.

Everything here operates on one *profiled* relation — its functional
dependencies share a left-hand side ``K`` (the group) with combined
right-hand side ``Y`` (the classifier) — which gives each ``K``-group a
complete multipartite conflict graph over its ``(K, Y)``-classes and
makes each repair keep exactly one class per group.  On that structure
the per-class membership tests of all four preferred families reduce to
first-order conditions over the ``_repro_edges`` side table, so the
whole winnow-driven selection runs server-side:

* ``ω≻`` itself is an anti-join: the rows with no incoming oriented
  edge from a surviving dominator (:func:`winnow_pass`);
* Algorithm 1 is iterated to a fixpoint with staged
  ``CREATE TEMP TABLE`` passes (:func:`iterate_winnow`): each stage
  winnows the remaining rows, commits the winnow rows with no conflict
  inside the winnow set (their class is forced — it appears in *every*
  common repair), and removes the committed rows' conflict
  neighbourhood, exactly the ``r ← r ∖ ({x} ∪ n(x))`` step.  The union
  of committed stages is the *clean fragment*; an empty remainder means
  the priority resolves the relation to a single common repair.
* per-family *survivor tables* (:func:`build_survivor_table`) list the
  rows whose class is kept by the family:

  ======  ====================================================
  family  class ``C`` of group ``G`` survives iff
  ======  ====================================================
  ``C``   some row of ``C`` is ≻-undominated within ``G``
  ``G``   no other class of ``G`` dominates every row of ``C``
  ``S``   no single row of ``G`` dominates every row of ``C``
  ``L``   not (``|C| = 1`` and its row has a dominator)
  ======  ====================================================

  These are the per-stage membership characterizations of Theorem 4,
  Corollaries 1–2 and Proposition 7 specialized to the multipartite
  group structure; the differential suite pins each of them against
  the in-memory family selectors on random instances.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.backend.rewrite import DirtyProfile, conjoin as _conjoin
from repro.core.families import Family
from repro.exceptions import QueryError
from repro.prefsql.edges import SIDE_CONFLICTS, SIDE_EDGES, text_literal
from repro.relational.sqlite_io import quote_identifier


def _eq(left: str, right: str, attributes: Sequence[str]) -> List[str]:
    """Column-wise equality conditions between two alias scopes."""
    return [
        f"{left}.{quote_identifier(attr)} = {right}.{quote_identifier(attr)}"
        for attr in attributes
    ]


def _same_group(left: str, right: str, profile: DirtyProfile) -> str:
    return _conjoin(_eq(left, right, profile.group))


def _same_class(left: str, right: str, profile: DirtyProfile) -> str:
    return _conjoin(_eq(left, right, profile.group + profile.classifier))


def _drop(connection: sqlite3.Connection, table: str) -> None:
    connection.execute(f"DROP TABLE IF EXISTS {quote_identifier(table)}")


def _count(connection: sqlite3.Connection, table: str) -> int:
    cursor = connection.execute(
        f"SELECT COUNT(*) FROM {quote_identifier(table)}"
    )
    return cursor.fetchone()[0]


def _undominated(profile: DirtyProfile, alias: str) -> str:
    """``alias`` has no incoming oriented edge (dominators are always
    instance rows of the same group, by edge validation)."""
    tag = text_literal(profile.relation)
    return (
        f"NOT EXISTS (SELECT 1 FROM {SIDE_EDGES} e "
        f"WHERE e.relation = {tag} AND e.loser = {alias}.rowid)"
    )


# ---------------------------------------------------------------------------
# Single winnow pass and the Algorithm 1 fixpoint
# ---------------------------------------------------------------------------


def winnow_pass(
    connection: sqlite3.Connection,
    profile: DirtyProfile,
    source: Optional[str] = None,
    target: Optional[str] = None,
) -> str:
    """ω≻ as one SQL anti-join, materialized into a temp table.

    ``source`` names a temp table of ``row_id`` values (the remaining
    set); ``None`` winnows the whole relation.  Returns the name of the
    created table (``target`` or a derived default) holding the
    undominated rows' ``row_id``.
    """
    tag = text_literal(profile.relation)
    table = target or f"_repro_winnow_{profile.relation}"
    _drop(connection, table)
    if source is None:
        connection.execute(
            f"CREATE TEMP TABLE {quote_identifier(table)} AS "
            f"SELECT r.rowid AS row_id FROM "
            f"{quote_identifier(profile.relation)} r "
            f"WHERE {_undominated(profile, 'r')}"
        )
    else:
        connection.execute(
            f"CREATE TEMP TABLE {quote_identifier(table)} AS "
            f"SELECT m.row_id FROM {quote_identifier(source)} m "
            f"WHERE NOT EXISTS (SELECT 1 FROM {SIDE_EDGES} e "
            f"WHERE e.relation = {tag} AND e.loser = m.row_id AND "
            f"e.winner IN (SELECT row_id FROM {quote_identifier(source)}))"
        )
    return table


def _conflict_partner_in(
    profile: DirtyProfile, alias: str, pool: str
) -> str:
    """``alias.row_id`` has a conflict partner inside the ``pool`` table."""
    tag = text_literal(profile.relation)
    pool_sql = f"SELECT row_id FROM {quote_identifier(pool)}"
    return (
        f"EXISTS (SELECT 1 FROM {SIDE_CONFLICTS} k "
        f"WHERE k.relation = {tag} AND ("
        f"(k.a = {alias}.row_id AND k.b IN ({pool_sql})) OR "
        f"(k.b = {alias}.row_id AND k.a IN ({pool_sql}))))"
    )


@dataclass(frozen=True)
class WinnowFixpoint:
    """Outcome of iterating Algorithm 1 server-side.

    ``committed_table`` holds the clean fragment — rows belonging to
    *every* common repair; ``remaining`` counts the rows whose groups
    the priority leaves ambiguous (zero means ``C-Rep`` restricted to
    this relation is a single repair: exactly the committed rows).
    ``stage_tables`` lists the per-stage winnow tables, newest last.
    """

    relation: str
    stages: int
    committed_table: str
    committed: int
    remaining: int
    stage_tables: Sequence[str]


def iterate_winnow(
    connection: sqlite3.Connection,
    profile: DirtyProfile,
    max_stages: int = 64,
) -> WinnowFixpoint:
    """Iterate Algorithm 1 to a fixpoint with staged temp-table passes.

    Requires :func:`~repro.prefsql.edges.materialize_conflicts` and
    :func:`~repro.prefsql.edges.materialize_edges` to have run for the
    relation.  On the profiled group structure the fixpoint is reached
    within three stages; ``max_stages`` is a defensive bound only.
    """
    base = profile.relation
    committed_table = f"_repro_clean_{base}"
    _drop(connection, committed_table)
    connection.execute(
        f"CREATE TEMP TABLE {quote_identifier(committed_table)} "
        "(row_id INTEGER PRIMARY KEY)"
    )
    remaining_table = f"_repro_remaining_{base}_0"
    _drop(connection, remaining_table)
    connection.execute(
        f"CREATE TEMP TABLE {quote_identifier(remaining_table)} AS "
        f"SELECT rowid AS row_id FROM {quote_identifier(base)}"
    )
    stage_tables: List[str] = []
    stage = 0
    while stage < max_stages:
        winnow_table = winnow_pass(
            connection,
            profile,
            source=remaining_table,
            target=f"_repro_winnow_{base}_{stage}",
        )
        stage_tables.append(winnow_table)
        # Step 3's unambiguous choices: winnow rows with no conflict
        # inside the winnow set — their whole class is forced.
        commit_table = f"_repro_commit_{base}_{stage}"
        _drop(connection, commit_table)
        connection.execute(
            f"CREATE TEMP TABLE {quote_identifier(commit_table)} AS "
            f"SELECT w.row_id FROM {quote_identifier(winnow_table)} w "
            f"WHERE NOT {_conflict_partner_in(profile, 'w', winnow_table)}"
        )
        if _count(connection, commit_table) == 0:
            break
        connection.execute(
            f"INSERT OR IGNORE INTO {quote_identifier(committed_table)} "
            f"SELECT row_id FROM {quote_identifier(commit_table)}"
        )
        # r ← r ∖ ({x} ∪ n(x)) for every committed x.
        next_table = f"_repro_remaining_{base}_{stage + 1}"
        _drop(connection, next_table)
        connection.execute(
            f"CREATE TEMP TABLE {quote_identifier(next_table)} AS "
            f"SELECT m.row_id FROM {quote_identifier(remaining_table)} m "
            f"WHERE m.row_id NOT IN "
            f"(SELECT row_id FROM {quote_identifier(commit_table)}) "
            f"AND NOT {_conflict_partner_in(profile, 'm', commit_table)}"
        )
        remaining_table = next_table
        stage += 1
    return WinnowFixpoint(
        relation=base,
        stages=stage + 1,
        committed_table=committed_table,
        committed=_count(connection, committed_table),
        remaining=_count(connection, remaining_table),
        stage_tables=tuple(stage_tables),
    )


# ---------------------------------------------------------------------------
# Per-family survivor tables
# ---------------------------------------------------------------------------


def survivor_table_name(relation: str, family: Family) -> str:
    return f"_repro_surv_{relation}_{family.name.lower()}"


def _survivor_select(profile: DirtyProfile, family: Family) -> str:
    """The SELECT producing the ``row_id`` list of preferred-class rows."""
    relation = quote_identifier(profile.relation)
    tag = text_literal(profile.relation)
    if family is Family.COMMON:
        # Class survives iff it contains a ≻-undominated row: Algorithm 1
        # may pick that row first, and only then (Proposition 7).
        return (
            f"SELECT r.rowid AS row_id FROM {relation} r "
            f"WHERE EXISTS (SELECT 1 FROM {relation} w "
            f"WHERE {_same_class('w', 'r', profile)} "
            f"AND {_undominated(profile, 'w')})"
        )
    if family is Family.LOCAL:
        # A swap of a single tuple needs the chosen class to be that
        # single tuple (an outsider conflicts with the *whole* class).
        return (
            f"SELECT r.rowid AS row_id FROM {relation} r "
            f"WHERE (SELECT COUNT(*) FROM {relation} c "
            f"WHERE {_same_class('c', 'r', profile)}) > 1 "
            f"OR {_undominated(profile, 'r')}"
        )
    if family is Family.SEMI_GLOBAL:
        # Class fails iff one group row dominates every class member.
        return (
            f"SELECT r.rowid AS row_id FROM {relation} r "
            f"WHERE NOT EXISTS (SELECT 1 FROM {relation} w "
            f"WHERE {_same_group('w', 'r', profile)} "
            f"AND NOT EXISTS (SELECT 1 FROM {relation} m "
            f"WHERE {_same_class('m', 'r', profile)} "
            f"AND NOT EXISTS (SELECT 1 FROM {SIDE_EDGES} e "
            f"WHERE e.relation = {tag} AND e.winner = w.rowid "
            f"AND e.loser = m.rowid)))"
        )
    if family is Family.GLOBAL:
        # Class fails iff another class covers it: every member is
        # dominated by some member of the other class (lifting ≪,
        # Proposition 5, restricted to one group switch).
        different_class = (
            "NOT (" + _same_class("j", "r", profile) + ")"
        )
        return (
            f"SELECT r.rowid AS row_id FROM {relation} r "
            f"WHERE NOT EXISTS (SELECT 1 FROM {relation} j "
            f"WHERE {_same_group('j', 'r', profile)} AND {different_class} "
            f"AND NOT EXISTS (SELECT 1 FROM {relation} m "
            f"WHERE {_same_class('m', 'r', profile)} "
            f"AND NOT EXISTS (SELECT 1 FROM {SIDE_EDGES} e "
            f"JOIN {relation} w ON w.rowid = e.winner "
            f"WHERE e.relation = {tag} AND e.loser = m.rowid "
            f"AND {_same_class('w', 'j', profile)})))"
        )
    raise QueryError(f"family {family} needs no survivor table")


def build_survivor_table(
    connection: sqlite3.Connection,
    profile: DirtyProfile,
    family: Family,
) -> str:
    """Materialize the family's surviving rows; returns the table name.

    ``Family.REP`` keeps every repair, so it intentionally has no
    survivor table — the caller should fall through to the
    preference-blind plan.
    """
    table = survivor_table_name(profile.relation, family)
    _drop(connection, table)
    connection.execute(
        f"CREATE TEMP TABLE {quote_identifier(table)} AS "
        + _survivor_select(profile, family)
    )
    return table


def has_unresolved_group(
    connection: sqlite3.Connection,
    profile: DirtyProfile,
    survivor_table: str,
) -> bool:
    """Whether some group keeps two or more surviving classes.

    ``False`` means the preferred repair projected onto the relation is
    unique — the plan can collapse to a plain evaluation over the
    survivor rows.
    """
    columns = ", ".join(
        f"r.{quote_identifier(attr)}"
        for attr in profile.group + profile.classifier
    )
    classes = (
        f"SELECT DISTINCT {columns} FROM "
        f"{quote_identifier(profile.relation)} r "
        f"WHERE r.rowid IN "
        f"(SELECT row_id FROM {quote_identifier(survivor_table)})"
    )
    if profile.group:
        group_columns = ", ".join(
            quote_identifier(attr) for attr in profile.group
        )
        sql = (
            f"SELECT 1 FROM ({classes}) GROUP BY {group_columns} "
            "HAVING COUNT(*) > 1 LIMIT 1"
        )
    else:
        sql = f"SELECT 1 FROM ({classes}) HAVING COUNT(*) > 1"
    return connection.execute(sql).fetchone() is not None
