"""Abstract syntax of first-order queries.

The paper queries databases with closed first-order formulas over the
alphabet of the relation symbols plus the binary comparison symbols
``=``, ``!=``, ``<``, ``>`` (Section 2); we additionally support ``<=``
and ``>=`` as derived comparisons.  Open formulas (with free variables)
are supported along the lines of [1, 7] for certain-answer computation.

Terms are variables or constants; formulas are atoms, comparisons and
the usual connectives/quantifiers.  All AST nodes are immutable and
hashable, and support substitution and free-variable computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Sequence, Tuple, Union

from repro.exceptions import QueryError
from repro.relational.domain import Value

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """A first-order variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant: an uninterpreted name (str) or a natural number (int)."""

    value: Value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


Term = Union[Var, Const]


def coerce_term(term: Union[Term, Value]) -> Term:
    """Lift raw Python values into :class:`Const`; pass terms through."""
    if isinstance(term, (Var, Const)):
        return term
    if isinstance(term, bool):
        raise QueryError(f"booleans are not database values: {term!r}")
    if isinstance(term, (str, int)):
        return Const(term)
    raise QueryError(f"cannot use {term!r} as a query term")


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class of all formula nodes."""

    __slots__ = ()

    def free_variables(self) -> FrozenSet[str]:
        """Names of free variables of the formula."""
        raise NotImplementedError

    def substitute(self, binding: Mapping[str, Value]) -> "Formula":
        """Replace free variables by constants according to ``binding``."""
        raise NotImplementedError

    @property
    def is_closed(self) -> bool:
        """Whether the formula has no free variables (a boolean query)."""
        return not self.free_variables()

    # Connective sugar ------------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        return Implies(self, other)


def _substitute_term(term: Term, binding: Mapping[str, Value]) -> Term:
    if isinstance(term, Var) and term.name in binding:
        return Const(binding[term.name])
    return term


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The constant-true formula."""

    def free_variables(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, binding: Mapping[str, Value]) -> Formula:
        return self

    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """The constant-false formula."""

    def free_variables(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, binding: Mapping[str, Value]) -> Formula:
        return self

    def __str__(self) -> str:
        return "FALSE"


@dataclass(frozen=True)
class Atom(Formula):
    """A relational atom ``R(t1, ..., tk)``."""

    relation: str
    terms: Tuple[Term, ...]

    def __init__(self, relation: str, terms: Sequence[Union[Term, Value]]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(
            self, "terms", tuple(coerce_term(term) for term in terms)
        )

    def free_variables(self) -> FrozenSet[str]:
        return frozenset(term.name for term in self.terms if isinstance(term, Var))

    def substitute(self, binding: Mapping[str, Value]) -> Formula:
        return Atom(self.relation, [_substitute_term(t, binding) for t in self.terms])

    @property
    def is_ground(self) -> bool:
        return all(isinstance(term, Const) for term in self.terms)

    def __str__(self) -> str:
        inner = ", ".join(str(term) for term in self.terms)
        return f"{self.relation}({inner})"


#: Comparison operators with their Python semantics on naturals.
COMPARISON_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}

#: Operators meaningful on every domain (names and naturals alike).
EQUALITY_OPS = frozenset({"=", "!="})

_NEGATED_OP = {"=": "!=", "!=": "=", "<": ">=", ">": "<=", "<=": ">", ">=": "<"}


@dataclass(frozen=True)
class Comparison(Formula):
    """A comparison ``t1 op t2`` with op in =, !=, <, >, <=, >=.

    Order comparisons (``<`` etc.) have the natural interpretation over
    the naturals ``N`` only; applied to uninterpreted names they are
    *false* (the ordering relation does not hold outside ``N``).
    """

    op: str
    left: Term
    right: Term

    def __init__(
        self, op: str, left: Union[Term, Value], right: Union[Term, Value]
    ) -> None:
        if op not in COMPARISON_OPS:
            raise QueryError(f"unknown comparison operator {op!r}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", coerce_term(left))
        object.__setattr__(self, "right", coerce_term(right))

    def free_variables(self) -> FrozenSet[str]:
        names = set()
        for term in (self.left, self.right):
            if isinstance(term, Var):
                names.add(term.name)
        return frozenset(names)

    def substitute(self, binding: Mapping[str, Value]) -> Formula:
        return Comparison(
            self.op,
            _substitute_term(self.left, binding),
            _substitute_term(self.right, binding),
        )

    def negated(self) -> "Comparison":
        """The complementary comparison (used by DNF conversion)."""
        return Comparison(_NEGATED_OP[self.op], self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    body: Formula

    def free_variables(self) -> FrozenSet[str]:
        return self.body.free_variables()

    def substitute(self, binding: Mapping[str, Value]) -> Formula:
        return Not(self.body.substitute(binding))

    def __str__(self) -> str:
        return f"NOT ({self.body})"


def _flatten(cls, parts: Sequence[Formula]) -> Tuple[Formula, ...]:
    flat = []
    for part in parts:
        if isinstance(part, cls):
            flat.extend(part.parts)
        else:
            flat.append(part)
    return tuple(flat)


@dataclass(frozen=True)
class And(Formula):
    """N-ary conjunction (nested conjunctions are flattened)."""

    parts: Tuple[Formula, ...]

    def __init__(self, parts: Sequence[Formula]) -> None:
        if not parts:
            raise QueryError("conjunction needs at least one conjunct")
        object.__setattr__(self, "parts", _flatten(And, parts))

    def free_variables(self) -> FrozenSet[str]:
        return frozenset().union(*(part.free_variables() for part in self.parts))

    def substitute(self, binding: Mapping[str, Value]) -> Formula:
        return And([part.substitute(binding) for part in self.parts])

    def __str__(self) -> str:
        return " AND ".join(f"({part})" for part in self.parts)


@dataclass(frozen=True)
class Or(Formula):
    """N-ary disjunction (nested disjunctions are flattened)."""

    parts: Tuple[Formula, ...]

    def __init__(self, parts: Sequence[Formula]) -> None:
        if not parts:
            raise QueryError("disjunction needs at least one disjunct")
        object.__setattr__(self, "parts", _flatten(Or, parts))

    def free_variables(self) -> FrozenSet[str]:
        return frozenset().union(*(part.free_variables() for part in self.parts))

    def substitute(self, binding: Mapping[str, Value]) -> Formula:
        return Or([part.substitute(binding) for part in self.parts])

    def __str__(self) -> str:
        return " OR ".join(f"({part})" for part in self.parts)


@dataclass(frozen=True)
class Implies(Formula):
    """Implication ``antecedent -> consequent``."""

    antecedent: Formula
    consequent: Formula

    def free_variables(self) -> FrozenSet[str]:
        return self.antecedent.free_variables() | self.consequent.free_variables()

    def substitute(self, binding: Mapping[str, Value]) -> Formula:
        return Implies(
            self.antecedent.substitute(binding),
            self.consequent.substitute(binding),
        )

    def __str__(self) -> str:
        return f"({self.antecedent}) IMPLIES ({self.consequent})"


class _Quantifier(Formula):
    """Shared machinery of EXISTS/FORALL."""

    __slots__ = ("variables", "body")

    def __init__(self, variables: Sequence[str], body: Formula) -> None:
        if not variables:
            raise QueryError("quantifier needs at least one variable")
        if len(set(variables)) != len(variables):
            raise QueryError(f"duplicate quantified variables: {variables}")
        self.variables = tuple(variables)
        self.body = body

    def free_variables(self) -> FrozenSet[str]:
        return self.body.free_variables() - frozenset(self.variables)

    def _substituted_body(self, binding: Mapping[str, Value]) -> Formula:
        safe = {
            name: value
            for name, value in binding.items()
            if name not in self.variables
        }
        return self.body.substitute(safe)

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.variables == other.variables and self.body == other.body

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.variables, self.body))


class Exists(_Quantifier):
    """Existential quantification over a block of variables."""

    def substitute(self, binding: Mapping[str, Value]) -> Formula:
        return Exists(self.variables, self._substituted_body(binding))

    def __str__(self) -> str:
        return f"EXISTS {', '.join(self.variables)} . ({self.body})"


class Forall(_Quantifier):
    """Universal quantification over a block of variables."""

    def substitute(self, binding: Mapping[str, Value]) -> Formula:
        return Forall(self.variables, self._substituted_body(binding))

    def __str__(self) -> str:
        return f"FORALL {', '.join(self.variables)} . ({self.body})"


# ---------------------------------------------------------------------------
# Structural helpers used across the library
# ---------------------------------------------------------------------------


def constants_of(formula: Formula) -> FrozenSet[Value]:
    """All constant values mentioned in the formula."""
    found = set()

    def walk(node: Formula) -> None:
        if isinstance(node, Atom):
            found.update(t.value for t in node.terms if isinstance(t, Const))
        elif isinstance(node, Comparison):
            for term in (node.left, node.right):
                if isinstance(term, Const):
                    found.add(term.value)
        elif isinstance(node, Not):
            walk(node.body)
        elif isinstance(node, (And, Or)):
            for part in node.parts:
                walk(part)
        elif isinstance(node, Implies):
            walk(node.antecedent)
            walk(node.consequent)
        elif isinstance(node, (Exists, Forall)):
            walk(node.body)

    walk(formula)
    return frozenset(found)


def relations_of(formula: Formula) -> FrozenSet[str]:
    """All relation names mentioned in the formula's atoms."""
    found = set()

    def walk(node: Formula) -> None:
        if isinstance(node, Atom):
            found.add(node.relation)
        elif isinstance(node, Not):
            walk(node.body)
        elif isinstance(node, (And, Or)):
            for part in node.parts:
                walk(part)
        elif isinstance(node, Implies):
            walk(node.antecedent)
            walk(node.consequent)
        elif isinstance(node, (Exists, Forall)):
            walk(node.body)

    walk(formula)
    return frozenset(found)


def is_quantifier_free(formula: Formula) -> bool:
    """Whether the formula contains no quantifier ({∀,∃}-free in Fig. 5)."""
    if isinstance(formula, (Exists, Forall)):
        return False
    if isinstance(formula, Not):
        return is_quantifier_free(formula.body)
    if isinstance(formula, (And, Or)):
        return all(is_quantifier_free(part) for part in formula.parts)
    if isinstance(formula, Implies):
        return is_quantifier_free(formula.antecedent) and is_quantifier_free(
            formula.consequent
        )
    return True


def is_ground(formula: Formula) -> bool:
    """Whether the formula is quantifier-free and variable-free."""
    return is_quantifier_free(formula) and formula.is_closed
