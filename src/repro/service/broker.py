"""Batched request brokering with dedup, routing and answer memoization.

A :class:`RequestBroker` fronts one or more registered databases, each
served by a mutable :class:`~repro.incremental.engine.
IncrementalCqaEngine` and (optionally) a lazily refreshed SQLite mirror.
Batches of :class:`Request` objects are served priority-first; identical
in-flight work — same database state, query, family, answer columns —
is computed once and shared across the batch, and results are memoized
in a bounded, content-keyed :class:`AnswerCache`.

Routing picks the cheapest capable engine per query, reusing the
rewritability analysis behind :attr:`SqlCqaEngine.last_route`:

1. **prefsql pushdown** — active priority edges and the query is
   rewritable: the preference-aware winnow rewriting
   (:mod:`repro.prefsql`) answers prioritized families in one SQL
   statement, ahead of witness-index/indexed streaming;
2. **sqlite pushdown** — no active priority edges and the query is
   rewritable: one preference-blind SQL statement;
3. **witness index** — the incremental engine's covering check for
   conjunctive queries (no repair cross-product);
4. **indexed in-memory** — per-repair streaming with hash-indexed join
   plans, optionally sharded across the process pool of
   :mod:`repro.service.parallel`.

Cache keys embed the instance's *component fingerprint* — the frozenset
of conflict-graph component vertex sets — plus the *priority
fingerprint* (the frozenset of active oriented edges), so an entry can
only ever hit the exact prioritized state it was computed on; engine
updates additionally invalidate component-wise: every cached answer
that depended on a touched component is evicted eagerly (untouched
components keep their entries alive for states that revisit them).

Concurrency: each database carries a :class:`~repro.service.rwlock.
ReadWriteLock` — updates are exclusive, read-only queries of one
database run concurrently.  The pushed (SQLite) routes overlap fully;
the in-memory engines keep their single-threaded caches behind a
per-database compute mutex.  ``stats()`` reports ``concurrent_reads``,
the number of read sections that overlapped another reader.
"""

from __future__ import annotations

import contextlib
import sqlite3
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis import RouteReport
from repro.analysis import analyze as analyze_routes
from repro.backend.mirror import SqliteMirror
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.answers import ClosedAnswer, OpenAnswers
from repro.exceptions import AdmissionError, QueryError
from repro.incremental.engine import IncrementalCqaEngine
from repro.obs import RECORDER, REGISTRY, observe_cache
from repro.priorities.priority import PriorityEdge
from repro.query.ast import Formula, relations_of
from repro.relational.rows import Row
from repro.service.rwlock import ReadWriteLock

Outcome = Union[ClosedAnswer, OpenAnswers]

#: Whether the linked SQLite library runs in serialized threading mode
#: (``THREADSAFE=1``): only then may overlapping readers execute SQL on
#: one shared mirror connection.  On other builds pushed queries
#: serialize on the mirror lock instead.
_SQLITE_SERIALIZED = sqlite3.threadsafety == 3

#: A component fingerprint: the vertex set of one connected component.
Component = FrozenSet[Row]


@dataclass(frozen=True)
class Request:
    """One query request in a batch.

    ``query`` is a first-order query (string or AST); ``variables``
    fixes the answer columns of open queries; ``database`` names a
    registered database (``None`` = the broker default); ``priority``
    orders service within a batch (higher first, ties keep submission
    order); ``tag`` is an opaque client correlation id echoed back on
    the result.
    """

    query: Union[str, Formula]
    family: Optional[Family] = None
    variables: Optional[Tuple[str, ...]] = None
    database: Optional[str] = None
    priority: int = 0
    tag: Optional[str] = None


@dataclass(frozen=True)
class BrokerResult:
    """A served request: the answer plus routing provenance."""

    request: Request
    outcome: Outcome
    database: str
    #: Which engine served it: ``"prefsql"``, ``"sqlite"`` or
    #: ``"incremental"``.
    engine: str
    #: Evaluation route (``"prefsql"`` / ``"sqlite"`` /
    #: ``"witness-index"`` / ``"indexed"`` / ``"naive"``) — identical
    #: for cache hits.
    route: str
    #: Served from the answer cache (a previous batch computed it).
    cached: bool = False
    #: Deduplicated against an identical request in the same batch.
    shared: bool = False
    #: Actual per-request service time (normalize + route + execute),
    #: measured by the broker — what the access log should attribute to
    #: *this* request, not a batch average.
    seconds: float = 0.0
    #: Trace id of the flight-recorder record retained for this
    #: execution; None for cache hits, dedups, and unsampled queries.
    trace_id: Optional[str] = None


@dataclass
class _CacheSlot:
    outcome: Outcome
    engine: str
    route: str
    components: FrozenSet[Component]


class AnswerCache:
    """Bounded, content-keyed, thread-safe memo of broker answers.

    Keys embed the full component fingerprint of the instance state, so
    a lookup can only hit an answer computed on bit-identical data.
    ``invalidate_components`` evicts every entry (of one database) that
    recorded a component intersecting the touched rows — the entries an
    update actually outdated — while entries resting on untouched
    components survive for instance states that return.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, _CacheSlot]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evicted = 0  # guarded-by: _lock

    def __len__(self) -> int:
        # Size probe; atomic under the GIL, staleness is harmless.
        return len(self._entries)  # lint: unguarded-ok

    def get(self, key: Tuple) -> Optional[_CacheSlot]:
        with self._lock:
            slot = self._entries.get(key)
            if slot is None:
                self.misses += 1
                observe_cache("answer", "miss")
            else:
                self.hits += 1
                observe_cache("answer", "hit")
            return slot

    def put(self, key: Tuple, slot: _CacheSlot) -> None:
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self.evicted += 1
                observe_cache("answer", "eviction")
            self._entries[key] = slot

    def invalidate_components(
        self, database: str, touched: Iterable[Row]
    ) -> int:
        """Evict entries of ``database`` depending on any touched row."""
        touched = frozenset(touched)
        if not touched:
            return 0
        with self._lock:
            stale = [
                key
                for key, slot in self._entries.items()
                if key[0] == database
                and any(component & touched for component in slot.components)
            ]
            for key in stale:
                del self._entries[key]
            self.evicted += len(stale)
            observe_cache("answer", "eviction", len(stale))
            return len(stale)

    def invalidate_database(self, database: str) -> int:
        """Evict every entry of one database (priority re-declarations)."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == database]
            for key in stale:
                del self._entries[key]
            self.evicted += len(stale)
            observe_cache("answer", "eviction", len(stale))
            return len(stale)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evicted": self.evicted,
            }


class AdmissionController:
    """Bounded-concurrency admission for the serving path.

    One *submission* (one :meth:`RequestBroker.submit` call — i.e. one
    HTTP request or one stdio line, single query or batch) occupies one
    in-flight slot for its whole service time.  With ``max_inflight``
    set, at most that many submissions execute concurrently; up to
    ``max_queue`` more wait in a bounded accept queue (FIFO via the
    condition variable), and arrivals beyond the queue bound are
    rejected immediately with :class:`~repro.exceptions.AdmissionError`
    — the caller sheds load instead of queueing unboundedly.  With
    ``max_inflight=None`` (the default) nothing blocks or rejects; the
    controller only maintains the saturation gauges.

    Gauges/counters (when the registry is enabled):
    ``repro_inflight_requests``, ``repro_accept_queue_depth``, and
    ``repro_rejected_total``.
    """

    def __init__(
        self,
        max_inflight: Optional[int] = None,
        max_queue: Optional[int] = None,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        if max_queue is not None and max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = max_inflight
        #: Accept-queue bound; defaults to ``max_inflight`` when a limit
        #: is armed (a saturated service tolerates one extra wave).
        self.max_queue = (
            max_queue if max_queue is not None else (max_inflight or 0)
        )
        self._condition = threading.Condition()
        self.inflight = 0  # guarded-by: _condition
        self.queued = 0  # guarded-by: _condition
        self.rejected = 0  # guarded-by: _condition

    def _set_gauges(self) -> None:
        """Mirror the counters into the registry (caller holds the
        condition lock, so reads here are consistent)."""
        if not REGISTRY.enabled:
            return
        REGISTRY.gauge(
            "repro_inflight_requests",
            "Submissions currently being served",
        ).set(self.inflight)  # lint: unguarded-ok
        REGISTRY.gauge(
            "repro_accept_queue_depth",
            "Submissions waiting in the bounded accept queue",
        ).set(self.queued)  # lint: unguarded-ok

    def admit(self) -> "AdmissionController":
        """``with controller.admit():`` — hold one in-flight slot."""
        return self

    def __enter__(self) -> "AdmissionController":
        with self._condition:
            if (
                self.max_inflight is not None
                and self.inflight >= self.max_inflight
            ):
                if self.queued >= self.max_queue:
                    self.rejected += 1
                    if REGISTRY.enabled:
                        REGISTRY.counter(
                            "repro_rejected_total",
                            "Submissions rejected at admission control",
                        ).inc()
                    raise AdmissionError(
                        f"service saturated: {self.inflight} in flight, "
                        f"{self.queued} queued (limits: "
                        f"{self.max_inflight}/{self.max_queue}); retry later"
                    )
                self.queued += 1
                self._set_gauges()
                while self.inflight >= self.max_inflight:
                    self._condition.wait()
                self.queued -= 1
            self.inflight += 1
            self._set_gauges()
        return self

    def __exit__(self, *exc_info: object) -> None:
        with self._condition:
            self.inflight -= 1
            self._set_gauges()
            self._condition.notify()

    def stats(self) -> Dict[str, object]:
        with self._condition:
            return {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue if self.max_inflight else 0,
                "inflight": self.inflight,
                "queued": self.queued,
                "rejected": self.rejected,
            }


@dataclass
class _Entry:
    """One registered database: engines plus its lock hierarchy.

    ``rw`` admits concurrent read-only queries and exclusive updates.
    Inside a read section, ``compute_lock`` serializes access to the
    in-memory incremental engine (its component-repair and witness
    caches are built for single-threaded use) and ``mirror_lock``
    serializes mirror refreshes and pushdown-engine construction; the
    pushed SQL statements themselves run concurrently when the linked
    SQLite is in serialized threading mode (``sqlite3.threadsafety ==
    3``) and fall back to ``mirror_lock`` otherwise.  A
    refresh can never race a pushed read from an older mirror state:
    the mirror only becomes dirty under the write lock.
    """

    name: str
    engine: IncrementalCqaEngine
    mirror: Optional[SqliteMirror]
    family: Family
    #: Whether prioritized requests may use the prefsql rewriting.
    prefsql_pushdown: bool = True
    rw: ReadWriteLock = field(default_factory=ReadWriteLock)
    compute_lock: threading.Lock = field(default_factory=threading.Lock)
    mirror_lock: threading.Lock = field(default_factory=threading.Lock)
    meta_lock: threading.Lock = field(default_factory=threading.Lock)
    queries: int = 0
    updates: int = 0
    #: Cached component fingerprint of the current instance state;
    #: recomputing it per request would cost O(V log V) on the hot path.
    fingerprint: Optional[FrozenSet[Component]] = None
    #: Cached frozenset of active priority edges (part of cache keys).
    priority_fingerprint: Optional[FrozenSet[PriorityEdge]] = None


class RequestBroker:
    """Routes, deduplicates and memoizes batched CQA requests."""

    def __init__(
        self,
        cache_entries: int = 1024,
        parallel: Optional[int] = None,
        max_inflight: Optional[int] = None,
        max_queue: Optional[int] = None,
    ) -> None:
        self._entries: Dict[str, _Entry] = {}
        #: Saturation tracking and (with ``max_inflight``) admission
        #: control; every ``submit`` call holds one slot end to end.
        self.admission = AdmissionController(max_inflight, max_queue)
        self._default: Optional[str] = None
        self._lock = threading.Lock()
        self.cache = AnswerCache(cache_entries)
        # Static route reports are data-independent (modulo the active
        # priority edges, which key them), so one analysis serves every
        # request of the same (database, query, columns, priority
        # state) — route decisions stop costing per-request work.
        self._route_reports: "OrderedDict[Tuple, RouteReport]" = OrderedDict()  # guarded-by: _route_report_lock
        self._route_report_lock = threading.Lock()
        self._max_route_reports = 1024
        self.route_report_hits = 0  # guarded-by: _route_report_lock
        self.route_report_misses = 0  # guarded-by: _route_report_lock
        #: Worker count forwarded to the engines' enumeration paths
        #: (``None`` = serial, ``0`` = hardware width).
        self.parallel = parallel
        self.deduplicated = 0
        self.batches = 0

    # Registration -------------------------------------------------------------

    def register(
        self,
        name: str,
        data,
        dependencies: Sequence[FunctionalDependency],
        priority: Iterable[PriorityEdge] = (),
        family: Family = Family.REP,
        sqlite_pushdown: bool = True,
        prefsql_pushdown: bool = True,
        naive: bool = False,
    ) -> str:
        """Register a database under ``name``; the first becomes default.

        ``sqlite_pushdown`` enables the mirror entirely;
        ``prefsql_pushdown`` additionally lets *prioritized* requests
        use the preference-aware rewriting (off: they stream repairs
        in memory, the pre-prefsql behaviour).
        """
        with self._lock:
            if name in self._entries:
                raise QueryError(f"database {name!r} is already registered")
            engine = IncrementalCqaEngine(
                data, dependencies, priority, family, naive=naive
            )
            mirror = (
                SqliteMirror(tuple(dependencies), family)
                if sqlite_pushdown and not naive
                else None
            )
            self._entries[name] = _Entry(
                name, engine, mirror, family,
                prefsql_pushdown=prefsql_pushdown,
            )
            if self._default is None:
                self._default = name
        return name

    def _entry(self, database: Optional[str]) -> _Entry:
        name = database or self._default
        if name is None:
            raise QueryError("no database registered with the broker")
        entry = self._entries.get(name)
        if entry is None:
            raise QueryError(f"unknown database {name!r}")
        return entry

    def engine(self, database: Optional[str] = None) -> IncrementalCqaEngine:
        """The mutable engine behind one registered database."""
        return self._entry(database).engine

    @property
    def databases(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    # Updates ------------------------------------------------------------------

    def _after_update(self, entry: _Entry, delta) -> None:
        entry.updates += 1
        entry.fingerprint = None
        # Conflicts appearing or vanishing can (de)activate declared
        # priority edges, so the priority fingerprint is state-dependent.
        entry.priority_fingerprint = None
        if entry.mirror is not None:
            entry.mirror.mark_dirty()
        touched = set(delta.added_vertices) | set(delta.removed_vertices)
        for component in delta.touched_components:
            touched |= component
        self.cache.invalidate_components(entry.name, touched)

    def insert(self, row: Row, database: Optional[str] = None):
        """Insert a tuple; invalidates dependent cached answers."""
        entry = self._entry(database)
        with entry.rw.write():
            delta = entry.engine.insert(row)
            self._after_update(entry, delta)
        return delta

    def delete(self, row: Row, database: Optional[str] = None):
        """Delete a tuple; invalidates dependent cached answers."""
        entry = self._entry(database)
        with entry.rw.write():
            delta = entry.engine.delete(row)
            self._after_update(entry, delta)
        return delta

    def prefer(
        self, winner: Row, loser: Row, database: Optional[str] = None
    ) -> None:
        """Declare a priority edge (conservatively drops the db's cache)."""
        entry = self._entry(database)
        with entry.rw.write():
            entry.engine.prefer(winner, loser)
            entry.updates += 1
            entry.priority_fingerprint = None
            self.cache.invalidate_database(entry.name)

    # Serving ------------------------------------------------------------------

    def _normalize(
        self, entry: _Entry, request: Request
    ) -> Tuple[Formula, Tuple[str, ...], Family]:
        formula = entry.engine._to_formula(request.query)
        family = request.family or entry.family
        if request.variables is not None:
            variables = tuple(request.variables)
        elif formula.is_closed:
            variables = ()
        else:
            variables = tuple(sorted(formula.free_variables()))
        return formula, variables, family

    def _fingerprint(self, entry: _Entry) -> FrozenSet[Component]:
        if entry.fingerprint is None:
            entry.fingerprint = frozenset(
                entry.engine.graph.connected_components()
            )
        return entry.fingerprint

    def _priority_fingerprint(self, entry: _Entry) -> FrozenSet[PriorityEdge]:
        if entry.priority_fingerprint is None:
            entry.priority_fingerprint = entry.engine.active_priority_edges()
        return entry.priority_fingerprint

    def _route_report(
        self,
        entry: _Entry,
        formula: Formula,
        variables: Tuple[str, ...],
        active: FrozenSet[PriorityEdge],
    ) -> RouteReport:
        """The cached static route analysis for one work unit.

        Keyed by query + theory fingerprint: schema and dependencies are
        fixed per registration, so ``(database, formula, columns,
        active-priority state)`` pins everything the analysis reads.
        Duplicate-row blocking is data-dependent and deliberately *not*
        predicted here — the prefsql engine's own probe stays
        authoritative for it."""
        key = (entry.name, formula, variables, active)
        with self._route_report_lock:
            report = self._route_reports.get(key)
            if report is not None:
                self._route_reports.move_to_end(key)
                self.route_report_hits += 1
                observe_cache("route_report", "hit")
                return report
            self.route_report_misses += 1
            observe_cache("route_report", "miss")
        report = analyze_routes(
            entry.engine.schema,
            entry.engine.dependencies,
            formula,
            variables,
            priority=tuple(active),
            naive=entry.engine.naive,
        )
        with self._route_report_lock:
            if (
                key not in self._route_reports
                and len(self._route_reports) >= self._max_route_reports
            ):
                self._route_reports.popitem(last=False)
            self._route_reports[key] = report
        return report

    def _execute(
        self,
        entry: _Entry,
        formula: Formula,
        variables: Tuple[str, ...],
        family: Family,
    ) -> Tuple[Outcome, str, str]:
        """Run one unit of work on the cheapest capable engine."""
        with entry.meta_lock:
            entry.queries += 1
        if entry.mirror is not None:
            active = self._priority_fingerprint(entry)
            if active and entry.prefsql_pushdown:
                target: Optional[str] = "prefsql"
            elif active:
                target = None  # prefsql disabled: stream in memory
            else:
                target = "sqlite"
            if target is not None:
                # Statically blocked queries skip the mirror entirely:
                # no refresh, no pushed-engine construction, no probe.
                # The report predicts exactly what explain() would say
                # for every data-independent condition.
                report = self._route_report(entry, formula, variables, active)
                if report.blocked(target):
                    target = None
            pushed_engine = None
            engine_label = "incremental"
            # Lazy snapshot: assembling the Database is O(instance), so
            # hand the mirror a supplier it only calls when dirty.
            # Refresh and engine construction serialize on mirror_lock;
            # the pushed SQL below runs concurrently across readers.
            if target == "prefsql":
                with entry.mirror_lock:
                    pushed_engine = entry.mirror.pref_engine_for(
                        entry.engine.current_database, active
                    )
                engine_label = "prefsql"
            elif target == "sqlite":
                with entry.mirror_lock:
                    pushed_engine = entry.mirror.engine_for(
                        entry.engine.current_database
                    )
                engine_label = "sqlite"
            if pushed_engine is not None:
                # explain() may build survivor temp tables, so on
                # SQLite builds without serialized threading the whole
                # pushed section (not just the final SELECTs) must hold
                # the mirror lock.
                guard = (
                    contextlib.nullcontext()
                    if _SQLITE_SERIALIZED
                    else entry.mirror_lock
                )
                # Key the routing probe exactly like the execution call
                # (closed queries decide under ()), and under the
                # request's family, so one cached decision serves both.
                probe_variables: Optional[Tuple[str, ...]] = (
                    () if formula.is_closed and not variables else variables
                )
                with guard:
                    outcome: Optional[Outcome] = None
                    if pushed_engine.explain(
                        formula, probe_variables, family=family
                    ).pushed:
                        if formula.is_closed and not variables:
                            outcome = pushed_engine.answer(formula, family)
                        else:
                            outcome = pushed_engine.certain_answers(
                                formula, variables, family
                            )
                if outcome is not None:
                    return outcome, engine_label, outcome.route or engine_label
        with entry.compute_lock:
            if formula.is_closed and not variables:
                outcome = entry.engine.answer(formula, family, self.parallel)
            else:
                outcome = entry.engine.certain_answers(
                    formula, variables, family, self.parallel
                )
        return outcome, "incremental", outcome.route or "indexed"

    def submit(self, requests: Sequence[Request]) -> List[BrokerResult]:
        """Serve a batch: priority order, in-flight dedup, memoization.

        Results come back in submission order regardless of service
        order.  Identical work units (same database state, formula,
        answer columns and family) are computed once per batch; repeats
        across batches hit the answer cache and report the original
        route.

        Each call occupies one admission slot; when the broker was
        built with ``max_inflight`` and both the in-flight limit and
        the accept queue are full, the call raises
        :class:`~repro.exceptions.AdmissionError` without serving
        anything.
        """
        with self.admission.admit():
            return self._submit(requests)

    def _submit(self, requests: Sequence[Request]) -> List[BrokerResult]:
        self.batches += 1
        if REGISTRY.enabled:
            REGISTRY.histogram(
                "repro_batch_size",
                "Requests per submitted batch",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            ).observe(len(requests))
            REGISTRY.counter(
                "repro_requests_total",
                "Requests served (accepted submissions, by batch size)",
            ).inc(len(requests))
        order = sorted(
            range(len(requests)),
            key=lambda position: (-requests[position].priority, position),
        )
        results: List[Optional[BrokerResult]] = [None] * len(requests)
        in_flight: Dict[Tuple, Tuple[Outcome, str, str]] = {}
        for position in order:
            request = requests[position]
            entry = self._entry(request.database)
            started = time.perf_counter()
            with entry.rw.read():
                formula, variables, family = self._normalize(entry, request)
                fingerprint = self._fingerprint(entry)
                priority_fingerprint = self._priority_fingerprint(entry)
                key = (
                    entry.name,
                    fingerprint,
                    priority_fingerprint,
                    formula,
                    variables,
                    family,
                )
                if key in in_flight:
                    outcome, engine_label, route = in_flight[key]
                    self.deduplicated += 1
                    if REGISTRY.enabled:
                        REGISTRY.counter(
                            "repro_deduplicated_total",
                            "Requests shared with identical in-batch work",
                        ).inc()
                    results[position] = BrokerResult(
                        request, outcome, entry.name, engine_label, route,
                        shared=True,
                        seconds=time.perf_counter() - started,
                    )
                    continue
                slot = self.cache.get(key)
                if slot is not None:
                    in_flight[key] = (slot.outcome, slot.engine, slot.route)
                    results[position] = BrokerResult(
                        request, slot.outcome, entry.name, slot.engine,
                        slot.route, cached=True,
                        seconds=time.perf_counter() - started,
                    )
                    continue
                # The flight recorder wraps only actual executions —
                # cache hits and dedups never re-run, so there is no
                # trace to collect.  The report provider hands the
                # record the analysis layer's fingerprint and blocking
                # diagnostics lazily (dropped records never pay for it).
                capture = RECORDER.capture(
                    str(formula),
                    database=entry.name,
                    report_provider=lambda: self._route_report(
                        entry, formula, variables, priority_fingerprint
                    ),
                )
                with capture:
                    outcome, engine_label, route = self._execute(
                        entry, formula, variables, family
                    )
                    capture.note(
                        engine=engine_label, route=route, family=str(family)
                    )
                in_flight[key] = (outcome, engine_label, route)
                # Dependencies drive eviction only (lookups are content
                # keyed), so they can be narrowed to the components of
                # the relations the query mentions: an update confined
                # to other relations leaves this entry alive for
                # instance states that return.
                mentioned = relations_of(formula)
                depends_on = frozenset(
                    component
                    for component in fingerprint
                    if any(row.relation in mentioned for row in component)
                )
                self.cache.put(
                    key, _CacheSlot(outcome, engine_label, route, depends_on)
                )
                results[position] = BrokerResult(
                    request, outcome, entry.name, engine_label, route,
                    seconds=time.perf_counter() - started,
                    trace_id=capture.trace_id if capture.recorded else None,
                )
        return [result for result in results if result is not None]

    def query(
        self,
        query: Union[str, Formula],
        family: Optional[Family] = None,
        variables: Optional[Tuple[str, ...]] = None,
        database: Optional[str] = None,
    ) -> BrokerResult:
        """Serve a single request (a batch of one)."""
        return self.submit(
            [Request(query, family, variables, database)]
        )[0]

    def analyze(
        self,
        query: Union[str, Formula],
        family: Optional[Family] = None,
        variables: Optional[Tuple[str, ...]] = None,
        database: Optional[str] = None,
    ) -> RouteReport:
        """Static route analysis of one query — nothing executes.

        Returns the same cached :class:`~repro.analysis.model.
        RouteReport` the broker consults when serving, so the
        diagnostics seen here are exactly the routing the next
        ``submit`` of the same query will follow.
        """
        entry = self._entry(database)
        with entry.rw.read():
            formula, norm_variables, _ = self._normalize(
                entry, Request(query, family, variables, database)
            )
            active = self._priority_fingerprint(entry)
            return self._route_report(entry, formula, norm_variables, active)

    # Diagnostics --------------------------------------------------------------

    def backend_of(self, database: Optional[str] = None) -> str:
        """The engine a read-only query of ``database`` routes to first:
        ``"prefsql"``, ``"sqlite"`` or ``"incremental"``."""
        entry = self._entry(database)
        if entry.mirror is None:
            return "incremental"
        if (
            entry.prefsql_pushdown
            and self._priority_fingerprint(entry)
        ):
            return "prefsql"
        return "sqlite"

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """All three cache families, uniformly shaped.

        Each family reports ``{entries, hits, misses, evictions}``; the
        context and component-repair families aggregate across every
        registered database's engine.
        """
        answer = self.cache.stats()
        families: Dict[str, Dict[str, int]] = {
            "answer": {
                "entries": answer["entries"],
                "hits": answer["hits"],
                "misses": answer["misses"],
                "evictions": answer["evicted"],
            },
            "context": {"entries": 0, "hits": 0, "misses": 0, "evictions": 0},
            "component_repair": {
                "entries": 0, "hits": 0, "misses": 0, "evictions": 0,
            },
        }
        for entry in self._entries.values():
            context = entry.engine._contexts.stats()
            for field_name in ("entries", "hits", "misses", "evictions"):
                families["context"][field_name] += context[field_name]
            component = entry.engine._cache.stats()
            families["component_repair"]["hits"] += component["hits"]
            families["component_repair"]["misses"] += component["misses"]
            families["component_repair"]["evictions"] += component["evictions"]
            families["component_repair"]["entries"] += (
                component["graphs"]
                + component["fragment_sets"]
                + component["preferred_sets"]
            )
        return families

    def stats(self) -> Dict[str, object]:
        """Broker-level counters plus per-database engine summaries."""
        return {
            "databases": {
                name: {
                    "queries": entry.queries,
                    "updates": entry.updates,
                    "sqlite_mirror": entry.mirror is not None,
                    "backend": self.backend_of(name),
                    "concurrent_reads": entry.rw.concurrent_reads,
                    "engine": entry.engine.summary(),
                }
                for name, entry in self._entries.items()
            },
            "batches": self.batches,
            "deduplicated": self.deduplicated,
            "route_reports": {
                # Stats snapshot: counter reads are atomic under the
                # GIL and a slightly stale triple is acceptable.
                "entries": len(self._route_reports),  # lint: unguarded-ok
                "hits": self.route_report_hits,  # lint: unguarded-ok
                "misses": self.route_report_misses,  # lint: unguarded-ok
            },
            "concurrent_reads": sum(
                entry.rw.concurrent_reads for entry in self._entries.values()
            ),
            "answer_cache": self.cache.stats(),
            "caches": self.cache_stats(),
            "parallel": self.parallel,
            "admission": self.admission.stats(),
        }

    def close(self) -> None:
        """Release SQLite mirrors (engines are plain memory)."""
        for entry in self._entries.values():
            if entry.mirror is not None:
                entry.mirror.close()

    def __enter__(self) -> "RequestBroker":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
