"""Legacy setuptools shim.

The execution environment has no network and no ``wheel`` package, so
PEP-517 editable installs (which build a wheel) fail; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` perform a
classic ``setup.py develop`` install.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
