"""Tests for the cyclic-preference extension (paper §6 future work)."""

import pytest
from hypothesis import given, settings

from repro.constraints.conflict_graph import build_conflict_graph
from repro.core.cyclic import (
    CyclicPreference,
    condensed_preferred_repairs,
    is_conservative_extension,
)
from repro.core.families import Family, preferred_repairs
from repro.datagen.generators import GRID_FDS, GRID_SCHEMA
from repro.exceptions import NonConflictingPriorityError
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from tests.conftest import key_priorities


def triangle():
    instance = RelationInstance.from_values(GRID_SCHEMA, [(1, 1), (1, 2), (1, 3)])
    graph = build_conflict_graph(instance, GRID_FDS)
    t1, t2, t3 = (Row(GRID_SCHEMA, (1, b)) for b in (1, 2, 3))
    return graph, t1, t2, t3


class TestCondensation:
    def test_acyclic_preference_is_preserved(self):
        graph, t1, t2, t3 = triangle()
        preference = CyclicPreference(graph, [(t1, t2), (t2, t3)])
        assert not preference.has_cycle
        assert preference.condense().edges == {(t1, t2), (t2, t3)}

    def test_two_cycle_cancels(self):
        graph, t1, t2, _ = triangle()
        preference = CyclicPreference(graph, [(t1, t2), (t2, t1)])
        assert preference.has_cycle
        assert preference.condense().is_empty

    def test_three_cycle_cancels(self):
        graph, t1, t2, t3 = triangle()
        preference = CyclicPreference(graph, [(t1, t2), (t2, t3), (t3, t1)])
        assert preference.condense().is_empty

    def test_edges_out_of_a_cycle_survive(self):
        # 4-clique: cycle among three tuples, all dominating the fourth.
        instance = RelationInstance.from_values(
            GRID_SCHEMA, [(1, 1), (1, 2), (1, 3), (1, 4)]
        )
        graph = build_conflict_graph(instance, GRID_FDS)
        t1, t2, t3, t4 = (Row(GRID_SCHEMA, (1, b)) for b in (1, 2, 3, 4))
        preference = CyclicPreference(
            graph, [(t1, t2), (t2, t3), (t3, t1), (t1, t4), (t2, t4)]
        )
        condensed = preference.condense()
        assert condensed.edges == {(t1, t4), (t2, t4)}

    def test_validation_still_applies(self):
        instance = RelationInstance.from_values(GRID_SCHEMA, [(1, 1), (2, 2)])
        graph = build_conflict_graph(instance, GRID_FDS)
        with pytest.raises(NonConflictingPriorityError):
            CyclicPreference(graph, [(Row(GRID_SCHEMA, (1, 1)), Row(GRID_SCHEMA, (2, 2)))])

    @given(key_priorities())
    @settings(max_examples=40, deadline=None)
    def test_condense_is_identity_on_acyclic(self, data):
        _, priority = data
        preference = CyclicPreference(priority.graph, priority.edges)
        assert preference.condense() == priority


class TestConditionalMonotonicity:
    def test_closing_a_cycle_is_not_conservative(self):
        graph, t1, t2, t3 = triangle()
        base = CyclicPreference(graph, [(t1, t2)])
        closed = base.extend([(t2, t1)])
        assert not is_conservative_extension(base, closed)

    def test_adding_cross_component_edge_is_conservative(self):
        graph, t1, t2, t3 = triangle()
        base = CyclicPreference(graph, [(t1, t2)])
        extended = base.extend([(t1, t3)])
        assert is_conservative_extension(base, extended)

    def test_monotonicity_fails_on_cycle_closure(self):
        """Paper §6: naive P2 does not survive cyclic preferences —
        closing a cycle erases preferences and *widens* the repair set."""
        graph, t1, t2, t3 = triangle()
        base = CyclicPreference(graph, [(t1, t2), (t1, t3)])
        narrowed = set(condensed_preferred_repairs(base, Family.GLOBAL))
        assert narrowed == {frozenset({t1})}
        widened = base.extend([(t2, t1)])
        result = set(condensed_preferred_repairs(widened, Family.GLOBAL))
        # t1 ≻ t2 evidence cancelled; {t2} repairs become admissible.
        assert not result <= narrowed

    @given(key_priorities(max_tuples=6))
    @settings(max_examples=30, deadline=None)
    def test_monotonicity_holds_for_conservative_extensions(self, data):
        _, priority = data
        base = CyclicPreference(priority.graph, set())
        extended = CyclicPreference(priority.graph, priority.edges)
        if not is_conservative_extension(base, extended):
            return
        base_repairs = set(condensed_preferred_repairs(base, Family.GLOBAL))
        extended_repairs = set(condensed_preferred_repairs(extended, Family.GLOBAL))
        assert extended_repairs <= base_repairs
