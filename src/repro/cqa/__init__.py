"""Consistent query answering: verdicts, naive engine, tractable cases."""

from repro.cqa.answers import ClosedAnswer, OpenAnswers, Verdict
from repro.cqa.engine import CqaEngine
from repro.cqa.tractable import (
    consistent_answer_qf,
    is_consistently_true_qf,
    some_repair_satisfies_qf,
)
from repro.cqa.aggregation import (
    Aggregate,
    AggregateRange,
    aggregate_value,
    key_range_consistent_answer,
    range_consistent_answer,
)
from repro.cqa.hypergraph_cqa import DenialCqaEngine

__all__ = [
    "Aggregate",
    "AggregateRange",
    "ClosedAnswer",
    "CqaEngine",
    "DenialCqaEngine",
    "OpenAnswers",
    "Verdict",
    "aggregate_value",
    "consistent_answer_qf",
    "is_consistently_true_qf",
    "key_range_consistent_answer",
    "range_consistent_answer",
    "some_repair_satisfies_qf",
]
