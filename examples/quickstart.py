#!/usr/bin/env python3
"""Quickstart: the paper's running example (Examples 1-3), end to end.

Integrates three conflicting sources into one inconsistent ``Mgr``
relation, inspects the conflict graph, and contrasts four ways of
answering queries over it:

1. naive evaluation on the inconsistent instance (misleading),
2. classic consistent query answers over all repairs (uninformative),
3. ETL-style cleaning with incomplete preferences (still inconsistent),
4. preferred consistent query answers (the paper's contribution).

Run:  python examples/quickstart.py
"""

from repro import (
    CqaEngine,
    Family,
    FunctionalDependency,
    RelationInstance,
    RelationSchema,
    evaluate,
    integrate_sources,
    parse_query,
)
from repro.baselines.cleaning import UnresolvedPolicy, clean_database
from repro.constraints.conflict_graph import build_conflict_graph, render_conflict_graph
from repro.priorities.builders import priority_from_source_reliability
from repro.relational.rows import sorted_rows


def main() -> None:
    # -- Example 1: three autonomous, individually consistent sources.
    schema = RelationSchema(
        "Mgr", ["Name", "Dept", "Salary:number", "Reports:number"]
    )
    s1 = RelationInstance.from_values(schema, [("Mary", "R&D", 40, 3)])
    s2 = RelationInstance.from_values(schema, [("John", "R&D", 10, 2)])
    s3 = RelationInstance.from_values(
        schema, [("Mary", "IT", 20, 1), ("John", "PR", 30, 4)]
    )
    fds = [
        FunctionalDependency.parse("Dept -> Name, Salary, Reports", "Mgr"),
        FunctionalDependency.parse("Name -> Dept, Salary, Reports", "Mgr"),
    ]

    r = integrate_sources([s1, s2, s3])
    print("Integrated instance r = s1 ∪ s2 ∪ s3:")
    for row in r.sorted():
        print(f"  {row}")

    graph = build_conflict_graph(r, fds)
    print(f"\nConflict graph ({graph.edge_count} conflicts):")
    print(render_conflict_graph(graph))

    # -- Example 1 continued: naive evaluation misleads.
    q1 = parse_query(
        "EXISTS x1, y1, z1, x2, y2, z2 . "
        "Mgr(Mary, x1, y1, z1) AND Mgr(John, x2, y2, z2) AND y1 < y2"
    )
    print(f"\nQ1 'does John earn more than Mary?' on raw r: {evaluate(q1, r)}")
    print("  (misleading: r may not correspond to any actual state)")

    # -- Example 2: classic consistent query answers.
    classic = CqaEngine(r, fds)
    print(f"\nRepairs of r: {len(classic.repairs())}")
    for repair in classic.repairs():
        print(f"  {{{', '.join(map(repr, sorted_rows(repair)))}}}")
    print(f"Q1 consistently true over all repairs? "
          f"{classic.is_consistently_true(q1)}")

    # -- Example 3: the user trusts s3 less than s1 and s2.
    source_of = {}
    for name, source in (("s1", s1), ("s2", s2), ("s3", s3)):
        for row in source:
            source_of[row] = name
    priority = priority_from_source_reliability(
        graph, source_of, [("s1", "s3"), ("s2", "s3")]
    )

    cleaned = clean_database(priority, UnresolvedPolicy.KEEP)
    print("\nETL-style cleaning with this (incomplete) preference:")
    print(f"  kept: {{{', '.join(map(repr, sorted_rows(cleaned.kept)))}}}")
    print(f"  still consistent? {cleaned.is_consistent}")

    q2 = parse_query(
        "EXISTS x1, y1, z1, x2, y2, z2 . "
        "Mgr(Mary, x1, y1, z1) AND Mgr(John, x2, y2, z2) "
        "AND y1 > y2 AND z1 < z2"
    )
    print("\nQ2 'does Mary earn more and write fewer reports than John?'")
    print(f"  classic CQA verdict:   {classic.answer(q2).verdict.value}")

    preferred = CqaEngine(r, fds, priority, Family.GLOBAL)
    answer = preferred.answer(q2)
    print(f"  preferred (G-Rep):     {answer.verdict.value}  "
          f"[{answer.repairs_considered} preferred repairs]")

    print("\nPreferred repairs (G-Rep):")
    for repair in preferred.repairs():
        print(f"  {{{', '.join(map(repr, sorted_rows(repair)))}}}")

    # Certain answers of an open SQL query under preferences.
    result = preferred.sql_certain_answers(
        "SELECT m.Name FROM Mgr m WHERE m.Salary >= 20"
    )
    print(f"\nSELECT Name WHERE Salary >= 20:")
    print(f"  certain:  {sorted(result.certain)}")
    print(f"  possible: {sorted(result.possible)}")


if __name__ == "__main__":
    main()
