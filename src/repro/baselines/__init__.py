"""Related-work baselines: ETL-style cleaning, rank/fusion, strata."""

from repro.baselines.answers import baseline_answers, cleaned_answers
from repro.baselines.cleaning import (
    CleaningOutcome,
    UnresolvedPolicy,
    clean_database,
)
from repro.baselines.ranking import (
    FusionResult,
    resolve_by_rank,
    resolve_with_fusion,
)
from repro.baselines.stratified import preferred_subtheories, stratified_priority

__all__ = [
    "CleaningOutcome",
    "FusionResult",
    "UnresolvedPolicy",
    "baseline_answers",
    "clean_database",
    "cleaned_answers",
    "preferred_subtheories",
    "resolve_by_rank",
    "resolve_with_fusion",
    "stratified_priority",
]
