"""Repair enumeration.

Repairs (Definition 1) are the maximal independent sets of the conflict
graph.  There may be exponentially many (Example 4 exhibits ``2^n``
repairs for ``2n`` tuples), so everything here is generator-based, with
two structural optimizations:

* **component factoring** — maximal independent sets of a disconnected
  graph are exactly the unions of one maximal independent set per
  connected component, so enumeration and counting factor through the
  components (counting becomes a product of small numbers and never
  materializes the cross product);
* **Bron–Kerbosch with pivoting** on the *complement* graph, expressed
  directly in terms of conflict-graph vicinities so the (dense)
  complement is never materialized.
"""

from __future__ import annotations

from itertools import product as _cartesian_product
from typing import FrozenSet, Iterable, Iterator, List, Sequence, Set

from repro.constraints.conflict_graph import ConflictGraph, build_conflict_graph
from repro.constraints.fd import FunctionalDependency
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row, sorted_rows

Repair = FrozenSet[Row]


def repair_sort_key(repair: Repair) -> str:
    """The canonical listing order for repair collections.

    Every API that materializes repairs (``preferred_repairs``, the
    engines' ``repairs()``, the component caches) sorts by this one key
    so cached and freshly-computed lists always interleave identically.
    """
    return sorted_rows(repair).__repr__()


def _bron_kerbosch_independent(
    graph: ConflictGraph,
    chosen: Set[Row],
    candidates: Set[Row],
    excluded: Set[Row],
    pivoting: bool,
) -> Iterator[Repair]:
    """Enumerate maximal independent sets extending ``chosen``.

    This is Bron–Kerbosch for cliques of the complement graph: two
    vertices may share an independent set iff they are *not* adjacent in
    the conflict graph, so "non-neighbourhood" plays the role the clique
    algorithm gives to the neighbourhood, and the branching set
    ``P - N̄(pivot)`` becomes ``P ∩ vicinity(pivot)``.
    """
    if not candidates and not excluded:
        yield frozenset(chosen)
        return
    if pivoting:
        # Pick the pivot whose complement-neighbourhood covers most of P,
        # i.e. whose conflict-vicinity intersects P least.
        pivot = min(
            candidates | excluded,
            key=lambda vertex: len(candidates & graph.vicinity(vertex)),
        )
        branch_vertices = candidates & graph.vicinity(pivot)
    else:
        branch_vertices = set(candidates)
    for vertex in sorted_rows(branch_vertices):
        non_conflicting = lambda pool: {
            other for other in pool if other not in graph.vicinity(vertex)
        }
        chosen.add(vertex)
        yield from _bron_kerbosch_independent(
            graph,
            chosen,
            non_conflicting(candidates),
            non_conflicting(excluded),
            pivoting,
        )
        chosen.remove(vertex)
        candidates.remove(vertex)
        excluded.add(vertex)


def _component_repairs(
    graph: ConflictGraph, component: FrozenSet[Row], pivoting: bool
) -> List[Repair]:
    return list(
        _bron_kerbosch_independent(
            graph.induced(component), set(), set(component), set(), pivoting
        )
    )


def enumerate_repairs(
    graph: ConflictGraph,
    factor_components: bool = True,
    pivoting: bool = True,
) -> Iterator[Repair]:
    """Yield every repair (maximal independent set) of the conflict graph.

    ``factor_components=False`` and ``pivoting=False`` select the naive
    variants (kept for the enumeration ablation benchmark).
    """
    if not graph.vertices:
        yield frozenset()
        return
    if not factor_components:
        yield from _bron_kerbosch_independent(
            graph, set(), set(graph.vertices), set(), pivoting
        )
        return
    components = graph.connected_components()

    # Singleton components contribute the same vertex to every repair;
    # factoring them out keeps the product odometer over the conflicted
    # components only.  Each conflicted component's repair list is
    # computed exactly once (the recursive formulation re-ran
    # Bron-Kerbosch once per combination of the preceding components,
    # and its per-component recursion overflowed the interpreter stack
    # past ~1000 components).
    fixed: List[Row] = []
    options: List[List[Repair]] = []
    for component in components:
        if len(component) == 1:
            fixed.extend(component)
        else:
            options.append(_component_repairs(graph, component, pivoting))
    base = frozenset(fixed)
    if not options:
        yield base
        return
    for combination in _cartesian_product(*options):
        yield base.union(*combination)


def all_repairs(
    instance: RelationInstance,
    dependencies: Sequence[FunctionalDependency],
) -> List[Repair]:
    """The full repair set ``Rep_F(r)`` as a list of row frozensets."""
    graph = build_conflict_graph(instance, dependencies)
    return list(enumerate_repairs(graph))


def count_repairs(graph: ConflictGraph) -> int:
    """Number of repairs, computed component-wise.

    Counting maximal independent sets is #P-hard in general; within each
    connected component we count by enumeration, but the product across
    components makes structured instances (such as Example 4, with
    ``n`` independent 4-cycles) countable without materializing the
    exponential repair set.
    """
    total = 1
    for component in graph.connected_components():
        if len(component) == 1:
            continue
        total *= sum(
            1
            for _ in _bron_kerbosch_independent(
                graph.induced(component), set(), set(component), set(), True
            )
        )
    return total


def repairs_capped(graph: ConflictGraph, limit: int) -> List[Repair]:
    """At most ``limit`` repairs (guard for accidentally huge spaces)."""
    collected: List[Repair] = []
    for repair in enumerate_repairs(graph):
        collected.append(repair)
        if len(collected) >= limit:
            break
    return collected
