"""C_forest recognition: multi-atom dirty joins that follow key paths.

The fixtures here are the multi-atom shapes the recognizer must accept
(chain of two, chain of three, branching tree, independent trees, clean
mediation into a key) plus the shapes it must reject (non-key join,
join cycle, dirty self-join, clean mediation into a *non*-key).  Since
the compiler landed, recognition is actionable: a sound RA011 replaces
the blocking RA201 and both pushed engines compile the shape — which
the differentials against :class:`CqaEngine` pin, including the
historical clean-atom blind spot (two dirty atoms correlated through a
clean atom used to be misflagged as independent).
"""

import sqlite3

import pytest

from repro.analysis import analyze, recognize_c_forest
from repro.analysis.shapes import classify
from repro.backend import SqlCqaEngine
from repro.constraints.fd import FunctionalDependency
from repro.cqa.engine import CqaEngine
from repro.query.ast import And, Atom, Exists, Var
from repro.query.validate import check_against_schema
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.sqlite_io import save_database

R_SCHEMA = RelationSchema("R", ["K", "A", "B"])
T_SCHEMA = RelationSchema("T", ["A", "C", "D"])
U_SCHEMA = RelationSchema("U", ["C", "E"])
W_SCHEMA = RelationSchema("W", ["B", "F"])
SCHEMA = DatabaseSchema([R_SCHEMA, T_SCHEMA, U_SCHEMA, W_SCHEMA])

#: Every relation dirty, keyed on its first attribute.
FDS = [
    FunctionalDependency.parse("K -> A", "R"),
    FunctionalDependency.parse("A -> C", "T"),
    FunctionalDependency.parse("C -> E", "U"),
    FunctionalDependency.parse("B -> F", "W"),
]

k, a, b, c, d, e, f = (
    Var("k"), Var("a"), Var("b"), Var("c"), Var("d"), Var("e"), Var("f"),
)


def _report(formula, dependencies=FDS):
    checked = check_against_schema(formula, SCHEMA)
    return analyze(SCHEMA, dependencies, checked)


def _codes(report):
    return [diag.full_code for diag in report.diagnostics]


def _database():
    return Database(
        [
            RelationInstance.from_values(
                R_SCHEMA,
                [("k1", "a1", "b1"), ("k1", "a2", "b1"), ("k2", "a1", "b2")],
            ),
            RelationInstance.from_values(
                T_SCHEMA,
                [("a1", "c1", "d1"), ("a1", "c2", "d1"), ("a2", "c1", "d2")],
            ),
            RelationInstance.from_values(
                U_SCHEMA, [("c1", "e1"), ("c1", "e2"), ("c2", "e1")]
            ),
            RelationInstance.from_values(
                W_SCHEMA, [("b1", "f1"), ("b1", "f2")]
            ),
        ]
    )


def _engines(database=None):
    database = database if database is not None else _database()
    connection = sqlite3.connect(":memory:")
    save_database(database, connection, FDS)
    return SqlCqaEngine(connection, FDS), CqaEngine(database, FDS)


CHAIN_OF_TWO = Exists(
    ["k", "a", "b", "c", "d"],
    And([Atom("R", [k, a, b]), Atom("T", [a, c, d])]),
)

CHAIN_OF_THREE = Exists(
    ["k", "a", "b", "c", "d", "e"],
    And([Atom("R", [k, a, b]), Atom("T", [a, c, d]), Atom("U", [c, e])]),
)

BRANCHING_TREE = Exists(
    ["k", "a", "b", "c", "d", "f"],
    And([Atom("R", [k, a, b]), Atom("T", [a, c, d]), Atom("W", [b, f])]),
)

RECOGNIZED = [
    ("chain-of-two", CHAIN_OF_TWO, "T joins R through its key ['A']"),
    ("chain-of-three", CHAIN_OF_THREE, "U joins T through its key ['C']"),
    ("branching-tree", BRANCHING_TREE, "W joins R through its key ['B']"),
]


class TestRecognizedShapes:
    @pytest.mark.parametrize(
        "label,query,phrase",
        RECOGNIZED,
        ids=[case[0] for case in RECOGNIZED],
    )
    def test_ra011_with_explanation(self, label, query, phrase):
        report = _report(query)
        assert "RA011-rewritable-c-forest" in _codes(report), label
        info = next(d for d in report.diagnostics if d.code == "RA011")
        assert phrase in info.message, (label, info.message)
        # Recognition is actionable: a sound forest unblocks both
        # pushed engines (no RA201 rides along).
        assert not report.blocked("sqlite"), label
        assert not report.blocked("prefsql"), label
        assert "RA201-self-join-dirty" not in _codes(report), label
        assert report.plan_kind == "forest", label
        assert report.expected_last_route("sqlite") == "sqlite", label

    @pytest.mark.parametrize(
        "label,query,phrase",
        RECOGNIZED,
        ids=[case[0] for case in RECOGNIZED],
    )
    def test_engine_pushes_as_predicted_and_matches_memory(
        self, label, query, phrase
    ):
        pushed, memory = _engines()
        report = _report(query)
        with pushed:
            got = pushed.answer(query)
            assert pushed.last_route == "sqlite", label
            assert report.expected_last_route("sqlite") == pushed.last_route
        assert got.verdict is memory.answer(query).verdict, label


class TestCleanAtomMediation:
    """The recognizer's historical blind spot: two dirty atoms with no
    *direct* shared variable are still correlated when a clean atom
    chains them — soundness depends on where the chain enters."""

    X_SCHEMA = RelationSchema("X", ["K", "U"])
    C_SCHEMA = RelationSchema("C", ["U", "V"])
    S_SCHEMA = RelationSchema("S", ["Y", "V"])
    MEDIATED_SCHEMA = DatabaseSchema([X_SCHEMA, C_SCHEMA, S_SCHEMA])
    MEDIATED_FDS = [
        FunctionalDependency.parse("K -> U", "X"),
        FunctionalDependency.parse("Y -> V", "S"),
    ]

    #: The confirmed counterexample: C feeds S's NON-key V, so the
    #: repair choice of X (through U) constrains which S-class can
    #: witness — NOT rewritable, must stay blocked.
    UNSOUND = Exists(
        ["k", "u", "y", "v"],
        And(
            [
                Atom("X", [Var("k"), Var("u")]),
                Atom("C", [Var("u"), Var("v")]),
                Atom("S", [Var("y"), Var("v")]),
            ]
        ),
    )

    #: The sound variant: C feeds S's FULL key Y — a key join mediated
    #: by a clean atom, inside C_forest.
    SOUND = Exists(
        ["k", "u", "y", "v"],
        And(
            [
                Atom("X", [Var("k"), Var("u")]),
                Atom("C", [Var("u"), Var("y")]),
                Atom("S", [Var("y"), Var("v")]),
            ]
        ),
    )

    def _mediated_report(self, formula):
        checked = check_against_schema(formula, self.MEDIATED_SCHEMA)
        return analyze(self.MEDIATED_SCHEMA, self.MEDIATED_FDS, checked)

    def _mediated_engines(self, x_rows, c_rows, s_rows):
        database = Database(
            [
                RelationInstance.from_values(self.X_SCHEMA, x_rows),
                RelationInstance.from_values(self.C_SCHEMA, c_rows),
                RelationInstance.from_values(self.S_SCHEMA, s_rows),
            ]
        )
        connection = sqlite3.connect(":memory:")
        save_database(database, connection, self.MEDIATED_FDS)
        return (
            SqlCqaEngine(connection, self.MEDIATED_FDS),
            CqaEngine(database, self.MEDIATED_FDS),
        )

    def test_unsound_shape_stays_blocked(self):
        report = self._mediated_report(self.UNSOUND)
        assert "RA011-rewritable-c-forest" not in _codes(report)
        assert report.blocking("sqlite")[0].code == "RA201"

    def test_unsound_shape_routes_to_fallback_and_agrees(self):
        # The ISSUE's 4-repair instance: certain is UNDETERMINED; a
        # compiled plan would wrongly certify it.
        pushed, memory = self._mediated_engines(
            x_rows=[("k1", "u1"), ("k1", "u2")],
            c_rows=[("u1", "v1"), ("u2", "v2")],
            s_rows=[("y1", "v1"), ("y1", "v2")],
        )
        report = self._mediated_report(self.UNSOUND)
        with pushed:
            got = pushed.answer(self.UNSOUND)
            assert pushed.last_route.startswith("fallback:")
            assert report.expected_last_route("sqlite") == pushed.last_route
        reference = memory.answer(self.UNSOUND)
        assert got.verdict is reference.verdict
        assert reference.verdict.value == "undetermined"

    def test_sound_variant_is_recognized_through_the_clean_atom(self):
        report = self._mediated_report(self.SOUND)
        assert "RA011-rewritable-c-forest" in _codes(report)
        info = next(d for d in report.diagnostics if d.code == "RA011")
        assert "S joins C through its key ['Y']" in info.message
        assert not report.blocked("sqlite")

    def test_sound_variant_pushes_and_agrees(self):
        cases = [
            # The witness chain must survive every X-repair.
            (
                [("k1", "u1"), ("k1", "u2")],
                [("u1", "y1"), ("u2", "y1")],
                [("y1", "v1")],
            ),
            # One X-class reaches an empty S-group: not certain.
            (
                [("k1", "u1"), ("k1", "u2")],
                [("u1", "y1"), ("u2", "y2")],
                [("y1", "v1")],
            ),
            # Both classes reach keyed S-groups whose classes witness.
            (
                [("k1", "u1"), ("k1", "u2")],
                [("u1", "y1"), ("u2", "y2")],
                [("y1", "v1"), ("y2", "v2"), ("y2", "v3")],
            ),
        ]
        for x_rows, c_rows, s_rows in cases:
            pushed, memory = self._mediated_engines(x_rows, c_rows, s_rows)
            with pushed:
                got = pushed.answer(self.SOUND)
                assert pushed.last_route == "sqlite", (x_rows, c_rows, s_rows)
            reference = memory.answer(self.SOUND)
            assert got.verdict is reference.verdict, (x_rows, c_rows, s_rows)


class TestRejectedShapes:
    def test_non_key_join_is_not_recognized(self):
        # T joins R through D (a non-key position of T).
        query = Exists(
            ["k", "a", "b", "x", "c"],
            And([Atom("R", [k, a, b]), Atom("T", [Var("x"), c, a])]),
        )
        report = _report(query)
        assert report.blocking("sqlite")[0].code == "RA201"
        assert "RA011-rewritable-c-forest" not in _codes(report)

    def test_shared_variable_outside_key_is_not_recognized(self):
        # The key of T is covered, but a second shared variable lands in
        # a non-key position — repair choices would correlate.
        query = Exists(
            ["k", "a", "b", "d"],
            And([Atom("R", [k, a, b]), Atom("T", [a, b, d])]),
        )
        report = _report(query)
        assert report.blocking("sqlite")[0].code == "RA201"
        assert "RA011-rewritable-c-forest" not in _codes(report)

    def test_dirty_self_join_is_not_recognized(self):
        query = Exists(
            ["k", "a", "b", "a2", "b2"],
            And([Atom("R", [k, a, b]), Atom("R", [k, Var("a2"), Var("b2")])]),
        )
        report = _report(query)
        assert report.blocking("sqlite")[0].code == "RA201"
        assert "RA011-rewritable-c-forest" not in _codes(report)

    def test_join_cycle_is_not_recognized(self):
        # R-T share a; T-U share c; U-R share k: a cycle, not a forest.
        query = Exists(
            ["k", "a", "b", "c", "d"],
            And(
                [
                    Atom("R", [k, a, b]),
                    Atom("T", [a, c, d]),
                    Atom("U", [c, k]),
                ]
            ),
        )
        report = _report(query)
        assert report.blocking("sqlite")[0].code == "RA201"
        assert "RA011-rewritable-c-forest" not in _codes(report)

    def test_clean_query_has_no_recognition(self):
        query = Exists(["z"], Atom("R", [k, a, Var("z")]))
        classification = classify(
            check_against_schema(query, SCHEMA), SCHEMA, FDS
        )
        assert recognize_c_forest(classification, SCHEMA) is None


class TestConstantsInKeys:
    def test_constant_key_position_counts_as_covered(self):
        # T's key position holds a constant and no variables are
        # shared: two independent trees whose certifications factor.
        query = Exists(
            ["k", "a", "b", "c", "d"],
            And([Atom("R", [k, a, b]), Atom("T", ["a1", c, d])]),
        )
        report = _report(query)
        assert "RA011-rewritable-c-forest" in _codes(report)
        info = next(d for d in report.diagnostics if d.code == "RA011")
        # The isolated case has its own phrasing (it used to render the
        # contradictory "follows key paths: isolated dirty atoms").
        assert "independent dirty atoms R, T" in info.message
        assert "cross product" in info.message
        assert "follows key paths" not in info.message
        assert not report.blocked("sqlite")

    def test_independent_trees_push_and_agree(self):
        query = Exists(
            ["k", "a", "b", "c", "d"],
            And([Atom("R", [k, a, b]), Atom("T", ["a1", c, d])]),
        )
        pushed, memory = _engines()
        with pushed:
            got = pushed.answer(query)
            assert pushed.last_route == "sqlite"
        assert got.verdict is memory.answer(query).verdict
