"""Batched request brokering with dedup, routing and answer memoization.

A :class:`RequestBroker` fronts one or more registered databases, each
served by a mutable :class:`~repro.incremental.engine.
IncrementalCqaEngine` and (optionally) a lazily refreshed SQLite mirror.
Batches of :class:`Request` objects are served priority-first; identical
in-flight work — same database state, query, family, answer columns —
is computed once and shared across the batch, and results are memoized
in a bounded, content-keyed :class:`AnswerCache`.

Routing picks the cheapest capable engine per query, reusing the
rewritability analysis behind :attr:`SqlCqaEngine.last_route`:

1. **sqlite pushdown** — no active priority edges and the query is
   rewritable: one SQL statement, no repair materialization;
2. **witness index** — the incremental engine's covering check for
   conjunctive queries (no repair cross-product);
3. **indexed in-memory** — per-repair streaming with hash-indexed join
   plans, optionally sharded across the process pool of
   :mod:`repro.service.parallel`.

Cache keys embed the instance's *component fingerprint* — the frozenset
of conflict-graph component vertex sets — so an entry can only ever hit
the exact instance state it was computed on; engine updates additionally
invalidate component-wise: every cached answer that depended on a
touched component is evicted eagerly (untouched components keep their
entries alive for states that revisit them).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.backend.mirror import SqliteMirror
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.answers import ClosedAnswer, OpenAnswers
from repro.exceptions import QueryError
from repro.incremental.engine import IncrementalCqaEngine
from repro.priorities.priority import PriorityEdge
from repro.query.ast import Formula, relations_of
from repro.relational.rows import Row

Outcome = Union[ClosedAnswer, OpenAnswers]

#: A component fingerprint: the vertex set of one connected component.
Component = FrozenSet[Row]


@dataclass(frozen=True)
class Request:
    """One query request in a batch.

    ``query`` is a first-order query (string or AST); ``variables``
    fixes the answer columns of open queries; ``database`` names a
    registered database (``None`` = the broker default); ``priority``
    orders service within a batch (higher first, ties keep submission
    order); ``tag`` is an opaque client correlation id echoed back on
    the result.
    """

    query: Union[str, Formula]
    family: Optional[Family] = None
    variables: Optional[Tuple[str, ...]] = None
    database: Optional[str] = None
    priority: int = 0
    tag: Optional[str] = None


@dataclass(frozen=True)
class BrokerResult:
    """A served request: the answer plus routing provenance."""

    request: Request
    outcome: Outcome
    database: str
    #: Which engine served it: ``"sqlite"`` or ``"incremental"``.
    engine: str
    #: Evaluation route (``"sqlite"`` / ``"witness-index"`` /
    #: ``"indexed"`` / ``"naive"``) — identical for cache hits.
    route: str
    #: Served from the answer cache (a previous batch computed it).
    cached: bool = False
    #: Deduplicated against an identical request in the same batch.
    shared: bool = False


@dataclass
class _CacheSlot:
    outcome: Outcome
    engine: str
    route: str
    components: FrozenSet[Component]


class AnswerCache:
    """Bounded, content-keyed, thread-safe memo of broker answers.

    Keys embed the full component fingerprint of the instance state, so
    a lookup can only hit an answer computed on bit-identical data.
    ``invalidate_components`` evicts every entry (of one database) that
    recorded a component intersecting the touched rows — the entries an
    update actually outdated — while entries resting on untouched
    components survive for instance states that return.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, _CacheSlot]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple) -> Optional[_CacheSlot]:
        with self._lock:
            slot = self._entries.get(key)
            if slot is None:
                self.misses += 1
            else:
                self.hits += 1
            return slot

    def put(self, key: Tuple, slot: _CacheSlot) -> None:
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self.evicted += 1
            self._entries[key] = slot

    def invalidate_components(
        self, database: str, touched: Iterable[Row]
    ) -> int:
        """Evict entries of ``database`` depending on any touched row."""
        touched = frozenset(touched)
        if not touched:
            return 0
        with self._lock:
            stale = [
                key
                for key, slot in self._entries.items()
                if key[0] == database
                and any(component & touched for component in slot.components)
            ]
            for key in stale:
                del self._entries[key]
            self.evicted += len(stale)
            return len(stale)

    def invalidate_database(self, database: str) -> int:
        """Evict every entry of one database (priority re-declarations)."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == database]
            for key in stale:
                del self._entries[key]
            self.evicted += len(stale)
            return len(stale)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evicted": self.evicted,
            }


@dataclass
class _Entry:
    """One registered database: engines plus a per-database lock.

    The lock serializes engine access — the engines' internal caches
    (component repairs, witness indexes, evaluation contexts) are built
    for single-threaded use, so the threaded front end must not run two
    queries of one database concurrently.
    """

    name: str
    engine: IncrementalCqaEngine
    mirror: Optional[SqliteMirror]
    family: Family
    lock: threading.Lock = field(default_factory=threading.Lock)
    queries: int = 0
    updates: int = 0
    #: Cached component fingerprint of the current instance state;
    #: recomputing it per request would cost O(V log V) on the hot path.
    fingerprint: Optional[FrozenSet[Component]] = None


class RequestBroker:
    """Routes, deduplicates and memoizes batched CQA requests."""

    def __init__(
        self,
        cache_entries: int = 1024,
        parallel: Optional[int] = None,
    ) -> None:
        self._entries: Dict[str, _Entry] = {}
        self._default: Optional[str] = None
        self._lock = threading.Lock()
        self.cache = AnswerCache(cache_entries)
        #: Worker count forwarded to the engines' enumeration paths
        #: (``None`` = serial, ``0`` = hardware width).
        self.parallel = parallel
        self.deduplicated = 0
        self.batches = 0

    # Registration -------------------------------------------------------------

    def register(
        self,
        name: str,
        data,
        dependencies: Sequence[FunctionalDependency],
        priority: Iterable[PriorityEdge] = (),
        family: Family = Family.REP,
        sqlite_pushdown: bool = True,
        naive: bool = False,
    ) -> str:
        """Register a database under ``name``; the first becomes default."""
        with self._lock:
            if name in self._entries:
                raise QueryError(f"database {name!r} is already registered")
            engine = IncrementalCqaEngine(
                data, dependencies, priority, family, naive=naive
            )
            mirror = (
                SqliteMirror(tuple(dependencies), family)
                if sqlite_pushdown and not naive
                else None
            )
            self._entries[name] = _Entry(name, engine, mirror, family)
            if self._default is None:
                self._default = name
        return name

    def _entry(self, database: Optional[str]) -> _Entry:
        name = database or self._default
        if name is None:
            raise QueryError("no database registered with the broker")
        entry = self._entries.get(name)
        if entry is None:
            raise QueryError(f"unknown database {name!r}")
        return entry

    def engine(self, database: Optional[str] = None) -> IncrementalCqaEngine:
        """The mutable engine behind one registered database."""
        return self._entry(database).engine

    @property
    def databases(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    # Updates ------------------------------------------------------------------

    def _after_update(self, entry: _Entry, delta) -> None:
        entry.updates += 1
        entry.fingerprint = None
        if entry.mirror is not None:
            entry.mirror.mark_dirty()
        touched = set(delta.added_vertices) | set(delta.removed_vertices)
        for component in delta.touched_components:
            touched |= component
        self.cache.invalidate_components(entry.name, touched)

    def insert(self, row: Row, database: Optional[str] = None):
        """Insert a tuple; invalidates dependent cached answers."""
        entry = self._entry(database)
        with entry.lock:
            delta = entry.engine.insert(row)
            self._after_update(entry, delta)
        return delta

    def delete(self, row: Row, database: Optional[str] = None):
        """Delete a tuple; invalidates dependent cached answers."""
        entry = self._entry(database)
        with entry.lock:
            delta = entry.engine.delete(row)
            self._after_update(entry, delta)
        return delta

    def prefer(
        self, winner: Row, loser: Row, database: Optional[str] = None
    ) -> None:
        """Declare a priority edge (conservatively drops the db's cache)."""
        entry = self._entry(database)
        with entry.lock:
            entry.engine.prefer(winner, loser)
            entry.updates += 1
            self.cache.invalidate_database(entry.name)

    # Serving ------------------------------------------------------------------

    def _normalize(
        self, entry: _Entry, request: Request
    ) -> Tuple[Formula, Tuple[str, ...], Family]:
        formula = entry.engine._to_formula(request.query)
        family = request.family or entry.family
        if request.variables is not None:
            variables = tuple(request.variables)
        elif formula.is_closed:
            variables = ()
        else:
            variables = tuple(sorted(formula.free_variables()))
        return formula, variables, family

    def _fingerprint(self, entry: _Entry) -> FrozenSet[Component]:
        if entry.fingerprint is None:
            entry.fingerprint = frozenset(
                entry.engine.graph.connected_components()
            )
        return entry.fingerprint

    def _execute(
        self,
        entry: _Entry,
        formula: Formula,
        variables: Tuple[str, ...],
        family: Family,
    ) -> Tuple[Outcome, str, str]:
        """Run one unit of work on the cheapest capable engine."""
        entry.queries += 1
        if entry.mirror is not None and not entry.engine.active_priority_edges():
            # Lazy snapshot: assembling the Database is O(instance), so
            # hand the mirror a supplier it only calls when dirty.
            sql_engine = entry.mirror.engine_for(entry.engine.current_database)
            if sql_engine.explain(formula, variables or None).pushed:
                if formula.is_closed and not variables:
                    outcome: Outcome = sql_engine.answer(formula, family)
                else:
                    outcome = sql_engine.certain_answers(
                        formula, variables, family
                    )
                return outcome, "sqlite", "sqlite"
        if formula.is_closed and not variables:
            outcome = entry.engine.answer(formula, family, self.parallel)
        else:
            outcome = entry.engine.certain_answers(
                formula, variables, family, self.parallel
            )
        return outcome, "incremental", outcome.route or "indexed"

    def submit(self, requests: Sequence[Request]) -> List[BrokerResult]:
        """Serve a batch: priority order, in-flight dedup, memoization.

        Results come back in submission order regardless of service
        order.  Identical work units (same database state, formula,
        answer columns and family) are computed once per batch; repeats
        across batches hit the answer cache and report the original
        route.
        """
        self.batches += 1
        order = sorted(
            range(len(requests)),
            key=lambda position: (-requests[position].priority, position),
        )
        results: List[Optional[BrokerResult]] = [None] * len(requests)
        in_flight: Dict[Tuple, Tuple[Outcome, str, str]] = {}
        for position in order:
            request = requests[position]
            entry = self._entry(request.database)
            with entry.lock:
                formula, variables, family = self._normalize(entry, request)
                fingerprint = self._fingerprint(entry)
                key = (entry.name, fingerprint, formula, variables, family)
                if key in in_flight:
                    outcome, engine_label, route = in_flight[key]
                    self.deduplicated += 1
                    results[position] = BrokerResult(
                        request, outcome, entry.name, engine_label, route,
                        shared=True,
                    )
                    continue
                slot = self.cache.get(key)
                if slot is not None:
                    in_flight[key] = (slot.outcome, slot.engine, slot.route)
                    results[position] = BrokerResult(
                        request, slot.outcome, entry.name, slot.engine,
                        slot.route, cached=True,
                    )
                    continue
                outcome, engine_label, route = self._execute(
                    entry, formula, variables, family
                )
                in_flight[key] = (outcome, engine_label, route)
                # Dependencies drive eviction only (lookups are content
                # keyed), so they can be narrowed to the components of
                # the relations the query mentions: an update confined
                # to other relations leaves this entry alive for
                # instance states that return.
                mentioned = relations_of(formula)
                depends_on = frozenset(
                    component
                    for component in fingerprint
                    if any(row.relation in mentioned for row in component)
                )
                self.cache.put(
                    key, _CacheSlot(outcome, engine_label, route, depends_on)
                )
                results[position] = BrokerResult(
                    request, outcome, entry.name, engine_label, route
                )
        return [result for result in results if result is not None]

    def query(
        self,
        query: Union[str, Formula],
        family: Optional[Family] = None,
        variables: Optional[Tuple[str, ...]] = None,
        database: Optional[str] = None,
    ) -> BrokerResult:
        """Serve a single request (a batch of one)."""
        return self.submit(
            [Request(query, family, variables, database)]
        )[0]

    # Diagnostics --------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Broker-level counters plus per-database engine summaries."""
        return {
            "databases": {
                name: {
                    "queries": entry.queries,
                    "updates": entry.updates,
                    "sqlite_mirror": entry.mirror is not None,
                    "engine": entry.engine.summary(),
                }
                for name, entry in self._entries.items()
            },
            "batches": self.batches,
            "deduplicated": self.deduplicated,
            "answer_cache": self.cache.stats(),
            "parallel": self.parallel,
        }

    def close(self) -> None:
        """Release SQLite mirrors (engines are plain memory)."""
        for entry in self._entries.values():
            if entry.mirror is not None:
                entry.mirror.close()

    def __enter__(self) -> "RequestBroker":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
