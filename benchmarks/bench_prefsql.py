"""Benchmark: preference-aware SQL pushdown vs in-memory prioritized CQA.

Scenario (the prioritized serving workload prefsql unlocks): a relation
``R(K, A, B)`` with the dependency ``K -> A`` persisted to a SQLite
file, ``groups`` three-class conflict groups plus a growing body of
consistent rows, and a *declared acyclic priority*: even groups carry a
total chain ``A=2 ≻ A=1 ≻ A=0`` (winnow resolves them to one class),
odd groups orient only ``A=1 ≻ A=0`` (two surviving classes — the
doubly nested certification must reason over both).  The open query
asks for the certain ``(K, A)`` pairs with ``A >= 1`` under the
semi-global family ``S``.

Two measurements per instance size, both end-to-end **from the file**:

* **prefsql** — construct a :class:`PrefSqlCqaEngine` and run
  ``certain_answers``; the oriented edges are materialized into side
  tables, the per-family survivor classes are derived by SQL winnow
  passes, and the certification runs as one self-join statement —
  cost near-independent of the ``3^groups`` repair count.
* **memory** — ``load_database`` + :class:`CqaEngine` with the same
  priority; every repair is enumerated, filtered by the S-optimality
  check, and evaluated.

Answers are asserted identical at every size, the route is asserted to
be ``"prefsql"``, and the ``>=10x`` speedup criterion is enforced.
The final row reports a prefsql-only size the in-memory engine is not
asked to touch.

Run directly (``python benchmarks/bench_prefsql.py``); ``--smoke`` runs
a seconds-long correctness-focused configuration for CI.
"""

from __future__ import annotations

import os
import random
import statistics
import sys
import tempfile
import time
from typing import List, Tuple

if not __package__:
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks._cli import apply_seed, bench_parser, bench_seed, emit_result

from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.prefsql import PrefSqlCqaEngine
from repro.query.ast import And, Atom, Comparison, Exists, Var
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema
from repro.relational.sqlite_io import load_database, save_database

SCHEMA = RelationSchema("R", ["K", "A:number", "B"])
FDS = [FunctionalDependency.parse("K -> A", "R")]
FAMILY = Family.SEMI_GLOBAL

#: EXISTS b . R(x, y, b) AND y >= 1 — certain (K, A) pairs with A >= 1.
QUERY = Exists(
    ["b"],
    And([Atom("R", [Var("x"), Var("y"), Var("b")]), Comparison(">=", Var("y"), 1)]),
)
VARIABLES = ("x", "y")

# --- C_forest tier: BOTH relations dirty, joined through S's key -----------
S_SCHEMA = RelationSchema("S", ["A:number", "C"])
FOREST_FDS = FDS + [FunctionalDependency.parse("A -> C", "S")]

#: EXISTS b . R(x, y, b) AND S(y, c) — certain (K, A, C); compiled as a
#: two-atom C_forest over the per-family class-survivor tables.
FOREST_QUERY = Exists(
    ["b"],
    And(
        [
            Atom("R", [Var("x"), Var("y"), Var("b")]),
            Atom("S", [Var("y"), Var("c")]),
        ]
    ),
)
FOREST_VARIABLES = ("x", "y", "c")


def build_workload(
    groups: int, clean_rows: int
) -> Tuple[Database, List[Tuple[Row, Row]]]:
    """``groups`` three-class conflict groups, half totally ordered,
    plus ``clean_rows`` consistent filler; returns (database, priority)."""
    values: List[Tuple[str, int, str]] = []
    priority: List[Tuple[Row, Row]] = []
    for index in range(groups):
        key = f"k{index}"
        rows = [Row(SCHEMA, (key, level, f"p{index}")) for level in range(3)]
        values.extend(tuple(row.values) for row in rows)
        priority.append((rows[1], rows[0]))  # A=1 ≻ A=0 everywhere
        if index % 2 == 0:  # total chain on even groups
            priority.append((rows[2], rows[1]))
            priority.append((rows[2], rows[0]))
    for index in range(clean_rows):
        values.append((f"c{index}", 1 + index % 50, f"q{index}"))
    random.Random(bench_seed()).shuffle(values)
    return (
        Database([RelationInstance.from_values(SCHEMA, values)]),
        priority,
    )


def build_forest_workload(
    groups: int, clean_rows: int
) -> Tuple[Database, List[Tuple[Row, Row]]]:
    """The R workload of :func:`build_workload` plus a dirty S keyed on
    ``A``: groups ``A=1`` and ``A=2`` hold two classes, ``A=1`` carries
    a priority edge (winnowed), ``A=2`` stays disputed."""
    database, priority = build_workload(groups, clean_rows)
    s_values: List[Tuple[int, str]] = [(a, f"s{a}") for a in range(51)]
    s_alt = [Row(S_SCHEMA, (1, "alt1")), Row(S_SCHEMA, (2, "alt2"))]
    s_values.extend(tuple(row.values) for row in s_alt)
    priority = list(priority)
    priority.append((Row(S_SCHEMA, (1, "s1")), s_alt[0]))
    random.Random(bench_seed()).shuffle(s_values)
    return (
        Database(
            list(database)
            + [RelationInstance.from_values(S_SCHEMA, s_values)]
        ),
        priority,
    )


def persist(database: Database, directory: str, tag: str, fds=None) -> str:
    path = os.path.join(directory, f"bench_prefsql_{tag}.sqlite")
    save_database(database, path, FDS if fds is None else fds)
    return path


def time_prefsql(path: str, priority, repeats: int, fds=None,
                 query=QUERY, variables=VARIABLES):
    """End-to-end engine construction + certain answers, from the file."""
    samples, result = [], None
    for _ in range(repeats):
        start = time.perf_counter()
        with PrefSqlCqaEngine(
            path, FDS if fds is None else fds, priority, FAMILY
        ) as engine:
            result = engine.certain_answers(query, variables)
            route = engine.last_route
        samples.append(time.perf_counter() - start)
    assert route == "prefsql", f"expected prefsql route, got {route!r}"
    return statistics.median(samples), result


def time_memory(path: str, priority, fds=None, query=QUERY,
                variables=VARIABLES):
    """End-to-end load + engine + prioritized repair streaming."""
    start = time.perf_counter()
    database = load_database(path)
    engine = CqaEngine(database, FDS if fds is None else fds, priority, FAMILY)
    result = engine.certain_answers(query, variables)
    return time.perf_counter() - start, result


def main(argv=None) -> int:
    parser = bench_parser(__doc__)
    parser.add_argument("--groups", type=int, default=5,
                        help="three-class conflict groups (3^groups repairs)")
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[200, 500, 1000],
                        help="consistent-row counts compared on both engines")
    parser.add_argument("--prefsql-only-size", type=int, default=100_000,
                        help="extra size measured on prefsql alone "
                             "(0 disables)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="prefsql timing repeats (median reported)")
    parser.add_argument("--no-assert", action="store_true",
                        help="report without enforcing the >=10x criterion")
    args = parser.parse_args(argv)
    apply_seed(args)

    if args.smoke:
        args.groups, args.sizes, args.prefsql_only_size = 4, [100, 300], 5000
        args.repeats = 3

    repairs = 3 ** args.groups
    print(f"relation R(K, A, B), fd K -> A, {args.groups} three-class groups "
          f"({repairs} repairs), family {FAMILY}, mixed total/partial "
          "priority, query: certain (K, A) with A >= 1")

    speedups: List[float] = []
    measurements: List[dict] = []
    forest_speedups: List[float] = []
    forest_measurements: List[dict] = []
    with tempfile.TemporaryDirectory() as directory:
        for clean_rows in args.sizes:
            database, priority = build_workload(args.groups, clean_rows)
            total = clean_rows + 3 * args.groups
            path = persist(database, directory, str(clean_rows))
            prefsql_s, prefsql_result = time_prefsql(
                path, priority, args.repeats
            )
            memory_s, memory_result = time_memory(path, priority)
            assert prefsql_result.certain == memory_result.certain, (
                f"certain answers diverged at size {total}: "
                f"{sorted(prefsql_result.certain)[:5]}... vs "
                f"{sorted(memory_result.certain)[:5]}..."
            )
            assert prefsql_result.possible == memory_result.possible, (
                f"possible answers diverged at size {total}"
            )
            speedup = memory_s / prefsql_s
            speedups.append(speedup)
            measurements.append(
                {
                    "rows": total,
                    "memory_s": round(memory_s, 6),
                    "prefsql_s": round(prefsql_s, 6),
                    "speedup": round(speedup, 2),
                }
            )
            print(f"[{total:>7} rows] memory: {memory_s * 1000:9.1f} ms | "
                  f"prefsql: {prefsql_s * 1000:7.2f} ms | "
                  f"speedup: {speedup:7.1f}x | "
                  f"certain answers: {len(prefsql_result.certain)}")

        if args.prefsql_only_size:
            clean_rows = args.prefsql_only_size
            database, priority = build_workload(args.groups, clean_rows)
            total = clean_rows + 3 * args.groups
            path = persist(database, directory, "xl")
            prefsql_s, prefsql_result = time_prefsql(
                path, priority, max(2, args.repeats // 2)
            )
            measurements.append(
                {"rows": total, "prefsql_s": round(prefsql_s, 6)}
            )
            print(f"[{total:>7} rows] memory:   (not attempted) | "
                  f"prefsql: {prefsql_s * 1000:7.2f} ms | "
                  f"certain answers: {len(prefsql_result.certain)}")

        # C_forest tier: the key join with BOTH relations dirty — the
        # recursive certification runs over class-survivor tables.
        print(f"\nC_forest tier: R(K,A,B) fd K -> A joined with S(A,C) "
              f"fd A -> C through S's key, prioritized on both sides, "
              "query: certain (K, A, C)")
        for clean_rows in args.sizes:
            database, priority = build_forest_workload(args.groups, clean_rows)
            total = clean_rows + 3 * args.groups + 53
            path = persist(database, directory,
                           f"forest_{clean_rows}", FOREST_FDS)
            prefsql_s, prefsql_result = time_prefsql(
                path, priority, args.repeats, FOREST_FDS,
                FOREST_QUERY, FOREST_VARIABLES,
            )
            memory_s, memory_result = time_memory(
                path, priority, FOREST_FDS, FOREST_QUERY, FOREST_VARIABLES
            )
            assert prefsql_result.certain == memory_result.certain, (
                f"forest certain answers diverged at size {total}"
            )
            assert prefsql_result.possible == memory_result.possible, (
                f"forest possible answers diverged at size {total}"
            )
            speedup = memory_s / prefsql_s
            forest_speedups.append(speedup)
            forest_measurements.append(
                {
                    "rows": total,
                    "memory_s": round(memory_s, 6),
                    "prefsql_s": round(prefsql_s, 6),
                    "speedup": round(speedup, 2),
                }
            )
            print(f"[{total:>7} rows] memory: {memory_s * 1000:9.1f} ms | "
                  f"prefsql: {prefsql_s * 1000:7.2f} ms | "
                  f"speedup: {speedup:7.1f}x | "
                  f"certain answers: {len(prefsql_result.certain)}")

    emit_result(
        __file__,
        {
            "groups": args.groups,
            "family": str(FAMILY),
            "measurements": measurements,
            "best_speedup": round(max(speedups), 2) if speedups else None,
            "forest_measurements": forest_measurements,
            "forest_best_speedup": (
                round(max(forest_speedups), 2) if forest_speedups else None
            ),
        },
    )
    if not args.no_assert and not args.smoke:
        best = max(speedups)
        assert best >= 10, (
            f"best prefsql speedup {best:.1f}x below the 10x criterion"
        )
        forest_best = max(forest_speedups)
        assert forest_best >= 10, (
            f"best C_forest prefsql speedup {forest_best:.1f}x below "
            "the 10x criterion"
        )
        print(f"criterion met: >={best:.0f}x single-atom and "
              f">={forest_best:.0f}x C_forest speedup over the prioritized "
              "in-memory route with identical answers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
