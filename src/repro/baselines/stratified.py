"""Stratified preferred subtheories (Brewka [4]).

The related-work baseline where priority is expressed by *stratifying*
the tuples (stratum 0 = most reliable).  A preferred subtheory is built
level by level: take any maximal conflict-free extension within stratum
0, then extend maximally within stratum 1, and so on.  The paper notes
this construction is "analogous to C-repairs" but — being stratum-based
— forces the priority to be *transitive on conflicts*, a restriction
the conflict-graph orientations of the main framework deliberately drop.

:func:`stratified_priority` exposes the induced orientation so tests can
confirm the correspondence with ``C-Rep`` on stratified inputs.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, List, Sequence, Set

from repro.constraints.conflict_graph import ConflictGraph
from repro.priorities.priority import Priority
from repro.relational.rows import Row, sorted_rows
from repro.repairs.enumerate import enumerate_repairs


def stratified_priority(
    graph: ConflictGraph, stratum_of: Callable[[Row], int]
) -> Priority:
    """The conflict orientation induced by strata (lower stratum wins)."""
    edges = []
    for pair in graph.edges():
        first, second = tuple(pair)
        if stratum_of(first) < stratum_of(second):
            edges.append((first, second))
        elif stratum_of(second) < stratum_of(first):
            edges.append((second, first))
    return Priority(graph, edges)


def preferred_subtheories(
    graph: ConflictGraph, stratum_of: Callable[[Row], int]
) -> List[FrozenSet[Row]]:
    """All preferred subtheories of the stratified instance.

    Level-by-level maximal extension: at each stratum, every maximal
    independent extension of the part chosen so far branches the
    search.  The results are repairs of the full instance.
    """
    strata: Dict[int, List[Row]] = {}
    for row in graph.vertices:
        strata.setdefault(stratum_of(row), []).append(row)
    levels = sorted(strata)

    results: Set[FrozenSet[Row]] = set()

    def extend(level_index: int, chosen: FrozenSet[Row]) -> None:
        if level_index == len(levels):
            results.add(chosen)
            return
        candidates = {
            row
            for row in strata[levels[level_index]]
            if not graph.neighbours(row) & chosen
        }
        # Every maximal independent set within the compatible candidates
        # is a legal way to extend this level.
        sub = graph.induced(candidates)
        for extension in enumerate_repairs(sub):
            extend(level_index + 1, chosen | extension)

    extend(0, frozenset())
    return sorted(results, key=lambda repair: sorted_rows(repair).__repr__())
