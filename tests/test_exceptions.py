"""Tests of the exception hierarchy contract."""

import pytest

from repro import exceptions


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            exceptions.SchemaError,
            exceptions.TypeMismatchError,
            exceptions.UnknownAttributeError,
            exceptions.UnknownRelationError,
            exceptions.QueryError,
            exceptions.QuerySyntaxError,
            exceptions.QueryBindingError,
            exceptions.ConstraintError,
            exceptions.ConstraintSyntaxError,
            exceptions.PriorityError,
            exceptions.CyclicPriorityError,
            exceptions.NonConflictingPriorityError,
            exceptions.CleaningError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, exceptions.ReproError)

    def test_specific_parentage(self):
        assert issubclass(exceptions.TypeMismatchError, exceptions.SchemaError)
        assert issubclass(exceptions.QuerySyntaxError, exceptions.QueryError)
        assert issubclass(exceptions.CyclicPriorityError, exceptions.PriorityError)
        assert issubclass(
            exceptions.ConstraintSyntaxError, exceptions.ConstraintError
        )

    def test_catch_all_in_practice(self):
        """A caller catching ReproError sees library errors, not bugs."""
        from repro.query.parser import parse_query

        with pytest.raises(exceptions.ReproError):
            parse_query("NOT (")
