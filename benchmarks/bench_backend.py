"""Benchmark: SQLite-pushed certain answers vs in-memory repair streaming.

Scenario (the file-backed serving workload the backend targets): a
relation ``R(K, A, B)`` with the dependency ``K -> A`` persisted to a
SQLite file — ``pairs`` two-class conflict groups (so ``2^pairs``
repairs) plus a growing body of consistent rows — and the rewritable
open query *"which (K, A) with A >= 1 are certain?"*.

Two measurements per instance size, both end-to-end **from the file**:

* **sqlite** — construct a :class:`SqlCqaEngine` on the file and run
  ``certain_answers``; the ConQuer-style rewriting executes as one
  indexed self-join query inside SQLite, so cost is near-independent of
  the repair count and sublinear-ish in rows (index scans).
* **memory** — ``load_database`` + :class:`CqaEngine` +
  ``certain_answers``; every one of the ``2^pairs`` repairs is
  materialized and the query evaluated against each, so cost is
  ``O(2^pairs * rows)``.

Answers are asserted identical at every size.  The final row also
reports a sqlite-only size the in-memory engine is not asked to touch.

Run directly (``python benchmarks/bench_backend.py``); ``--smoke`` runs
a seconds-long correctness-focused configuration for CI.
"""

from __future__ import annotations

import os
import random
import statistics
import sys
import tempfile
import time
from typing import List, Tuple

if not __package__:
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks._cli import apply_seed, bench_parser, bench_seed, emit_result

from repro.backend import SqlCqaEngine
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.query.ast import And, Atom, Comparison, Exists, Var
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.relational.sqlite_io import load_database, save_database

SCHEMA = RelationSchema("R", ["K", "A:number", "B"])
FDS = [FunctionalDependency.parse("K -> A", "R")]

#: EXISTS b . R(x, y, b) AND y >= 1  — certain (K, A) pairs with A >= 1.
QUERY = Exists(
    ["b"],
    And([Atom("R", [Var("x"), Var("y"), Var("b")]), Comparison(">=", Var("y"), 1)]),
)
VARIABLES = ("x", "y")

# --- C_forest tier: BOTH relations dirty, joined through S's key -----------
S_SCHEMA = RelationSchema("S", ["A:number", "C"])
FOREST_FDS = FDS + [FunctionalDependency.parse("A -> C", "S")]

#: EXISTS b . R(x, y, b) AND S(y, c) — certain (K, A, C) across the key join;
#: compiled as a two-atom C_forest (recursive NOT EXISTS certification).
FOREST_QUERY = Exists(
    ["b"],
    And(
        [
            Atom("R", [Var("x"), Var("y"), Var("b")]),
            Atom("S", [Var("y"), Var("c")]),
        ]
    ),
)
FOREST_VARIABLES = ("x", "y", "c")


def build_database(pairs: int, clean_rows: int) -> Database:
    """``pairs`` two-class conflict groups plus ``clean_rows`` filler.

    Insertion order is shuffled under the uniform ``--seed`` so the
    persisted table (and hence SQLite's scan order) varies between runs.
    """
    values: List[Tuple[str, int, str]] = []
    for index in range(pairs):
        values.append((f"k{index}", 0, f"p{index}"))
        values.append((f"k{index}", 1, f"p{index}"))
    for index in range(clean_rows):
        values.append((f"c{index}", 1 + index % 50, f"q{index}"))
    random.Random(bench_seed()).shuffle(values)
    return Database([RelationInstance.from_values(SCHEMA, values)])


def build_forest_database(pairs: int, clean_rows: int) -> Database:
    """R as in :func:`build_database` plus a dirty S keyed on ``A``.

    S covers every ``A`` value the R side mentions; the groups ``A=0``
    and ``A=1`` (the conflict classifiers) hold two classes each, so the
    forest certification must reason about both sides' repair choices.
    """
    r_values: List[Tuple[str, int, str]] = []
    for index in range(pairs):
        r_values.append((f"k{index}", 0, f"p{index}"))
        r_values.append((f"k{index}", 1, f"p{index}"))
    for index in range(clean_rows):
        r_values.append((f"c{index}", 1 + index % 50, f"q{index}"))
    s_values: List[Tuple[int, str]] = [(a, f"s{a}") for a in range(51)]
    s_values.extend([(0, "alt0"), (1, "alt1")])
    generator = random.Random(bench_seed())
    generator.shuffle(r_values)
    generator.shuffle(s_values)
    return Database(
        [
            RelationInstance.from_values(SCHEMA, r_values),
            RelationInstance.from_values(S_SCHEMA, s_values),
        ]
    )


def persist(database: Database, directory: str, tag: str, fds=None) -> str:
    path = os.path.join(directory, f"bench_backend_{tag}.sqlite")
    save_database(database, path, FDS if fds is None else fds)
    return path


def time_sqlite(path: str, repeats: int, fds=None, query=QUERY, variables=VARIABLES):
    """End-to-end engine construction + certain answers, from the file."""
    samples, result = [], None
    for _ in range(repeats):
        start = time.perf_counter()
        with SqlCqaEngine(path, FDS if fds is None else fds) as engine:
            result = engine.certain_answers(query, variables)
            route = engine.last_route
        samples.append(time.perf_counter() - start)
    assert route == "sqlite", f"expected pushdown, got {route!r}"
    return statistics.median(samples), result


def time_memory(path: str, fds=None, query=QUERY, variables=VARIABLES):
    """End-to-end load + engine construction + repair-streamed answers."""
    start = time.perf_counter()
    database = load_database(path)
    engine = CqaEngine(database, FDS if fds is None else fds, family=Family.REP)
    result = engine.certain_answers(query, variables)
    return time.perf_counter() - start, result


def main(argv=None) -> int:
    parser = bench_parser(__doc__)
    parser.add_argument("--pairs", type=int, default=4,
                        help="conflict groups (2^pairs repairs)")
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[200, 500, 1000],
                        help="consistent-row counts compared on both engines")
    parser.add_argument("--sqlite-only-size", type=int, default=200_000,
                        help="extra size measured on the sqlite backend alone "
                             "(0 disables)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="sqlite timing repeats (median reported)")
    parser.add_argument("--no-assert", action="store_true",
                        help="report without enforcing the >=10x criterion")
    args = parser.parse_args(argv)
    apply_seed(args)

    if args.smoke:
        args.pairs, args.sizes, args.sqlite_only_size = 4, [100, 300], 5000
        args.repeats = 3

    repairs = 2 ** args.pairs
    print(f"relation R(K, A, B), fd K -> A, {args.pairs} conflict groups "
          f"({repairs} repairs), query: certain (K, A) with A >= 1")

    speedups: List[float] = []
    measurements: List[dict] = []
    forest_speedups: List[float] = []
    forest_measurements: List[dict] = []
    with tempfile.TemporaryDirectory() as directory:
        for clean_rows in args.sizes:
            total = clean_rows + 2 * args.pairs
            path = persist(build_database(args.pairs, clean_rows),
                           directory, str(clean_rows))
            sqlite_s, sqlite_result = time_sqlite(path, args.repeats)
            memory_s, memory_result = time_memory(path)
            assert sqlite_result.certain == memory_result.certain, (
                "certain answers diverged at size "
                f"{total}: {sorted(sqlite_result.certain)[:5]}... vs "
                f"{sorted(memory_result.certain)[:5]}..."
            )
            assert sqlite_result.possible == memory_result.possible, (
                f"possible answers diverged at size {total}"
            )
            speedup = memory_s / sqlite_s
            speedups.append(speedup)
            measurements.append(
                {
                    "rows": total,
                    "memory_s": round(memory_s, 6),
                    "sqlite_s": round(sqlite_s, 6),
                    "speedup": round(speedup, 2),
                }
            )
            print(f"[{total:>7} rows] memory: {memory_s * 1000:9.1f} ms | "
                  f"sqlite: {sqlite_s * 1000:7.2f} ms | "
                  f"speedup: {speedup:7.1f}x | "
                  f"certain answers: {len(sqlite_result.certain)}")

        if args.sqlite_only_size:
            clean_rows = args.sqlite_only_size
            total = clean_rows + 2 * args.pairs
            path = persist(build_database(args.pairs, clean_rows),
                           directory, "xl")
            sqlite_s, sqlite_result = time_sqlite(path, max(2, args.repeats // 2))
            measurements.append(
                {"rows": total, "sqlite_s": round(sqlite_s, 6)}
            )
            print(f"[{total:>7} rows] memory:   (not attempted) | "
                  f"sqlite: {sqlite_s * 1000:7.2f} ms | "
                  f"certain answers: {len(sqlite_result.certain)}")

        # C_forest tier: the same comparison over the two-atom key join
        # with BOTH relations dirty (multi-dirty recursive certification).
        forest_repairs = 2 ** (args.pairs + 2)
        print(f"\nC_forest tier: R(K,A,B) fd K -> A joined with S(A,C) "
              f"fd A -> C through S's key ({forest_repairs} repairs), "
              "query: certain (K, A, C)")
        for clean_rows in args.sizes:
            total = clean_rows + 2 * args.pairs + 53
            path = persist(
                build_forest_database(args.pairs, clean_rows),
                directory, f"forest_{clean_rows}", FOREST_FDS,
            )
            sqlite_s, sqlite_result = time_sqlite(
                path, args.repeats, FOREST_FDS, FOREST_QUERY, FOREST_VARIABLES
            )
            memory_s, memory_result = time_memory(
                path, FOREST_FDS, FOREST_QUERY, FOREST_VARIABLES
            )
            assert sqlite_result.certain == memory_result.certain, (
                f"forest certain answers diverged at size {total}"
            )
            assert sqlite_result.possible == memory_result.possible, (
                f"forest possible answers diverged at size {total}"
            )
            speedup = memory_s / sqlite_s
            forest_speedups.append(speedup)
            forest_measurements.append(
                {
                    "rows": total,
                    "memory_s": round(memory_s, 6),
                    "sqlite_s": round(sqlite_s, 6),
                    "speedup": round(speedup, 2),
                }
            )
            print(f"[{total:>7} rows] memory: {memory_s * 1000:9.1f} ms | "
                  f"sqlite: {sqlite_s * 1000:7.2f} ms | "
                  f"speedup: {speedup:7.1f}x | "
                  f"certain answers: {len(sqlite_result.certain)}")

    emit_result(
        __file__,
        {
            "pairs": args.pairs,
            "measurements": measurements,
            "best_speedup": round(max(speedups), 2) if speedups else None,
            "forest_measurements": forest_measurements,
            "forest_best_speedup": (
                round(max(forest_speedups), 2) if forest_speedups else None
            ),
        },
    )
    if not args.no_assert and not args.smoke:
        best = max(speedups)
        assert best >= 10, (
            f"best pushed-down speedup {best:.1f}x below the 10x criterion"
        )
        forest_best = max(forest_speedups)
        assert forest_best >= 10, (
            f"best C_forest speedup {forest_best:.1f}x below the 10x criterion"
        )
        print(f"criterion met: >={best:.0f}x single-atom and "
              f">={forest_best:.0f}x C_forest speedup with the in-memory "
              "engine still finishing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
