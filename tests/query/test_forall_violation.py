"""The dual "violation search" plan for universal quantification.

``FORALL x . φ`` on the indexed route now searches for one falsifying
binding (``EXISTS x . ¬φ`` with negations pushed inward) instead of
enumerating the active domain per variable.  These tests pin the
rewrite shape and differentially pin the route against ``naive=True``
(which keeps the domain-enumeration reference semantics).
"""

from __future__ import annotations

import pytest

from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.datagen.generators import GRID_FDS, grid_instance
from repro.query.ast import (
    And,
    Atom,
    Comparison,
    Exists,
    FalseFormula,
    Forall,
    Not,
    Or,
    TrueFormula,
)
from repro.query.evaluator import evaluate, violation_body
from repro.query.parser import parse_query
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema

R = RelationSchema("R", ["A:number", "B:number"])


def _rows(pairs):
    return [Row(R, list(pair)) for pair in pairs]


class TestViolationBody:
    def test_implication_exposes_the_guard_atom(self):
        guard = Atom("R", ("x", "y"))
        body = guard.implies(Comparison("<", "x", 5))
        violation = violation_body(body)
        assert isinstance(violation, And)
        assert guard in violation.parts

    def test_disjunction_becomes_conjunction(self):
        body = Or((Atom("R", ("x", 1)), Atom("R", ("x", 2))))
        violation = violation_body(body)
        assert isinstance(violation, And)
        assert all(isinstance(part, Not) for part in violation.parts)

    def test_double_negation_cancels(self):
        atom = Atom("R", ("x", "y"))
        assert violation_body(Not(atom)) == atom

    def test_equality_flips_order_comparison_stays_wrapped(self):
        eq = Comparison("=", "x", "y")
        assert violation_body(eq) == Comparison("!=", "x", "y")
        lt = Comparison("<", "x", "y")
        # NOT (x < y) is *not* x >= y on uninterpreted names: both
        # order atoms are false there, so the negation must stay.
        assert violation_body(lt) == Not(lt)

    def test_constants_swap(self):
        assert violation_body(TrueFormula()) == FalseFormula()
        assert violation_body(FalseFormula()) == TrueFormula()

    def test_nested_quantifiers_dualize(self):
        inner = Forall(("y",), Atom("R", ("x", "y")))
        violation = violation_body(inner)
        assert isinstance(violation, Exists)
        assert isinstance(violation.body, Not)


#: Universal shapes over R(A,B): guards, nesting, disjunction, mixed
#: domains, shadowing — each is checked indexed-vs-naive.
UNIVERSAL_QUERIES = [
    "FORALL x, y . R(x, y) IMPLIES x < 2",
    "FORALL x, y . R(x, y) IMPLIES y >= 1",
    "FORALL x . (EXISTS y . R(x, y)) OR x > 0",
    "FORALL x, y . (NOT R(x, y)) OR y < 3",
    "FORALL x . FORALL y . R(x, y) IMPLIES (EXISTS z . R(z, y) AND z <= x)",
    "FORALL x . EXISTS y . R(x, y) IMPLIES R(y, x)",
    "FORALL x, y . (R(x, y) AND x = 0) IMPLIES y != 2",
]


class TestDifferentialAgainstNaive:
    DATASETS = [
        [],
        [(0, 1)],
        [(0, 1), (1, 1), (2, 0)],
        [(0, 0), (0, 2), (1, 1), (2, 2), (3, 0)],
    ]

    @pytest.mark.parametrize("query", UNIVERSAL_QUERIES)
    @pytest.mark.parametrize("dataset", range(len(DATASETS)))
    def test_indexed_violation_search_matches_naive(self, query, dataset):
        rows = _rows(self.DATASETS[dataset])
        formula = parse_query(query)
        assert evaluate(formula, rows) == evaluate(formula, rows, naive=True)

    def test_shadowed_outer_binding_is_restored(self):
        rows = _rows([(0, 1), (1, 0)])
        formula = parse_query("EXISTS x . R(x, 1) AND (FORALL x . R(x, x) IMPLIES x > 5)")
        assert evaluate(formula, rows) == evaluate(formula, rows, naive=True)

    def test_cqa_engine_universal_query_matches_naive_engine(self):
        instance = grid_instance(3, 2)
        indexed = CqaEngine(instance, GRID_FDS, family=Family.REP)
        naive = CqaEngine(instance, GRID_FDS, family=Family.REP, naive=True)
        query = "FORALL x, y . R(x, y) IMPLIES x <= 2"
        assert indexed.answer(query) == naive.answer(query)

    def test_guarded_universal_skips_domain_enumeration(self):
        """A guard violated by no tuple: the dual plan probes R only.

        With the old expansion this is |adom|² candidate pairs; the
        violation search visits only R's tuples.  Correctness is what
        we assert; the plan shape is covered by TestViolationBody.
        """
        rows = _rows([(value, value) for value in range(50)])
        formula = parse_query("FORALL x, y . R(x, y) IMPLIES x = y")
        assert evaluate(formula, rows) is True
        assert evaluate(formula, rows, naive=True) is True
