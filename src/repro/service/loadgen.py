"""Open- and closed-loop load generation over captured workloads.

The flight recorder captures what the service executed; :mod:`repro.obs.
workload` turns that into a replayable file.  This module closes the
loop: it replays a :class:`~repro.obs.workload.Workload` against a live
HTTP service or an in-process front end, under a swept grid of
concurrency levels × read/write mixes, with a seeded RNG so every run
issues the identical operation sequence.

**Correctness, not just speed.**  Before each swept cell the generator
runs a *serial reference pass* — every distinct query executed once,
alone — and records its canonical answer (the JSON wire form with the
volatile provenance keys stripped and keys sorted).  During the
concurrent replay every response is compared **bit-identical** against
that reference; a single differing byte is a mismatch and fails the
cell.  This is sound even with writes in the mix because workload churn
entries are *insert-then-delete of a unique row* in a relation the
queries never mention: the answers are provably independent of how the
churn interleaves, while the writes still exercise the real exclusive
write path (per-database write lock, fingerprint recomputation, cache
invalidation bookkeeping).

**Two loop disciplines** (``mode``):

* ``closed`` — each worker thread issues its next operation the moment
  the previous one completes; concurrency *is* the offered load.
  Latency is measured call-to-return.
* ``open`` — operations get planned arrival times on a fixed-rate
  schedule and latency is measured from the *planned* start, so time an
  overloaded service makes requests wait in line is charged to the
  service, not silently absorbed (no coordinated omission).

Shared mutable state (the latency sink and churn draw counter) is
guarded by explicit locks with ``# guarded-by:`` annotations; the file
is checked by ``tools/lint/guarded_by.py``.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.recorder import FlightRecorder
from repro.obs.workload import Workload, WorkloadEntry

#: Response keys that legitimately differ between the serial reference
#: pass and a concurrent replay (cache state, dedup sharing, recorder
#: sampling, client correlation) — everything else must match exactly.
VOLATILE_KEYS = ("cached", "shared", "trace_id", "tag")


class LoadGenError(RuntimeError):
    """A workload/target combination that cannot be replayed."""


def canonical_answer(response: Dict[str, object]) -> str:
    """The bit-comparable form of one query response.

    Sorted-key JSON of the response minus :data:`VOLATILE_KEYS`; answer
    listings are already deterministically ordered by the wire codec.
    """
    body = {
        key: value
        for key, value in response.items()
        if key not in VOLATILE_KEYS
    }
    return json.dumps(body, sort_keys=True)


# ---------------------------------------------------------------------------
# Targets
# ---------------------------------------------------------------------------


class InProcessTarget:
    """Replay against a :class:`~repro.service.server.ServiceFrontEnd`.

    Goes through the same JSON codec as HTTP (``front.handle``), so a
    workload behaves identically in-process and over the wire.
    """

    def __init__(self, front) -> None:
        self.front = front

    def call(self, payload: Dict[str, object]) -> Dict[str, object]:
        return self.front.handle(payload)


class HttpTarget:
    """Replay against a live ``repro serve`` instance over HTTP."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def call(self, payload: Dict[str, object]) -> Dict[str, object]:
        from urllib.error import HTTPError
        from urllib.request import Request as UrlRequest, urlopen

        path = "/update" if payload.get("op") in ("insert", "delete") else "/query"
        request = UrlRequest(
            self.base_url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return json.load(response)
        except HTTPError as exc:
            # 400/503 carry an error object body; surface it as the
            # response so rejection counting works identically.
            try:
                return json.load(exc)
            except Exception:
                return {"error": str(exc)}


# ---------------------------------------------------------------------------
# Specs and results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CellSpec:
    """One swept cell: a concurrency level and a read/write mix."""

    concurrency: int
    write_fraction: float
    requests: int = 200
    mode: str = "closed"
    #: Open-loop offered rate in operations/second (whole cell, spread
    #: across the workers); ignored in closed mode.
    rate: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise LoadGenError("concurrency must be >= 1")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise LoadGenError("write_fraction must be in [0, 1]")
        if self.requests < 1:
            raise LoadGenError("requests must be >= 1")
        if self.mode not in ("closed", "open"):
            raise LoadGenError(f"unknown mode {self.mode!r}")
        if self.mode == "open" and (self.rate is None or self.rate <= 0):
            raise LoadGenError("open-loop cells need a positive rate")


@dataclass
class Mismatch:
    """A replayed answer that differed from the serial reference."""

    query: str
    expected: str
    actual: str


@dataclass
class CellResult:
    """Measured outcome of one swept cell."""

    spec: CellSpec
    duration_s: float
    completed: int
    errors: int
    rejected: int
    mismatches: List[Mismatch]
    latencies_ms: List[float] = field(repr=False, default_factory=list)
    trace_exemplars: List[str] = field(default_factory=list)

    @property
    def verified(self) -> bool:
        """Every replayed answer matched the serial reference."""
        return not self.mismatches and not self.errors

    @property
    def throughput(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * len(ordered))) - 1))
        return ordered[rank]

    def to_dict(self) -> Dict[str, object]:
        return {
            "concurrency": self.spec.concurrency,
            "write_fraction": self.spec.write_fraction,
            "mode": self.spec.mode,
            "requests": self.spec.requests,
            "completed": self.completed,
            "errors": self.errors,
            "rejected": self.rejected,
            "verified": self.verified,
            "mismatches": len(self.mismatches),
            "duration_s": round(self.duration_s, 6),
            "throughput_rps": round(self.throughput, 3),
            "p50_ms": round(self.percentile(50), 3),
            "p95_ms": round(self.percentile(95), 3),
            "p99_ms": round(self.percentile(99), 3),
            "trace_exemplars": list(self.trace_exemplars),
        }


# ---------------------------------------------------------------------------
# Schedule construction (deterministic per seed)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Op:
    """One scheduled operation: a workload entry plus its churn draw."""

    entry: WorkloadEntry
    draw: int = 0


def build_schedule(workload: Workload, spec: CellSpec) -> List[List[_Op]]:
    """The per-thread operation lists for one cell.

    One seeded RNG draws the whole sequence up front (read-vs-write by
    ``write_fraction``, the entry within each side by weight), then ops
    are dealt round-robin to the workers — the schedule depends only on
    (workload, spec), never on execution timing.  Churn draws number
    globally so no two concurrent writes ever touch the same row.
    """
    reads, writes = workload.reads, workload.writes
    if spec.write_fraction > 0 and not writes:
        raise LoadGenError(
            "write_fraction > 0 but the workload has no churn entries"
        )
    if spec.write_fraction < 1 and not reads:
        raise LoadGenError(
            "write_fraction < 1 but the workload has no query entries"
        )
    rng = random.Random(spec.seed)
    read_weights = [entry.weight for entry in reads]
    write_weights = [entry.weight for entry in writes]
    ops: List[_Op] = []
    draw = 0
    for _ in range(spec.requests):
        if writes and (not reads or rng.random() < spec.write_fraction):
            entry = rng.choices(writes, write_weights)[0]
            ops.append(_Op(entry, draw))
            draw += 1
        else:
            ops.append(_Op(rng.choices(reads, read_weights)[0]))
    return [ops[worker :: spec.concurrency] for worker in range(spec.concurrency)]


def _query_payload(entry: WorkloadEntry) -> Dict[str, object]:
    payload: Dict[str, object] = {"op": "query", "query": entry.query}
    if entry.family is not None:
        payload["family"] = entry.family
    if entry.variables is not None:
        payload["variables"] = list(entry.variables)
    if entry.database is not None:
        payload["database"] = entry.database
    return payload


def _churn_payloads(
    entry: WorkloadEntry, draw: int
) -> Tuple[Dict[str, object], Dict[str, object]]:
    values = entry.churn_values(draw)
    base: Dict[str, object] = {"relation": entry.relation, "values": values}
    if entry.database is not None:
        base["database"] = entry.database
    return {**base, "op": "insert"}, {**base, "op": "delete"}


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------


class LoadGenerator:
    """Replays a workload against one target across a swept grid.

    ``target`` is anything with ``call(payload) -> dict`` —
    :class:`InProcessTarget` or :class:`HttpTarget`.  ``recorder``
    (optional, in-process runs) supplies flight-recorder trace-id
    exemplars for each cell's tail.
    """

    def __init__(
        self,
        target,
        workload: Workload,
        recorder: Optional[FlightRecorder] = None,
    ) -> None:
        self.target = target
        self.workload = workload
        self.recorder = recorder
        self._lock = threading.Lock()
        self._latencies: List[float] = []  # guarded-by: _lock
        self._errors = 0  # guarded-by: _lock
        self._rejected = 0  # guarded-by: _lock
        self._completed = 0  # guarded-by: _lock
        self._mismatches: List[Mismatch] = []  # guarded-by: _lock

    # Reference ---------------------------------------------------------------

    def serial_reference(self) -> Dict[str, str]:
        """Canonical answer of every distinct query, executed alone.

        Keyed by the entry's query payload JSON, so replay lookups are
        exact.  Raises :class:`LoadGenError` if any reference execution
        errors — a workload that cannot run serially cannot be swept.
        """
        reference: Dict[str, str] = {}
        for entry in self.workload.reads:
            payload = _query_payload(entry)
            response = self.target.call(payload)
            if "error" in response:
                raise LoadGenError(
                    f"reference pass failed for {entry.query!r}: "
                    f"{response['error']}"
                )
            reference[json.dumps(payload, sort_keys=True)] = canonical_answer(
                response
            )
        return reference

    # Replay ------------------------------------------------------------------

    def _reset_counters(self) -> None:
        with self._lock:
            self._latencies = []
            self._errors = 0
            self._rejected = 0
            self._completed = 0
            self._mismatches = []

    def _record(self, response: Dict[str, object], seconds: float) -> None:
        with self._lock:
            if response.get("rejected"):
                self._rejected += 1
            elif "error" in response:
                self._errors += 1
            else:
                self._completed += 1
                self._latencies.append(seconds * 1e3)

    def _verify(
        self, payload_key: str, query: str, response: Dict[str, object],
        reference: Dict[str, str],
    ) -> None:
        if "error" in response:
            return  # counted by _record; nothing to compare
        expected = reference[payload_key]
        actual = canonical_answer(response)
        if actual != expected:
            with self._lock:
                if len(self._mismatches) < 16:  # keep reports bounded
                    self._mismatches.append(Mismatch(query, expected, actual))
                else:
                    self._errors += 1

    def _worker(
        self,
        ops: Sequence[_Op],
        reference: Dict[str, str],
        epoch: float,
        planned: Optional[Sequence[float]],
    ) -> None:
        for index, op in enumerate(ops):
            if planned is not None:
                delay = epoch + planned[index] - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                started = epoch + planned[index]
            else:
                started = time.perf_counter()
            if op.entry.is_read:
                payload = _query_payload(op.entry)
                response = self.target.call(payload)
                self._record(response, time.perf_counter() - started)
                self._verify(
                    json.dumps(payload, sort_keys=True),
                    op.entry.query or "",
                    response,
                    reference,
                )
            else:
                insert, delete = _churn_payloads(op.entry, op.draw)
                response = self.target.call(insert)
                if "error" not in response:
                    # Only undo an insert that actually landed; a
                    # rejected insert has no row to delete.
                    response = self.target.call(delete)
                self._record(response, time.perf_counter() - started)

    def run_cell(
        self,
        spec: CellSpec,
        reference: Optional[Dict[str, str]] = None,
    ) -> CellResult:
        """One cell: serial reference (unless supplied), then replay."""
        if reference is None:
            reference = self.serial_reference()
        schedule = build_schedule(self.workload, spec)
        planned: List[Optional[List[float]]] = [None] * spec.concurrency
        if spec.mode == "open":
            assert spec.rate is not None
            # Op k of the global sequence arrives at k/rate; worker w
            # executes ops w, w+concurrency, ... of that sequence.
            planned = [
                [
                    (worker + position * spec.concurrency) / spec.rate
                    for position in range(len(schedule[worker]))
                ]
                for worker in range(spec.concurrency)
            ]
        self._reset_counters()
        epoch = time.perf_counter()
        threads = [
            threading.Thread(
                target=self._worker,
                args=(schedule[worker], reference, epoch, planned[worker]),
                name=f"loadgen-{worker}",
                daemon=True,
            )
            for worker in range(spec.concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        duration = time.perf_counter() - epoch
        exemplars: List[str] = []
        if self.recorder is not None:
            exemplars = [
                record.trace_id
                for record in self.recorder.records(slowest=True, limit=3)
            ]
        with self._lock:
            return CellResult(
                spec=spec,
                duration_s=duration,
                completed=self._completed,
                errors=self._errors,
                rejected=self._rejected,
                mismatches=list(self._mismatches),
                latencies_ms=list(self._latencies),
                trace_exemplars=exemplars,
            )

    def sweep(
        self,
        concurrencies: Sequence[int],
        write_fractions: Sequence[float],
        requests: int = 200,
        mode: str = "closed",
        rate: Optional[float] = None,
        seed: int = 0,
        on_cell: Optional[Callable[[CellResult], None]] = None,
    ) -> List[CellResult]:
        """The full grid, one serial reference shared by every cell.

        Cells run in deterministic grid order (mix-major, concurrency
        within); ``on_cell`` fires after each for progress reporting.
        """
        reference = self.serial_reference()
        results: List[CellResult] = []
        for write_fraction in write_fractions:
            for concurrency in concurrencies:
                spec = CellSpec(
                    concurrency=concurrency,
                    write_fraction=write_fraction,
                    requests=requests,
                    mode=mode,
                    rate=rate,
                    seed=seed,
                )
                result = self.run_cell(spec, reference)
                results.append(result)
                if on_cell is not None:
                    on_cell(result)
        return results
