"""End-to-end tests of the ``repro session`` subcommand."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def kv_csv(tmp_path):
    path = tmp_path / "R.csv"
    path.write_text("A:number,B:number\n0,0\n0,1\n1,0\n")
    return path


def run_session(script_text, tmp_path, kv_csv, *extra, capsys=None):
    script = tmp_path / "script.txt"
    script.write_text(script_text)
    return main(
        [
            "session",
            "--csv",
            str(kv_csv),
            "--relation",
            "R",
            "--fd",
            "A -> B",
            "--script",
            str(script),
            *extra,
        ]
    )


class TestSessionScript:
    def test_updates_and_queries_flow_through_one_engine(
        self, tmp_path, kv_csv, capsys
    ):
        script = (
            "# warm-up query, then update, then re-query\n"
            "? EXISTS x . R(x, 0)\n"
            "+ 1, 1\n"
            "? EXISTS x . R(x, 0)\n"
            "- 0, 1\n"
            "? EXISTS x . R(x, 0)\n"
        )
        assert run_session(script, tmp_path, kv_csv) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert "= true (2/2 repairs)" in lines[0]
        assert "1 new conflict(s)" in lines[1]
        assert "= undetermined (3/4 repairs)" in lines[2]
        assert "1 conflict(s) removed" in lines[3]
        assert "= true (2/2 repairs)" in lines[4]
        assert "session end: 3 tuples, 1 conflicts, 2 updates applied" in out

    def test_open_queries_report_certain_answers(self, tmp_path, kv_csv, capsys):
        assert run_session("? R(x, y)\n", tmp_path, kv_csv) == 0
        out = capsys.readouterr().out
        assert "certain: (1, 0)" in out

    def test_json_output(self, tmp_path, kv_csv, capsys):
        script = "+ 2, 0\n? EXISTS x . R(x, 0)\n"
        assert run_session(script, tmp_path, kv_csv, "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        insert_event, query_event = payload["events"]
        assert insert_event["op"] == "insert"
        assert insert_event["values"] == [2, 0]
        assert insert_event["applied"] is True
        assert query_event["verdict"] == "true"
        assert query_event["repairs_considered"] == 2
        assert payload["summary"]["tuples"] == 4
        assert payload["summary"]["updates_applied"] == 1

    def test_family_selection(self, tmp_path, kv_csv, capsys):
        # Prefer the newer (larger B) tuple: under L-Rep only {(0,1),(1,0)}
        # survives, so the query is certainly true.
        script = "? EXISTS x . R(x, 1)\n"
        assert (
            run_session(script, tmp_path, kv_csv, "--family", "L", "--prefer-new", "B")
            == 0
        )
        out = capsys.readouterr().out
        assert "[L-Rep] = true (1/1 repairs)" in out

    def test_prefer_new_extends_to_inserted_conflicts(self, tmp_path, capsys):
        """--prefer-new must also orient conflicts created by '+' lines,
        so the session agrees with `repro cqa` on the final instance."""
        csv = tmp_path / "R.csv"
        csv.write_text("A:number,B:number\n1,0\n2,0\n")
        script = tmp_path / "script.txt"
        script.write_text("+ 1, 5\n? EXISTS x . R(x, 5)\n")
        assert (
            main(
                [
                    "session",
                    "--csv",
                    str(csv),
                    "--relation",
                    "R",
                    "--fd",
                    "A -> B",
                    "--prefer-new",
                    "B",
                    "--family",
                    "G",
                    "--script",
                    str(script),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[G-Rep] = true (1/1 repairs)" in out

    def test_values_validated_against_domain(self, tmp_path, kv_csv):
        with pytest.raises(SystemExit, match="line 1.*non-negative"):
            run_session("+ -5, 1\n", tmp_path, kv_csv)
        with pytest.raises(SystemExit, match="line 1.*natural number"):
            run_session("+ x, 1\n", tmp_path, kv_csv)
        with pytest.raises(SystemExit, match="line 1.*expected 2 values"):
            run_session("+ 1, 2, 3\n", tmp_path, kv_csv)

    def test_bad_line_aborts_with_location(self, tmp_path, kv_csv):
        with pytest.raises(SystemExit, match="line 1"):
            run_session("* what\n", tmp_path, kv_csv)

    def test_deleting_missing_tuple_aborts_with_location(self, tmp_path, kv_csv):
        with pytest.raises(SystemExit, match="line 1"):
            run_session("- 9, 9\n", tmp_path, kv_csv)

    def test_stdin_script(self, tmp_path, kv_csv, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("? EXISTS x . R(x, 0)\n"))
        assert (
            main(
                [
                    "session",
                    "--csv",
                    str(kv_csv),
                    "--relation",
                    "R",
                    "--fd",
                    "A -> B",
                ]
            )
            == 0
        )
        assert "= true" in capsys.readouterr().out

    def test_sqlite_source(self, tmp_path, capsys):
        from repro.relational.instance import RelationInstance
        from repro.relational.schema import RelationSchema
        from repro.relational.sqlite_io import save_instance

        schema = RelationSchema("R", ["A:number", "B:number"])
        instance = RelationInstance.from_values(schema, [(0, 0), (0, 1)])
        db_path = tmp_path / "data.sqlite"
        save_instance(instance, db_path)
        script = tmp_path / "script.txt"
        script.write_text("? EXISTS x . R(x, 0)\n")
        assert (
            main(
                [
                    "session",
                    "--sqlite",
                    str(db_path),
                    "--relation",
                    "R",
                    "--fd",
                    "A -> B",
                    "--script",
                    str(script),
                ]
            )
            == 0
        )
        assert "= undetermined" in capsys.readouterr().out


class TestSessionSqliteBackend:
    def test_rewritable_queries_are_pushed(self, tmp_path, kv_csv, capsys):
        script = (
            "? EXISTS x . R(x, 0)\n"
            "+ 1, 1\n"
            "? R(x, y)\n"
            "? FORALL x, y . R(x, y) IMPLIES x < 5\n"
        )
        assert (
            run_session(script, tmp_path, kv_csv, "--backend", "sqlite") == 0
        )
        out = capsys.readouterr().out
        assert "= true (pushed to sqlite)" in out
        assert "(via sqlite)" in out
        # non-conjunctive queries stay on the incremental engine
        assert "= true (4/4 repairs)" in out

    def test_json_events_carry_backend_and_match_memory(
        self, tmp_path, kv_csv, capsys
    ):
        script = "? R(x, y)\n+ 2, 0\n? R(x, y)\n"
        assert (
            run_session(script, tmp_path, kv_csv, "--json", "--backend", "sqlite")
            == 0
        )
        sqlite_events = json.loads(capsys.readouterr().out)["events"]
        assert run_session(script, tmp_path, kv_csv, "--json") == 0
        memory_events = json.loads(capsys.readouterr().out)["events"]
        for pushed, reference in zip(sqlite_events, memory_events):
            if pushed["op"] != "query":
                continue
            assert pushed["backend"] == "sqlite"
            assert reference["backend"] == "memory"
            assert pushed["certain"] == reference["certain"]
            assert pushed["possible"] == reference["possible"]

    def test_priority_flags_keep_memory_routing(self, tmp_path, kv_csv, capsys):
        script = "? EXISTS x . R(x, 1)\n"
        assert (
            run_session(
                script, tmp_path, kv_csv,
                "--backend", "sqlite", "--prefer-new", "B", "--family", "L",
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "pushed to sqlite" not in out
        assert "= true" in out
