"""Workload capture: recorded traffic as a replayable, versioned file.

The flight recorder (:mod:`repro.obs.recorder`) retains what the
service actually executed — query text, family, database, latency.
This module turns that passive record (or a hand-authored spec) into an
**active** artifact: a JSON-lines workload file the load generator
(:mod:`repro.service.loadgen`) can replay against a live service or an
in-process broker under controlled concurrency and read/write mixes.

File format (one JSON object per line):

* line 1 — the **header**: ``{"workload": "repro-workload",
  "version": 1, "name": ..., "entries": N}``.  The version is checked
  on load; unknown versions are rejected rather than misread.
* every further line — one :class:`WorkloadEntry`:

  - ``{"kind": "query", "query": "...", "family": "G"|null,
    "variables": [...]|null, "database": null, "weight": 3}`` — a read
    operation.  ``weight`` is the entry's relative draw frequency
    (export derives it from how often the recorder saw the query).
  - ``{"kind": "churn", "relation": "W", "values": [...],
    "unique_column": 0, "base": 1000000, "weight": 1}`` — a write
    operation: insert one row, then delete it.  The value at
    ``unique_column`` is replaced by ``base + n`` for a fresh ``n`` on
    every draw, so concurrent replay never inserts or deletes the same
    physical row twice and the instance returns to its baseline state
    no matter how the operations interleave.

Exports are **deterministic**: entries are sorted by (kind, identity)
and weights aggregated, so exporting the same retained records twice
yields byte-identical files — they diff cleanly in version control.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.families import Family

from .recorder import QueryRecord

#: Magic + version the loader accepts.
FORMAT_NAME = "repro-workload"
FORMAT_VERSION = 1

#: Wire codes of the repair families (mirrors the CLI's ``--family``).
FAMILY_CODES: Dict[str, Family] = {
    "Rep": Family.REP,
    "L": Family.LOCAL,
    "S": Family.SEMI_GLOBAL,
    "G": Family.GLOBAL,
    "C": Family.COMMON,
}

#: Accept both the short codes and ``str(Family)`` forms ("G-Rep") on
#: input — recorder records carry the latter — normalising to the code.
_FAMILY_ALIASES: Dict[str, str] = {
    **{code: code for code in FAMILY_CODES},
    **{str(family): code for code, family in FAMILY_CODES.items()},
}


class WorkloadError(ValueError):
    """A malformed workload file or entry."""


@dataclass(frozen=True)
class WorkloadEntry:
    """One weighted operation of a workload.

    ``kind`` is ``"query"`` (read: the first-order query text, optional
    family code, answer columns, and target database) or ``"churn"``
    (write: insert-then-delete one row of ``relation``, with the value
    at ``unique_column`` replaced by ``base + n`` per draw).
    """

    kind: str
    weight: int = 1
    # query fields
    query: Optional[str] = None
    family: Optional[str] = None
    variables: Optional[Tuple[str, ...]] = None
    database: Optional[str] = None
    # churn fields
    relation: Optional[str] = None
    values: Optional[Tuple[object, ...]] = None
    unique_column: int = 0
    base: int = 1_000_000

    def __post_init__(self) -> None:
        if self.kind not in ("query", "churn"):
            raise WorkloadError(
                f"unknown entry kind {self.kind!r} (expected query|churn)"
            )
        if not isinstance(self.weight, int) or self.weight < 1:
            raise WorkloadError(f"weight must be a positive int: {self.weight!r}")
        if self.kind == "query":
            if not self.query or not isinstance(self.query, str):
                raise WorkloadError("query entries need a non-empty 'query'")
            if self.family is not None and self.family not in FAMILY_CODES:
                raise WorkloadError(
                    f"unknown family code {self.family!r} "
                    f"(expected one of {sorted(FAMILY_CODES)})"
                )
        else:
            if not self.relation or not isinstance(self.relation, str):
                raise WorkloadError("churn entries need a 'relation'")
            if self.values is None or not len(self.values):
                raise WorkloadError("churn entries need non-empty 'values'")
            if not 0 <= self.unique_column < len(self.values):
                raise WorkloadError(
                    f"unique_column {self.unique_column} outside values "
                    f"of arity {len(self.values)}"
                )

    @property
    def is_read(self) -> bool:
        return self.kind == "query"

    def family_enum(self) -> Optional[Family]:
        return FAMILY_CODES[self.family] if self.family else None

    def churn_values(self, draw: int) -> List[object]:
        """The concrete row values for the ``draw``-th churn of this
        entry — the unique column carries ``base + draw``."""
        assert self.values is not None
        values = list(self.values)
        values[self.unique_column] = self.base + draw
        return values

    def to_dict(self) -> Dict[str, object]:
        body: Dict[str, object] = {"kind": self.kind, "weight": self.weight}
        if self.kind == "query":
            body["query"] = self.query
            if self.family is not None:
                body["family"] = self.family
            if self.variables is not None:
                body["variables"] = list(self.variables)
            if self.database is not None:
                body["database"] = self.database
        else:
            body["relation"] = self.relation
            body["values"] = list(self.values or ())
            body["unique_column"] = self.unique_column
            body["base"] = self.base
            if self.database is not None:
                body["database"] = self.database
        return body

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "WorkloadEntry":
        if not isinstance(payload, dict):
            raise WorkloadError(f"entry must be a JSON object, got {payload!r}")
        kind = payload.get("kind", "query")
        weight = payload.get("weight", 1)
        if not isinstance(weight, int) or isinstance(weight, bool):
            raise WorkloadError(f"weight must be an int: {weight!r}")
        family = payload.get("family")
        if family is not None:
            family = _FAMILY_ALIASES.get(str(family))
            if family is None:
                raise WorkloadError(
                    f"unknown family {payload.get('family')!r}"
                )
        variables = payload.get("variables")
        if variables is not None:
            if not isinstance(variables, (list, tuple)):
                raise WorkloadError("'variables' must be a list")
            variables = tuple(str(name) for name in variables)
        values = payload.get("values")
        if values is not None:
            if not isinstance(values, (list, tuple)):
                raise WorkloadError("'values' must be a list")
            values = tuple(values)
        return cls(
            kind=str(kind),
            weight=weight,
            query=payload.get("query"),
            family=family,
            variables=variables,
            database=payload.get("database"),
            relation=payload.get("relation"),
            values=values,
            unique_column=int(payload.get("unique_column", 0)),
            base=int(payload.get("base", 1_000_000)),
        )


@dataclass(frozen=True)
class Workload:
    """A named, versioned sequence of weighted operations."""

    entries: Tuple[WorkloadEntry, ...]
    name: str = "workload"
    source: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.entries:
            raise WorkloadError("a workload needs at least one entry")

    @property
    def reads(self) -> Tuple[WorkloadEntry, ...]:
        return tuple(entry for entry in self.entries if entry.is_read)

    @property
    def writes(self) -> Tuple[WorkloadEntry, ...]:
        return tuple(entry for entry in self.entries if not entry.is_read)

    def header(self) -> Dict[str, object]:
        body: Dict[str, object] = {
            "workload": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "name": self.name,
            "entries": len(self.entries),
        }
        if self.source is not None:
            body["source"] = self.source
        return body

    def dumps(self) -> str:
        """The full JSON-lines file body (header + one line per entry)."""
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(
            json.dumps(entry.to_dict(), sort_keys=True)
            for entry in self.entries
        )
        return "\n".join(lines) + "\n"

    def save(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())
        return path


def _entry_sort_key(entry: WorkloadEntry) -> Tuple:
    return (
        entry.kind,
        entry.query or "",
        entry.family or "",
        entry.relation or "",
        tuple(map(repr, entry.values or ())),
        entry.database or "",
    )


def normalize_entries(
    entries: Iterable[WorkloadEntry],
) -> Tuple[WorkloadEntry, ...]:
    """Deterministic entry order with duplicate identities merged —
    weights add, so 'the same query seen three times' becomes one entry
    of weight 3 regardless of arrival order."""
    merged: Dict[Tuple, WorkloadEntry] = {}
    for entry in entries:
        key = _entry_sort_key(entry)
        existing = merged.get(key)
        if existing is None:
            merged[key] = entry
        else:
            merged[key] = replace(
                existing, weight=existing.weight + entry.weight
            )
    return tuple(merged[key] for key in sorted(merged))


def export_from_records(
    records: Sequence[QueryRecord],
    name: str = "recorded",
    source: Optional[str] = None,
) -> Workload:
    """Distill retained flight-recorder records into a workload.

    Each distinct (query, family, database) becomes one query entry
    whose weight is the number of retained records that executed it —
    the replayed traffic shape follows what the recorder actually saw.
    """
    if not records:
        raise WorkloadError("no retained records to export")
    entries = [
        WorkloadEntry(
            kind="query",
            query=record.query,
            family=_FAMILY_ALIASES.get(record.family),
            database=record.database,
        )
        for record in records
    ]
    return Workload(normalize_entries(entries), name=name, source=source)


def export_from_debug_payload(
    payload: Dict[str, object],
    name: str = "recorded",
    source: Optional[str] = None,
) -> Workload:
    """Build a workload from a ``GET /debug/queries`` response body."""
    queries = payload.get("queries")
    if not isinstance(queries, list) or not queries:
        raise WorkloadError("debug payload holds no retained queries")
    records = [QueryRecord.from_dict(entry) for entry in queries]
    return export_from_records(records, name=name, source=source)


def loads(text: str) -> Workload:
    """Parse a workload file body, validating header and every entry."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise WorkloadError("empty workload file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"bad header line: {exc}")
    if not isinstance(header, dict) or header.get("workload") != FORMAT_NAME:
        raise WorkloadError(
            f"not a {FORMAT_NAME} file (bad or missing header line)"
        )
    version = header.get("version")
    if version != FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported workload version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    entries: List[WorkloadEntry] = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise WorkloadError(f"line {number}: bad JSON: {exc}")
        try:
            entries.append(WorkloadEntry.from_dict(payload))
        except WorkloadError as exc:
            raise WorkloadError(f"line {number}: {exc}")
    declared = header.get("entries")
    if isinstance(declared, int) and declared != len(entries):
        raise WorkloadError(
            f"header declares {declared} entries, file holds {len(entries)}"
        )
    return Workload(
        tuple(entries),
        name=str(header.get("name", "workload")),
        source=header.get("source"),
    )


def load(path: str) -> Workload:
    """Load and validate a workload file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
