"""Front-end tests: op dispatch, HTTP transport, stdio transport, CLI."""

from __future__ import annotations

import io
import json
import threading
import urllib.request

import pytest

from repro.datagen.generators import GRID_FDS, grid_instance
from repro.service.broker import RequestBroker
from repro.service.server import (
    ServiceFrontEnd,
    make_http_server,
    serve_stdio,
)


@pytest.fixture
def front():
    broker = RequestBroker()
    broker.register("grid", grid_instance(3, 2), GRID_FDS)
    front = ServiceFrontEnd(broker)
    yield front
    broker.close()


class TestFrontEndOps:
    def test_health(self, front):
        body = front.handle({"op": "health"})
        assert body["status"] == "ok"
        assert body["databases"] == ["grid"]

    def test_open_query(self, front):
        body = front.handle({"query": "EXISTS y . R(x, y)"})
        assert body["kind"] == "open"
        assert body["variables"] == ["x"]
        assert body["certain"] == [[0], [1], [2]]
        assert body["route"] == "sqlite"

    def test_closed_query(self, front):
        body = front.handle({"query": "EXISTS x, y . R(x, y)"})
        assert body["kind"] == "closed"
        assert body["verdict"] == "true"

    def test_batch_with_tags(self, front):
        body = front.handle(
            {
                "op": "batch",
                "requests": [
                    {"query": "EXISTS y . R(x, y)", "tag": "a"},
                    {"query": "EXISTS y . R(x, y)", "tag": "b"},
                ],
            }
        )
        results = body["results"]
        assert [r["tag"] for r in results] == ["a", "b"]
        assert results[1]["shared"] is True

    def test_insert_then_query_sees_new_tuple(self, front):
        body = front.handle({"op": "insert", "values": [7, 7]})
        assert body["applied"] is True
        answers = front.handle({"query": "EXISTS y . R(x, y)"})
        assert [7] in answers["certain"]

    def test_delete_unknown_tuple_is_an_error_object(self, front):
        body = front.handle({"op": "delete", "values": [99, 99]})
        assert "error" in body

    def test_family_selection_and_bad_family(self, front):
        good = front.handle({"query": "EXISTS y . R(x, y)", "family": "G"})
        assert good["family"] == "G-Rep"
        bad = front.handle({"query": "EXISTS y . R(x, y)", "family": "nope"})
        assert "unknown family" in bad["error"]

    def test_malformed_requests(self, front):
        assert "error" in front.handle({"op": "wat"})
        assert "error" in front.handle({"query": ""})
        assert "error" in front.handle({"op": "batch", "requests": []})
        assert "error" in front.handle({"op": "insert", "values": "no"})
        assert "error" in front.handle({"query": "EXISTS ( . broken"})

    def test_type_malformed_fields_degrade_to_error_objects(self, front):
        """Shape errors must never escape handle() and kill a transport."""
        assert "error" in front.handle({"query": "EXISTS y . R(x, y)", "variables": 5})
        assert "error" in front.handle({"op": "batch", "requests": "nope"})
        assert "error" in front.handle({"op": "insert", "values": [None, {}]})
        assert "error" in front.handle({"query": "EXISTS y . R(x, y)", "priority": "high"})

    def test_stats_counts_requests(self, front):
        front.handle({"query": "EXISTS y . R(x, y)"})
        stats = front.handle({"op": "stats"})
        assert stats["requests_served"] == 1
        assert stats["databases"]["grid"]["queries"] == 1


class TestHttpTransport:
    @pytest.fixture
    def server(self, front):
        server = make_http_server(front, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()

    def _url(self, server, path):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}{path}"

    def _get(self, server, path):
        with urllib.request.urlopen(self._url(server, path)) as response:
            return response.status, json.loads(response.read())

    def _post(self, server, path, payload):
        request = urllib.request.Request(
            self._url(server, path),
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_healthz(self, server):
        status, body = self._get(server, "/healthz")
        assert status == 200 and body["status"] == "ok"

    def test_stats(self, server):
        status, body = self._get(server, "/stats")
        assert status == 200 and "answer_cache" in body

    def test_query_roundtrip(self, server):
        status, body = self._post(
            server, "/query", {"query": "EXISTS y . R(x, y)"}
        )
        assert status == 200
        assert body["certain"] == [[0], [1], [2]]

    def test_batch_roundtrip(self, server):
        status, body = self._post(
            server,
            "/query",
            {"requests": [{"query": "EXISTS y . R(x, y)"}] * 3},
        )
        assert status == 200
        assert len(body["results"]) == 3
        assert body["results"][2]["shared"] is True

    def test_update_roundtrip(self, server):
        status, body = self._post(server, "/update", {"values": [8, 8]})
        assert status == 200 and body["applied"] is True
        status, body = self._post(
            server, "/update", {"op": "delete", "values": [8, 8]}
        )
        assert status == 200 and body["op"] == "delete"

    def test_bad_json_is_400(self, server):
        request = urllib.request.Request(
            self._url(server, "/query"),
            data=b"{nope",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_unknown_paths_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(self._url(server, "/nope"))
        assert excinfo.value.code == 404
        status, _ = self._post(server, "/nope", {})
        assert status == 404

    def test_query_error_is_400(self, server):
        status, body = self._post(server, "/query", {"query": ""})
        assert status == 400 and "error" in body


class TestStdioTransport:
    def test_json_lines_loop(self, front):
        script = "\n".join(
            [
                json.dumps({"op": "health"}),
                "# comment",
                "",
                json.dumps({"query": "EXISTS y . R(x, y)"}),
                "{broken",
                json.dumps({"op": "stats"}),
            ]
        )
        output = io.StringIO()
        exit_code = serve_stdio(front, io.StringIO(script), output)
        assert exit_code == 0
        lines = [json.loads(line) for line in output.getvalue().splitlines()]
        assert lines[0]["status"] == "ok"
        assert lines[1]["certain"] == [[0], [1], [2]]
        assert "bad JSON" in lines[2]["error"]
        assert lines[3]["requests_served"] == 1


class TestServeCli:
    def test_serve_stdio_subcommand(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        csv = tmp_path / "r.csv"
        csv.write_text("A,B\n1,2\n1,3\n2,5\n")
        script = "\n".join(
            [
                json.dumps({"op": "health"}),
                json.dumps({"query": "EXISTS y . R(x, y)"}),
                json.dumps({"op": "insert", "values": [4, 4]}),
                json.dumps({"query": "EXISTS y . R(x, y)"}),
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        exit_code = main(
            [
                "serve",
                "--stdio",
                "--csv",
                str(csv),
                "--relation",
                "R",
                "--fd",
                "A -> B",
            ]
        )
        assert exit_code == 0
        lines = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert lines[0]["status"] == "ok"
        assert lines[1]["certain"] == [[1], [2]]
        assert lines[2]["applied"] is True
        assert [4] in lines[3]["certain"]

    def test_serve_parallel_flag_threads_to_broker(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        csv = tmp_path / "r.csv"
        csv.write_text("A,B\n1,2\n1,3\n")
        script = json.dumps({"op": "stats"})
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        exit_code = main(
            [
                "serve",
                "--stdio",
                "--parallel",
                "2",
                "--csv",
                str(csv),
                "--fd",
                "A -> B",
            ]
        )
        assert exit_code == 0
        stats = json.loads(capsys.readouterr().out.splitlines()[0])
        assert stats["parallel"] == 2

    def test_serve_max_inflight_flag_arms_admission(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        csv = tmp_path / "r.csv"
        csv.write_text("A,B\n1,2\n1,3\n")
        script = json.dumps({"op": "stats"})
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        exit_code = main(
            [
                "serve",
                "--stdio",
                "--max-inflight",
                "3",
                "--max-queue",
                "5",
                "--csv",
                str(csv),
                "--fd",
                "A -> B",
            ]
        )
        assert exit_code == 0
        stats = json.loads(capsys.readouterr().out.splitlines()[0])
        assert stats["admission"]["max_inflight"] == 3
        assert stats["admission"]["max_queue"] == 5

    def test_serve_rejects_bad_max_inflight(self, tmp_path):
        from repro.cli import main

        csv = tmp_path / "r.csv"
        csv.write_text("A,B\n1,2\n")
        with pytest.raises(SystemExit, match="max-inflight"):
            main(
                [
                    "serve",
                    "--stdio",
                    "--max-inflight",
                    "0",
                    "--csv",
                    str(csv),
                    "--fd",
                    "A -> B",
                ]
            )
