"""Polynomial-time consistent answers for ground quantifier-free queries.

Figure 5's first row states that for the plain repair family ``Rep``,
consistent answers to {∀,∃}-free queries are computable in PTIME; the
algorithmics originate in the conflict-graph machinery of [6, 7].  The
procedure implemented here:

``true`` is the consistent answer to ground quantifier-free ``Q``
iff no repair satisfies ``¬Q``.  Put ``¬Q`` in DNF; each disjunct is a
conjunction of ground literals and is satisfiable in *some* repair iff

1. every ground comparison in it holds (they do not depend on the data);
2. its positive facts ``P`` exist in the instance and are pairwise
   non-conflicting;
3. for every negated fact ``n`` present in the instance and not already
   in conflict with ``P``, a *witness* neighbour ``w(n)`` can be chosen
   such that ``P ∪ {w(n) | n}`` is conflict-free — a repair containing a
   neighbour of ``n`` necessarily excludes ``n``, and any independent
   set extends to a repair.

With the query fixed, the number of literals is a constant ``k``, and
the witness search is ``O(n^k)`` — polynomial data complexity.  The
benchmark F5.qf exhibits the polynomial-vs-exponential crossover against
the naive repair-enumeration evaluator.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.constraints.conflict_graph import ConflictGraph
from repro.cqa.answers import Verdict
from repro.exceptions import QueryError
from repro.query.ast import Atom, Comparison, Formula, Not, is_ground
from repro.query.evaluator import _compare
from repro.query.normalize import LiteralConjunction, to_dnf
from repro.relational.rows import Row


class _RowIndex:
    """Maps ground atoms to instance rows."""

    def __init__(self, graph: ConflictGraph) -> None:
        self._index: Dict[Tuple[str, Tuple], Row] = {
            (row.relation, row.values): row for row in graph.vertices
        }

    def lookup(self, atom: Atom) -> Optional[Row]:
        values = tuple(term.value for term in atom.terms)  # type: ignore[union-attr]
        return self._index.get((atom.relation, values))


def _comparisons_hold(comparisons: Sequence[Comparison]) -> bool:
    for comparison in comparisons:
        left = comparison.left.value  # type: ignore[union-attr]
        right = comparison.right.value  # type: ignore[union-attr]
        if not _compare(comparison.op, left, right):
            return False
    return True


def _disjunct_satisfiable_in_some_repair(
    literals: LiteralConjunction, graph: ConflictGraph, index: _RowIndex
) -> bool:
    if not _comparisons_hold(literals.comparisons):
        return False

    positives: Set[Row] = set()
    for atom in literals.positive:
        row = index.lookup(atom)
        if row is None:
            return False  # fact absent from the instance: no repair has it
        positives.add(row)
    if not graph.is_independent(positives):
        return False

    # Rows that can never join a repair containing the positives.
    blocked = {
        vertex
        for row in positives
        for vertex in graph.neighbours(row)
    }

    pending: List[Row] = []
    for atom in literals.negative:
        row = index.lookup(atom)
        if row is None:
            continue  # fact absent: every repair excludes it already
        if row in positives:
            return False  # contradictory literals
        if row in blocked:
            continue  # conflicts with a positive: auto-excluded
        pending.append(row)

    # Choose an independent witness neighbour for each pending negative.
    candidate_sets: List[List[Row]] = []
    for row in pending:
        candidates = [
            witness
            for witness in graph.neighbours(row)
            if witness not in blocked
        ]
        if not candidates:
            # Every neighbour conflicts with the positives, so any repair
            # containing the positives contains `row` by maximality.
            return False
        candidate_sets.append(sorted(candidates))

    for witnesses in product(*candidate_sets):
        chosen = positives | set(witnesses)
        if graph.is_independent(chosen):
            return True
    return False


def some_repair_satisfies_qf(query: Formula, graph: ConflictGraph) -> bool:
    """Whether *some* repair satisfies a ground quantifier-free query."""
    if not is_ground(query):
        raise QueryError(
            "the tractable algorithm handles ground quantifier-free queries"
        )
    index = _RowIndex(graph)
    for literal_list in to_dnf(query):
        literals = LiteralConjunction.from_literals(literal_list)
        if _disjunct_satisfiable_in_some_repair(literals, graph, index):
            return True
    return False


def consistent_answer_qf(query: Formula, graph: ConflictGraph) -> Verdict:
    """Three-valued consistent answer to a ground quantifier-free query.

    PTIME in the data (Figure 5 row ``Rep``, column {∀,∃}-free).
    """
    if not is_ground(query):
        raise QueryError(
            "the tractable algorithm handles ground quantifier-free queries"
        )
    negation_satisfiable = some_repair_satisfies_qf(Not(query), graph)
    if not negation_satisfiable:
        return Verdict.TRUE
    if not some_repair_satisfies_qf(query, graph):
        return Verdict.FALSE
    return Verdict.UNDETERMINED


def is_consistently_true_qf(query: Formula, graph: ConflictGraph) -> bool:
    """``true`` iff every repair satisfies the ground QF query (PTIME)."""
    return consistent_answer_qf(query, graph) is Verdict.TRUE
