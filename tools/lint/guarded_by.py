#!/usr/bin/env python3
"""Concurrency lint: ``# guarded-by`` checking and lock-order cycles.

The threaded layers (broker, rwlock, metrics registry, shared caches)
protect their mutable attributes with per-object locks.  Nothing in
Python enforces that an attribute annotated as lock-protected is only
touched while the lock is held — a refactor can silently move an access
outside the ``with`` block and the race only shows up under load.  This
tool makes the convention checkable:

* **guarded-by pass** — an instance attribute whose initialising
  assignment carries a trailing ``# guarded-by: <lock>`` comment must,
  in every method of the class except ``__init__`` (the object is not
  shared during construction), be read or written only inside a
  lexically enclosing ``with self.<lock>:`` block.  A deliberate
  unsynchronised access (a racy-but-benign snapshot read, a
  double-checked fast path) is marked on its line with
  ``# lint: unguarded-ok``.

* **lock-order pass** — every ``with`` acquiring a lock-like object
  (``self._lock``, ``entry.compute_lock``, ``entry.rw.read()`` /
  ``.write()``, names containing ``lock`` or ``_condition``) while
  another is lexically held contributes a directed edge
  *held → acquired*.  A cycle in the union of these edges across all
  linted files is a potential deadlock and fails the lint.

Both passes are purely lexical (``ast`` + ``tokenize``): they cannot
see locks passed through helper calls, so they under-approximate — a
clean run is a necessary, not sufficient, condition.  That is the right
trade for a zero-dependency CI gate.

Usage::

    python tools/lint/guarded_by.py            # lint the default modules
    python tools/lint/guarded_by.py FILE...    # lint specific files
"""

from __future__ import annotations

import argparse
import ast
import io
import sys
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

ROOT = Path(__file__).resolve().parent.parent.parent

#: The threaded modules the convention applies to (relative to repo
#: root).  ``incremental/cache.py`` is single-threaded by design and
#: carries no annotations — scanning it asserts exactly that.
DEFAULT_FILES = (
    "src/repro/service/broker.py",
    "src/repro/service/loadgen.py",
    "src/repro/service/rwlock.py",
    "src/repro/obs/registry.py",
    "src/repro/obs/recorder.py",
    "src/repro/query/evaluator.py",
    "src/repro/incremental/cache.py",
)

GUARDED_BY_MARK = "guarded-by:"
SUPPRESS_MARK = "lint: unguarded-ok"


def _comments_by_line(source: str) -> Dict[int, str]:
    """Map line number -> comment text (without ``#``) for ``source``."""
    comments: Dict[int, str] = {}
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comments[token.start[0]] = token.string.lstrip("#").strip()
    return comments


def _self_attribute(node: ast.expr) -> Optional[str]:
    """``self.X`` -> ``"X"``, anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_token(item: ast.withitem, class_name: str) -> Optional[str]:
    """A stable name for the lock a ``with`` item acquires, or None.

    ``self.<name>`` -> ``Class.<name>``; ``entry.compute_lock`` ->
    ``entry.compute_lock``; ``entry.rw.read()`` -> ``entry.rw``.  Bare
    names (e.g. a lock chosen conditionally into a local) are opaque to
    a lexical pass and yield None.
    """
    expr = item.context_expr
    # with x.rw.read():  /  with x.rw.write():
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in ("read", "write")
    ):
        expr = expr.func.value
    if not isinstance(expr, ast.Attribute):
        return None
    name = expr.attr
    if "lock" not in name.lower() and name not in ("_condition", "rw"):
        return None
    owner = _self_attribute(expr)
    if owner is not None or (
        isinstance(expr.value, ast.Name) and expr.value.id == "self"
    ):
        return f"{class_name}.{name}"
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return None


class Violation:
    def __init__(self, path: Path, line: int, message: str) -> None:
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"


class _ClassLinter:
    """Guarded-by pass over one class definition."""

    def __init__(
        self,
        path: Path,
        class_node: ast.ClassDef,
        comments: Dict[int, str],
    ) -> None:
        self.path = path
        self.node = class_node
        self.comments = comments
        #: attribute name -> guarding lock attribute name
        self.guards: Dict[str, str] = {}
        self.violations: List[Violation] = []

    def collect_guards(self) -> None:
        for assign in ast.walk(self.node):
            if not isinstance(assign, (ast.Assign, ast.AnnAssign)):
                continue
            comment = self.comments.get(assign.lineno, "")
            if GUARDED_BY_MARK not in comment:
                continue
            lock = comment.split(GUARDED_BY_MARK, 1)[1].strip()
            targets = (
                assign.targets
                if isinstance(assign, ast.Assign)
                else [assign.target]
            )
            for target in targets:
                attr = _self_attribute(target)
                if attr is not None:
                    self.guards[attr] = lock

    def check(self) -> None:
        self.collect_guards()
        if not self.guards:
            return
        for item in self.node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":
                continue  # not shared during construction
            self._check_function(item, held=frozenset())

    def _check_function(
        self, func: ast.AST, held: "frozenset[str]"
    ) -> None:
        body = getattr(func, "body", [])
        for statement in body:
            self._check_statement(statement, held)

    def _check_statement(self, node: ast.stmt, held: "frozenset[str]") -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                self._check_expression(item.context_expr, held)
                lock = self._held_lock_name(item)
                if lock is not None:
                    acquired.add(lock)
            for inner in node.body:
                self._check_statement(inner, frozenset(acquired))
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function may escape the lock scope; check it as
            # if no lock were held (conservative).
            self._check_function(node, held=frozenset())
            return
        for child_expr in ast.iter_child_nodes(node):
            if isinstance(child_expr, ast.expr):
                self._check_expression(child_expr, held)
            elif isinstance(child_expr, ast.stmt):
                self._check_statement(child_expr, held)
            elif isinstance(child_expr, (ast.excepthandler,)):
                for inner in child_expr.body:
                    self._check_statement(inner, held)
        # Compound statements carry their bodies in list fields that
        # iter_child_nodes already yields as stmt nodes, so the loop
        # above covers if/for/while/try bodies.

    def _held_lock_name(self, item: ast.withitem) -> Optional[str]:
        """The ``self.<lock>`` attribute a with-item acquires, or None."""
        expr = item.context_expr
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("read", "write")
        ):
            expr = expr.func.value
        attr = _self_attribute(expr)
        return attr

    def _check_expression(
        self, node: ast.expr, held: "frozenset[str]"
    ) -> None:
        for sub in ast.walk(node):
            attr = (
                _self_attribute(sub) if isinstance(sub, ast.Attribute) else None
            )
            if attr is None or attr not in self.guards:
                continue
            lock = self.guards[attr]
            if lock in held:
                continue
            comment = self.comments.get(sub.lineno, "")
            if SUPPRESS_MARK in comment:
                continue
            self.violations.append(
                Violation(
                    self.path,
                    sub.lineno,
                    f"{self.node.name}.{attr} is guarded by "
                    f"self.{lock} but accessed without it "
                    f"(add `with self.{lock}:` or `# {SUPPRESS_MARK}`)",
                )
            )


def _collect_lock_edges(
    path: Path, tree: ast.Module
) -> Set[Tuple[str, str, int]]:
    """(held, acquired, line) triples from lexically nested ``with``s."""
    edges: Set[Tuple[str, str, int]] = set()

    def walk(node: ast.AST, held: Tuple[str, ...], class_name: str) -> None:
        if isinstance(node, ast.ClassDef):
            for child in ast.iter_child_nodes(node):
                walk(child, held, node.name)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner_held = list(held)
            for item in node.items:
                token = _lock_token(item, class_name)
                if token is None:
                    continue
                for outer in inner_held:
                    if outer != token:
                        edges.add((outer, token, node.lineno))
                inner_held.append(token)
            for statement in node.body:
                walk(statement, tuple(inner_held), class_name)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in ast.iter_child_nodes(node):
                walk(child, (), class_name)
            return
        for child in ast.iter_child_nodes(node):
            walk(child, held, class_name)

    walk(tree, (), path.stem)
    return edges


def _find_cycle(
    edges: Iterable[Tuple[str, str, int]]
) -> Optional[List[str]]:
    """A lock-order cycle as a token list, or None if the graph is a DAG."""
    graph: Dict[str, Set[str]] = {}
    for held, acquired, _ in edges:
        graph.setdefault(held, set()).add(acquired)
        graph.setdefault(acquired, set())
    WHITE, GREY, BLACK = 0, 1, 2
    color = {token: WHITE for token in graph}
    stack: List[str] = []

    def visit(token: str) -> Optional[List[str]]:
        color[token] = GREY
        stack.append(token)
        for successor in sorted(graph[token]):
            if color[successor] == GREY:
                return stack[stack.index(successor):] + [successor]
            if color[successor] == WHITE:
                cycle = visit(successor)
                if cycle is not None:
                    return cycle
        stack.pop()
        color[token] = BLACK
        return None

    for token in sorted(graph):
        if color[token] == WHITE:
            cycle = visit(token)
            if cycle is not None:
                return cycle
    return None


def lint_source(
    path: Path, source: str
) -> Tuple[List[Violation], Set[Tuple[str, str, int]], int]:
    """Lint one file: (violations, lock edges, guarded attribute count)."""
    comments = _comments_by_line(source)
    tree = ast.parse(source, filename=str(path))
    violations: List[Violation] = []
    guarded = 0
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            linter = _ClassLinter(path, node, comments)
            linter.check()
            guarded += len(linter.guards)
            violations.extend(linter.violations)
    edges = _collect_lock_edges(path, tree)
    return violations, edges, guarded


def run(paths: Sequence[Path]) -> int:
    all_violations: List[Violation] = []
    all_edges: Set[Tuple[str, str, int]] = set()
    guarded_total = 0
    for path in paths:
        source = path.read_text(encoding="utf-8")
        violations, edges, guarded = lint_source(path, source)
        all_violations.extend(violations)
        all_edges.update(edges)
        guarded_total += guarded
    for violation in sorted(
        all_violations, key=lambda v: (str(v.path), v.line)
    ):
        print(violation, file=sys.stderr)
    cycle = _find_cycle(all_edges)
    if cycle is not None:
        print(
            "lock-order cycle (potential deadlock): " + " -> ".join(cycle),
            file=sys.stderr,
        )
    status = 1 if (all_violations or cycle) else 0
    print(
        f"guarded-by lint: {guarded_total} guarded attributes, "
        f"{len(all_violations)} violation(s); lock-order graph: "
        f"{len(all_edges)} edge(s), "
        f"{'CYCLIC' if cycle else 'acyclic'}"
    )
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        help="files to lint (default: the threaded repro modules)",
    )
    args = parser.parse_args(argv)
    if args.files:
        paths = [Path(name) for name in args.files]
    else:
        paths = [ROOT / name for name in DEFAULT_FILES]
    missing = [path for path in paths if not path.is_file()]
    if missing:
        for path in missing:
            print(f"no such file: {path}", file=sys.stderr)
        return 2
    return run(paths)


if __name__ == "__main__":
    sys.exit(main())
