"""Workload capture: entry validation, deterministic export, the
versioned JSON-lines format, and loader rejection of malformed files."""

from __future__ import annotations

import json

import pytest

from repro.obs.recorder import QueryRecord
from repro.obs.workload import (
    FORMAT_NAME,
    FORMAT_VERSION,
    Workload,
    WorkloadEntry,
    WorkloadError,
    export_from_debug_payload,
    export_from_records,
    load,
    loads,
    normalize_entries,
)


def _record(query: str, family: str = "G-Rep", database: str = "db") -> QueryRecord:
    return QueryRecord(
        trace_id="t", query=query, engine="sqlite", route="sqlite",
        family=family, seconds=0.001, started_at=1.0, database=database,
    )


class TestWorkloadEntry:
    def test_query_entry_roundtrips(self):
        entry = WorkloadEntry(
            kind="query", query="EXISTS y . R(x, y)", family="G",
            variables=("x",), weight=3,
        )
        assert WorkloadEntry.from_dict(entry.to_dict()) == entry
        assert entry.is_read

    def test_churn_entry_roundtrips_and_draws_unique_rows(self):
        entry = WorkloadEntry(kind="churn", relation="W", values=(0, 9))
        assert WorkloadEntry.from_dict(entry.to_dict()) == entry
        assert not entry.is_read
        assert entry.churn_values(0) == [1_000_000, 9]
        assert entry.churn_values(5) == [1_000_005, 9]

    def test_family_aliases_accept_str_family_forms(self):
        entry = WorkloadEntry.from_dict(
            {"kind": "query", "query": "Q", "family": "G-Rep"}
        )
        assert entry.family == "G"

    @pytest.mark.parametrize(
        "payload",
        [
            {"kind": "nope", "query": "Q"},
            {"kind": "query", "query": ""},
            {"kind": "query", "query": "Q", "weight": 0},
            {"kind": "query", "query": "Q", "weight": True},
            {"kind": "query", "query": "Q", "family": "Z"},
            {"kind": "churn"},
            {"kind": "churn", "relation": "W", "values": []},
            {"kind": "churn", "relation": "W", "values": [1], "unique_column": 3},
        ],
    )
    def test_malformed_entries_are_rejected(self, payload):
        with pytest.raises(WorkloadError):
            WorkloadEntry.from_dict(payload)


class TestNormalize:
    def test_duplicates_merge_weights_in_stable_order(self):
        entries = [
            WorkloadEntry(kind="query", query="B", weight=1),
            WorkloadEntry(kind="query", query="A", weight=2),
            WorkloadEntry(kind="query", query="B", weight=4),
        ]
        merged = normalize_entries(entries)
        assert [(e.query, e.weight) for e in merged] == [("A", 2), ("B", 5)]

    def test_order_is_input_independent(self):
        a = WorkloadEntry(kind="query", query="A")
        b = WorkloadEntry(kind="churn", relation="W", values=(1,))
        assert normalize_entries([a, b]) == normalize_entries([b, a])


class TestExport:
    def test_records_aggregate_by_identity_with_occurrence_weights(self):
        records = [_record("Q1"), _record("Q1"), _record("Q2", family="C-Rep")]
        workload = export_from_records(records, name="caught")
        assert workload.name == "caught"
        weights = {e.query: (e.weight, e.family) for e in workload.entries}
        assert weights == {"Q1": (2, "G"), "Q2": (1, "C")}

    def test_export_is_deterministic_bytes(self):
        records = [_record("Q2"), _record("Q1"), _record("Q2")]
        first = export_from_records(records).dumps()
        second = export_from_records(list(reversed(records))).dumps()
        assert first == second

    def test_debug_payload_export(self):
        payload = {"queries": [_record("Q").to_dict()]}
        workload = export_from_debug_payload(payload)
        assert workload.entries[0].query == "Q"

    def test_empty_sources_are_errors(self):
        with pytest.raises(WorkloadError):
            export_from_records([])
        with pytest.raises(WorkloadError):
            export_from_debug_payload({"queries": []})


class TestFileFormat:
    def _workload(self) -> Workload:
        return Workload(
            entries=(
                WorkloadEntry(kind="query", query="Q", family="G"),
                WorkloadEntry(kind="churn", relation="W", values=(0, 1)),
            ),
            name="demo",
            source="test",
        )

    def test_roundtrip_through_text(self):
        workload = self._workload()
        again = loads(workload.dumps())
        assert again == workload

    def test_roundtrip_through_disk(self, tmp_path):
        path = str(tmp_path / "w.jsonl")
        self._workload().save(path)
        assert load(path) == self._workload()

    def test_header_carries_magic_and_version(self):
        header = json.loads(self._workload().dumps().splitlines()[0])
        assert header["workload"] == FORMAT_NAME
        assert header["version"] == FORMAT_VERSION
        assert header["entries"] == 2

    def test_missing_header_is_rejected(self):
        with pytest.raises(WorkloadError, match="header"):
            loads('{"kind": "query", "query": "Q"}')

    def test_unknown_version_is_rejected(self):
        text = self._workload().dumps().replace('"version": 1', '"version": 99')
        with pytest.raises(WorkloadError, match="version"):
            loads(text)

    def test_entry_errors_carry_line_numbers(self):
        lines = self._workload().dumps().splitlines()
        lines[1] = '{"kind": "query", "query": ""}'
        with pytest.raises(WorkloadError, match="line 2"):
            loads("\n".join(lines))

    def test_declared_count_mismatch_is_rejected(self):
        lines = self._workload().dumps().splitlines()[:-1]
        with pytest.raises(WorkloadError, match="declares"):
            loads("\n".join(lines))

    def test_empty_file_and_empty_workload_are_rejected(self):
        with pytest.raises(WorkloadError):
            loads("")
        with pytest.raises(WorkloadError):
            Workload(entries=())

    def test_reads_writes_split(self):
        workload = self._workload()
        assert len(workload.reads) == 1
        assert len(workload.writes) == 1
