"""Unit and property tests for the winnow operator ω≻."""

from hypothesis import given, settings

from repro.constraints.conflict_graph import build_conflict_graph
from repro.datagen.generators import GRID_FDS
from repro.datagen.paper_instances import example7_scenario, mgr_scenario
from repro.priorities.priority import Priority, empty_priority
from repro.priorities.winnow import winnow, winnow_naive
from tests.conftest import key_priorities


class TestWinnow:
    def test_undominated_survive(self):
        scenario = example7_scenario()
        result = winnow(scenario.priority, scenario.graph.vertices)
        assert result == scenario.row_set("ta")

    def test_empty_priority_keeps_everything(self):
        scenario = mgr_scenario()
        priority = empty_priority(scenario.graph)
        assert winnow(priority, scenario.graph.vertices) == scenario.graph.vertices

    def test_domination_is_relative_to_the_set(self):
        scenario = example7_scenario()
        ta, tb = scenario.rows["ta"], scenario.rows["tb"]
        # Without ta in the set, tb is no longer dominated.
        assert winnow(scenario.priority, {tb}) == {tb}

    def test_winnow_of_empty_set(self):
        scenario = example7_scenario()
        assert winnow(scenario.priority, frozenset()) == frozenset()

    def test_mgr_winnow(self):
        scenario = mgr_scenario()
        result = winnow(scenario.priority, scenario.graph.vertices)
        assert result == scenario.row_set("mary_rd", "john_rd")

    @given(key_priorities())
    @settings(max_examples=60, deadline=None)
    def test_indexed_equals_naive(self, data):
        _, priority = data
        rows = priority.graph.vertices
        assert winnow(priority, rows) == winnow_naive(priority, rows)

    @given(key_priorities())
    @settings(max_examples=60, deadline=None)
    def test_winnow_nonempty_on_nonempty_set(self, data):
        """Acyclic priorities always leave an undominated tuple."""
        _, priority = data
        rows = priority.graph.vertices
        if rows:
            assert winnow(priority, rows)
