"""Unit and property tests for priority relations (Definition 2)."""

import pytest
from hypothesis import given, settings

from repro.constraints.conflict_graph import build_conflict_graph
from repro.datagen.generators import GRID_FDS
from repro.datagen.paper_instances import (
    example7_scenario,
    example9_printed,
    example9_reconstructed,
    mgr_scenario,
)
from repro.exceptions import CyclicPriorityError, NonConflictingPriorityError
from repro.priorities.priority import Priority, empty_priority
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema
from tests.conftest import key_priorities

KV = RelationSchema("R", ["A:number", "B:number"])


def triangle():
    """Three mutually conflicting tuples (one key group)."""
    instance = RelationInstance.from_values(KV, [(1, 1), (1, 2), (1, 3)])
    graph = build_conflict_graph(instance, GRID_FDS)
    t1, t2, t3 = (Row(KV, (1, b)) for b in (1, 2, 3))
    return graph, t1, t2, t3


class TestValidation:
    def test_only_conflicting_pairs(self):
        instance = RelationInstance.from_values(KV, [(1, 1), (2, 2)])
        graph = build_conflict_graph(instance, GRID_FDS)
        with pytest.raises(NonConflictingPriorityError):
            Priority(graph, [(Row(KV, (1, 1)), Row(KV, (2, 2)))])

    def test_two_cycle_rejected(self):
        graph, t1, t2, _ = triangle()
        with pytest.raises(CyclicPriorityError):
            Priority(graph, [(t1, t2), (t2, t1)])

    def test_three_cycle_rejected(self):
        graph, t1, t2, t3 = triangle()
        with pytest.raises(CyclicPriorityError):
            Priority(graph, [(t1, t2), (t2, t3), (t3, t1)])

    def test_acyclic_triangle_orientation_accepted(self):
        graph, t1, t2, t3 = triangle()
        priority = Priority(graph, [(t1, t2), (t2, t3), (t1, t3)])
        assert priority.is_total


class TestRelation:
    def test_dominates_and_indexes(self):
        graph, t1, t2, t3 = triangle()
        priority = Priority(graph, [(t1, t2), (t1, t3)])
        assert priority.dominates(t1, t2)
        assert not priority.dominates(t2, t1)
        assert priority.dominators_of(t2) == {t1}
        assert priority.dominated_by(t1) == {t2, t3}

    def test_totality(self):
        scenario = mgr_scenario()
        assert not scenario.priority.is_total  # s1-vs-s2 conflict open
        assert empty_priority(scenario.graph).is_empty

    def test_unoriented_edges(self):
        scenario = mgr_scenario()
        free = scenario.priority.unoriented_edges()
        assert free == [
            frozenset({scenario.rows["mary_rd"], scenario.rows["john_rd"]})
        ]


class TestExtension:
    def test_extend_and_is_extension_of(self):
        graph, t1, t2, t3 = triangle()
        base = Priority(graph, [(t1, t2)])
        extended = base.extend([(t1, t3)])
        assert extended.is_extension_of(base)
        assert not base.is_extension_of(extended)

    def test_extend_rejects_reorientation(self):
        graph, t1, t2, _ = triangle()
        base = Priority(graph, [(t1, t2)])
        with pytest.raises(CyclicPriorityError):
            base.extend([(t2, t1)])

    def test_total_extensions_of_total_priority_is_itself(self):
        graph, t1, t2, t3 = triangle()
        total = Priority(graph, [(t1, t2), (t2, t3), (t1, t3)])
        assert list(total.total_extensions()) == [total]

    def test_total_extensions_count_on_triangle(self):
        # A triangle has 6 acyclic orientations (3! linear orders).
        graph, *_ = triangle()
        assert len(list(empty_priority(graph).total_extensions())) == 6

    def test_total_extensions_respect_base(self):
        graph, t1, t2, t3 = triangle()
        base = Priority(graph, [(t1, t2)])
        extensions = list(base.total_extensions())
        assert len(extensions) == 3  # 6 orientations, half have t1≻t2
        assert all(ext.is_extension_of(base) for ext in extensions)
        assert all(ext.is_total for ext in extensions)

    def test_total_extensions_limit(self):
        graph, *_ = triangle()
        assert len(list(empty_priority(graph).total_extensions(limit=2))) == 2

    def test_some_total_extension(self):
        scenario = mgr_scenario()
        total = scenario.priority.some_total_extension()
        assert total.is_total
        assert total.is_extension_of(scenario.priority)

    @given(key_priorities())
    @settings(max_examples=40, deadline=None)
    def test_some_total_extension_always_valid(self, data):
        _, priority = data
        total = priority.some_total_extension()
        assert total.is_total and total.is_extension_of(priority)


class TestCyclicExtendability:
    def test_forest_is_never_cyclically_extendable(self):
        # The printed Example 9 graph is a path: no orientation can cycle.
        scenario = example9_printed()
        assert not scenario.priority.extendable_to_cyclic_orientation()

    def test_k32_with_chain_is_extendable(self):
        # The reconstructed Example 9: free edge ta-td closes a cycle.
        scenario = example9_reconstructed()
        assert scenario.priority.extendable_to_cyclic_orientation()

    def test_triangle_empty_priority_extendable(self):
        graph, *_ = triangle()
        assert empty_priority(graph).extendable_to_cyclic_orientation()

    def test_fully_oriented_acyclic_not_extendable(self):
        graph, t1, t2, t3 = triangle()
        total = Priority(graph, [(t1, t2), (t2, t3), (t1, t3)])
        assert not total.extendable_to_cyclic_orientation()

    @given(key_priorities())
    @settings(max_examples=40, deadline=None)
    def test_non_extendable_priorities_have_acyclic_total_extensions(self, data):
        """Sanity: when extension-to-cyclic is impossible, every total
        extension we enumerate is indeed acyclic (they validate)."""
        _, priority = data
        if priority.extendable_to_cyclic_orientation():
            return
        for total in priority.total_extensions(limit=8):
            assert total.is_total  # construction already validated acyclicity


class TestRestriction:
    def test_restricted_to_subset(self):
        scenario = example7_scenario()
        ta, tb = scenario.rows["ta"], scenario.rows["tb"]
        restricted = scenario.priority.restricted_to({ta, tb})
        assert restricted.edges == {(ta, tb)}
