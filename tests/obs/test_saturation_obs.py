"""Saturation observability: process gauges, throughput/in-flight
metrics, and concurrent scrapes of /metrics and /debug/queries while
the load generator is driving traffic (no torn snapshots, no 500s)."""

from __future__ import annotations

import json
import re
import threading
import urllib.request

import pytest

from repro.datagen.generators import CHAIN_FDS, chain_instance
from repro.obs import RECORDER, REGISTRY, observe_process
from repro.obs.workload import Workload, WorkloadEntry
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.service.broker import Request, RequestBroker
from repro.service.loadgen import CellSpec, InProcessTarget, LoadGenerator
from repro.service.server import ServiceFrontEnd, make_http_server

_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.e+-]+$|^.* \+Inf.*$"
)

SCRATCH = RelationSchema("W", ["K:number", "V:number"])

WORKLOAD = Workload(
    entries=(
        WorkloadEntry(
            kind="query",
            query="EXISTS b, c, d . R(a, b, c, d)",
            variables=("a",),
        ),
        WorkloadEntry(
            kind="query",
            query="EXISTS a, b, c, d . R(a, b, c, d) AND a >= 1",
        ),
        WorkloadEntry(kind="churn", relation="W", values=(0, 1)),
    ),
)


@pytest.fixture
def broker():
    broker = RequestBroker()
    broker.register(
        "chain",
        Database([chain_instance(5), RelationInstance(SCRATCH)]),
        CHAIN_FDS,
    )
    yield broker
    broker.close()


@pytest.fixture
def front(broker):
    return ServiceFrontEnd(broker)


class TestProcessGauges:
    def test_observe_process_sets_thread_gc_and_rss_gauges(self):
        observe_process()
        snapshot = REGISTRY.snapshot()
        assert snapshot["repro_process_threads"]["values"][""] >= 1
        generations = snapshot["repro_process_gc_collections"]["values"]
        assert set(generations) == {"0", "1", "2"}
        rss = snapshot.get("repro_process_resident_bytes")
        if rss is not None:  # absent only where /proc and rusage fail
            assert rss["values"][""] > 0

    def test_disabled_registry_records_nothing(self):
        REGISTRY.enabled = False
        try:
            observe_process()
            assert REGISTRY.snapshot() == {}
        finally:
            REGISTRY.enabled = True

    def test_metrics_endpoint_refreshes_process_gauges(self, front):
        exposition = front.metrics()
        assert "repro_process_threads" in exposition
        assert "repro_process_gc_collections" in exposition

    def test_stats_endpoint_refreshes_process_gauges(self, front):
        stats = front.stats()
        assert "repro_process_threads" in stats["metrics"]


class TestThroughputAndInflight:
    def test_requests_total_counts_batch_sizes(self, broker):
        broker.submit([Request("EXISTS a, b, c, d . R(a, b, c, d)")] * 3)
        snapshot = REGISTRY.snapshot()
        assert snapshot["repro_requests_total"]["values"][""] == 3

    def test_inflight_gauge_returns_to_zero(self, broker):
        broker.submit([Request("EXISTS a, b, c, d . R(a, b, c, d)")])
        snapshot = REGISTRY.snapshot()
        assert snapshot["repro_inflight_requests"]["values"][""] == 0

    def test_rejected_total_appears_on_rejection(self, broker):
        broker.admission.max_inflight = 1
        broker.admission.max_queue = 0
        from repro.exceptions import AdmissionError

        with broker.admission.admit():
            with pytest.raises(AdmissionError):
                broker.submit([Request("EXISTS a, b, c, d . R(a, b, c, d)")])
        snapshot = REGISTRY.snapshot()
        assert snapshot["repro_rejected_total"]["values"][""] == 1


class TestScrapeUnderLoad:
    """/metrics and /debug/queries stay coherent while loadgen runs."""

    @pytest.fixture
    def server(self, front):
        server = make_http_server(front, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()

    def _url(self, server, path):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}{path}"

    def test_concurrent_scrapes_see_no_errors_or_torn_output(
        self, front, server
    ):
        generator = LoadGenerator(InProcessTarget(front), WORKLOAD)
        spec = CellSpec(
            concurrency=4, write_fraction=0.3, requests=300, seed=11
        )
        failures = []
        done = threading.Event()

        def scrape():
            while not done.is_set():
                try:
                    with urllib.request.urlopen(
                        self._url(server, "/metrics"), timeout=5
                    ) as response:
                        if response.status != 200:
                            failures.append(("status", response.status))
                        text = response.read().decode()
                    for line in text.splitlines():
                        if line.startswith("#") or not line:
                            continue
                        if not _SAMPLE.match(line):
                            failures.append(("torn-sample", line))
                    with urllib.request.urlopen(
                        self._url(server, "/debug/queries?limit=50"),
                        timeout=5,
                    ) as response:
                        if response.status != 200:
                            failures.append(("status", response.status))
                        body = json.loads(response.read())
                    if body["count"] != len(body["queries"]):
                        failures.append(("torn-count", body["count"]))
                    for record in body["queries"]:
                        if "trace_id" not in record or "query" not in record:
                            failures.append(("torn-record", record))
                except Exception as exc:  # any scrape error is a failure
                    failures.append(("exception", repr(exc)))

        scrapers = [threading.Thread(target=scrape) for _ in range(2)]
        for scraper in scrapers:
            scraper.start()
        try:
            cell = generator.run_cell(spec)
        finally:
            done.set()
            for scraper in scrapers:
                scraper.join(timeout=10)
        assert not failures, failures[:5]
        assert cell.verified

        # Recorder counters are consistent after the dust settles:
        # everything retained was recorded, nothing was double-counted.
        summary = RECORDER.summary()
        assert summary["recorded"] <= summary["started"]
        assert summary["sampled"] <= summary["recorded"]
        assert summary["ring_entries"] <= summary["sampled"]
        # repro_requests_total counts broker submissions — the serial
        # reference pass (one per distinct query) plus every replayed
        # read; churn ops go through the update path, not submit().
        from repro.service.loadgen import build_schedule

        reads = sum(
            op.entry.is_read
            for ops in build_schedule(WORKLOAD, spec)
            for op in ops
        )
        snapshot = REGISTRY.snapshot()
        assert snapshot["repro_requests_total"]["values"][""] == (
            reads + len(WORKLOAD.reads)
        )
        assert snapshot["repro_inflight_requests"]["values"][""] == 0
