"""The mutable counterpart of :class:`repro.cqa.engine.CqaEngine`.

:class:`IncrementalCqaEngine` serves the same preferred-CQA semantics
(Definition 3, all five repair families) over an instance that evolves
tuple by tuple.  Three layers make re-answering after an update cheap:

1. the conflict graph is a :class:`DynamicConflictGraph` — an
   ``insert``/``delete`` recomputes only the affected FD buckets and
   components, never the whole graph;
2. repairs are cached **per connected component** and keyed by content
   fingerprints, so an update invalidates exactly the merged or split
   components and every other component's repair set is reused;
3. safe conjunctive queries are answered from an incrementally
   maintained witness index: the engine checks which per-component
   fragment choices cover a witness support instead of materializing
   the (exponentially large) cross-product of repairs.

Priority edges are *declared*, not frozen: an edge whose endpoints stop
conflicting after an update is silently deactivated (and reactivates if
the conflict returns) instead of raising ``QueryError`` the way the
immutable engine's constructor would.
"""

from __future__ import annotations

import time
from itertools import product
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.answers import ClosedAnswer, OpenAnswers, Verdict
from repro.exceptions import CyclicPriorityError, QueryError, SchemaError
from repro.priorities.priority import Priority, PriorityEdge, digraph_has_cycle
from repro.query.ast import Formula, constants_of
from repro.query.evaluator import ContextCache
from repro.query.evaluator import answers as evaluate_answers
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query
from repro.query.sql import sql_to_formula
from repro.obs import annotate, observe_query
from repro.obs import span as obs_span
from repro.query.validate import check_against_schema
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.repairs.enumerate import repair_sort_key

from repro.incremental.cache import ComponentRepairCache
from repro.incremental.dynamic_graph import DynamicConflictGraph, GraphDelta
from repro.incremental.witnesses import (
    ConjunctivePlan,
    WitnessIndex,
    conjunctive_plan,
)

Repair = FrozenSet[Row]

#: Key of a cached witness index: the formula plus the answer columns.
_WitnessKey = Tuple[Formula, Tuple[str, ...]]


#: Cycle check on raw (winner, loser) pairs, no graph needed — the
#: shared colouring DFS from the priorities layer.
_digraph_has_cycle = digraph_has_cycle


class IncrementalCqaEngine:
    """Preferred consistent query answering over a mutable instance."""

    def __init__(
        self,
        data: Union[RelationInstance, Database, Iterable[Row], None] = None,
        dependencies: Sequence[FunctionalDependency] = (),
        priority: Union[Priority, Iterable[PriorityEdge], None] = None,
        family: Family = Family.REP,
        cache_entries: int = 4096,
        witness_indexes: int = 32,
        naive: bool = False,
    ) -> None:
        self.dependencies = tuple(dependencies)
        self.family = family
        self.naive = naive
        self._route = "naive" if naive else "indexed"
        self._schemas: Dict[str, RelationSchema] = {}
        self._db_schema: Optional[DatabaseSchema] = None
        rows: List[Row] = []
        if isinstance(data, RelationInstance):
            self._register_schema(data.schema)
            rows = list(data.rows)
        elif isinstance(data, Database):
            for instance in data:
                self._register_schema(instance.schema)
            rows = list(data.all_rows())
        elif data is not None:
            rows = list(data)
        self.graph = DynamicConflictGraph(dependencies=self.dependencies)
        self._rows_by_relation: Dict[str, Set[Row]] = {}
        self._cache = ComponentRepairCache(max_entries=cache_entries)
        # Re-validations after updates reassemble the same repairs over
        # and over; contexts are content-keyed, so unchanged repairs
        # keep their indexes and plans across updates.
        self._contexts = ContextCache(max_entries=cache_entries, naive=naive)
        if witness_indexes < 1:
            raise ValueError("witness_indexes must be positive")
        self._max_witness_indexes = witness_indexes
        self._witnesses: Dict[_WitnessKey, WitnessIndex] = {}
        if isinstance(priority, Priority):
            declared: Tuple[PriorityEdge, ...] = tuple(priority.edges)
        else:
            declared = tuple(priority or ())
        if _digraph_has_cycle(declared):
            raise CyclicPriorityError("declared priority contains a cycle")
        self._declared: List[PriorityEdge] = list(declared)
        # Declared rows carry schemas even before they are inserted, so
        # queries can be validated against relations known only from
        # the priority (or from rows deleted down to an empty relation).
        for winner, loser in self._declared:
            self._register_schema(winner.schema)
            self._register_schema(loser.schema)
        self.updates_applied = 0
        for row in rows:
            self._apply_insert(row)

    # Schema handling ----------------------------------------------------------

    def _register_schema(self, schema: RelationSchema) -> None:
        known = self._schemas.get(schema.name)
        if known is None:
            self._schemas[schema.name] = schema
            self._db_schema = None
        elif (known.name, known.attributes) != (schema.name, schema.attributes):
            raise SchemaError(
                f"conflicting schemas for relation {schema.name!r}"
            )

    @property
    def schema(self) -> DatabaseSchema:
        if self._db_schema is None:
            self._db_schema = DatabaseSchema(self._schemas.values())
        return self._db_schema

    # Updates ------------------------------------------------------------------

    def _apply_insert(self, row: Row) -> GraphDelta:
        self._register_schema(row.schema)
        delta = self.graph.insert(row)
        if delta.is_noop:
            return delta
        self._rows_by_relation.setdefault(row.relation, set()).add(row)
        for index in self._witnesses.values():
            index.apply_insert(row, self._rows_by_relation)
        return delta

    def insert(self, row: Row) -> GraphDelta:
        """Add a tuple; returns the conflict-graph delta (no-op if present)."""
        delta = self._apply_insert(row)
        if not delta.is_noop:
            self.updates_applied += 1
        return delta

    def delete(self, row: Row) -> GraphDelta:
        """Remove a tuple; raises :class:`UpdateError` if absent."""
        delta = self.graph.delete(row)
        self._rows_by_relation[row.relation].discard(row)
        for index in self._witnesses.values():
            index.apply_delete(row)
        self.updates_applied += 1
        return delta

    def batch_update(
        self, inserts: Iterable[Row] = (), deletes: Iterable[Row] = ()
    ) -> List[GraphDelta]:
        """Apply ``deletes`` then ``inserts``, returning one delta each."""
        deltas = [self.delete(row) for row in deletes]
        deltas.extend(self.insert(row) for row in inserts)
        return deltas

    def prefer(self, winner: Row, loser: Row) -> None:
        """Declare ``winner ≻ loser``.

        The edge participates whenever the two tuples conflict in the
        *current* graph and is dormant otherwise; the declared relation
        must stay acyclic as a digraph, so no activation pattern can
        ever produce a cyclic priority.
        """
        if (winner, loser) in self._declared:
            return
        candidate = self._declared + [(winner, loser)]
        if _digraph_has_cycle(candidate):
            raise CyclicPriorityError(
                f"declaring {winner!r} over {loser!r} creates a priority cycle"
            )
        self._declared = candidate
        self._register_schema(winner.schema)
        self._register_schema(loser.schema)

    # Priority projection ------------------------------------------------------

    def active_priority_edges(self) -> FrozenSet[PriorityEdge]:
        """Declared edges whose endpoints conflict in the current graph."""
        return frozenset(
            (winner, loser)
            for winner, loser in self._declared
            if self.graph.are_conflicting(winner, loser)
        )

    def _component_edges(
        self, component: FrozenSet[Row]
    ) -> FrozenSet[PriorityEdge]:
        return frozenset(
            (winner, loser)
            for winner, loser in self._declared
            if winner in component
            and loser in component
            and self.graph.are_conflicting(winner, loser)
        )

    # Fragment assembly --------------------------------------------------------

    def _fragment_table(
        self, family: Family
    ) -> Tuple[List[FrozenSet[Row]], List[List[Repair]]]:
        """Per component (deterministic order): its preferred fragments."""
        components = self.graph.connected_components()
        fragments = [
            self._cache.preferred_fragments(
                self.graph, component, family, self._component_edges(component)
            )
            for component in components
        ]
        return components, fragments

    def _iterate_repairs(
        self, fragments: List[List[Repair]]
    ) -> Iterator[Repair]:
        """Lazy cross-product of one fragment per component."""
        if not fragments:
            yield frozenset()
            return
        for combo in product(*fragments):
            yield frozenset().union(*combo)

    def repairs(self, family: Optional[Family] = None) -> List[Repair]:
        """Materialized preferred repairs (mind the cross-product size)."""
        _, fragments = self._fragment_table(family or self.family)
        return sorted(self._iterate_repairs(fragments), key=repair_sort_key)

    def count_repairs(self, family: Optional[Family] = None) -> int:
        """Number of preferred repairs, as a product over components."""
        _, fragments = self._fragment_table(family or self.family)
        total = 1
        for options in fragments:
            total *= len(options)
        return total

    # Query plumbing -----------------------------------------------------------

    def _to_formula(self, query: Union[str, Formula]) -> Formula:
        with obs_span("parse"):
            formula = parse_query(query) if isinstance(query, str) else query
            return check_against_schema(formula, self.schema)

    def _witness_index(
        self, formula: Formula, variables: Tuple[str, ...]
    ) -> Optional[WitnessIndex]:
        key: _WitnessKey = (formula, variables)
        cached = self._witnesses.get(key)
        if cached is not None:
            return cached
        plan = conjunctive_plan(formula, variables)
        if plan is None:
            return None
        index = WitnessIndex(plan, self._rows_by_relation)
        # Each live index pays a semi-naive join on every update, so the
        # working set is bounded FIFO; an evicted query simply rebuilds
        # its witnesses on next use.
        if len(self._witnesses) >= self._max_witness_indexes:
            self._witnesses.pop(next(iter(self._witnesses)))
        self._witnesses[key] = index
        return index

    # Covering machinery (conjunctive fast path) -------------------------------

    def _compatibility(
        self,
        supports: Iterable[FrozenSet[Row]],
        components: List[FrozenSet[Row]],
        fragments: List[List[Repair]],
    ) -> Tuple[Optional[List[int]], Optional[List[Dict[int, FrozenSet[int]]]], bool]:
        """Reduce supports to per-component fragment constraints.

        Returns ``(relevant, compat, always)`` where ``relevant`` lists
        the indexes of multi-fragment components constrained by some
        support, ``compat[s][c]`` is the set of fragment indexes of
        component ``c`` containing support ``s``'s rows there, and
        ``always`` flags a support satisfied by *every* repair (then the
        other two are ``None``).  Supports impossible under the fixed
        single-fragment components are dropped.
        """
        index_of_component = {
            self.graph.component_id_of(next(iter(component))): position
            for position, component in enumerate(components)
        }
        by_component: List[Dict[int, FrozenSet[int]]] = []
        relevant: Set[int] = set()
        for support in supports:
            needed: Dict[int, Set[Row]] = {}
            for row in support:
                needed.setdefault(self.graph.component_id_of(row), set()).add(row)
            constraints: Dict[int, FrozenSet[int]] = {}
            dead = False
            for component_id, rows_here in needed.items():
                comp_index = index_of_component[component_id]
                options = fragments[comp_index]
                compatible = frozenset(
                    pos
                    for pos, fragment in enumerate(options)
                    if rows_here <= fragment
                )
                if not compatible:
                    dead = True
                    break
                if len(compatible) < len(options):
                    constraints[comp_index] = compatible
            if dead:
                continue
            if not constraints:
                return None, None, True
            by_component.append(constraints)
            relevant.update(constraints)
        return sorted(relevant), by_component, False

    @staticmethod
    def _clusters(
        relevant: List[int], compat: List[Dict[int, FrozenSet[int]]]
    ) -> List[Tuple[List[int], List[Dict[int, FrozenSet[int]]]]]:
        """Group the relevant components into support-linked clusters.

        Two components belong to one cluster when some support constrains
        both.  A repair choice falsifies the query iff it misses every
        support, and supports are cluster-local, so *uncovered* choice
        counts multiply across clusters — the covering check enumerates
        each cluster's (usually tiny) choice space instead of the
        cross-product over all relevant components.
        """
        parent: Dict[int, int] = {index: index for index in relevant}

        def find(index: int) -> int:
            while parent[index] != index:
                parent[index] = parent[parent[index]]
                index = parent[index]
            return index

        for constraints in compat:
            anchor, *others = constraints
            for other in others:
                root_a, root_b = find(anchor), find(other)
                if root_a != root_b:
                    parent[root_a] = root_b
        members: Dict[int, List[int]] = {}
        for index in relevant:
            members.setdefault(find(index), []).append(index)
        clusters = []
        for root, comp_indexes in sorted(members.items()):
            cluster_supports = [
                constraints
                for constraints in compat
                if find(next(iter(constraints))) == root
            ]
            clusters.append((sorted(comp_indexes), cluster_supports))
        return clusters

    @staticmethod
    def _cluster_uncovered(
        comp_indexes: List[int],
        cluster_supports: List[Dict[int, FrozenSet[int]]],
        fragments: List[List[Repair]],
        count_all: bool,
    ) -> Tuple[int, Optional[Dict[int, int]]]:
        """Uncovered choice count within one cluster (+ one witness choice).

        With ``count_all=False`` stops at the first uncovered choice
        (enough for boolean certainty checks).
        """
        option_ranges = [range(len(fragments[c])) for c in comp_indexes]
        uncovered = 0
        witness: Optional[Dict[int, int]] = None
        for combo in product(*option_ranges):
            chosen = dict(zip(comp_indexes, combo))
            covered = any(
                all(chosen[c] in allowed for c, allowed in constraints.items())
                for constraints in cluster_supports
            )
            if not covered:
                uncovered += 1
                if witness is None:
                    witness = chosen
                if not count_all:
                    break
        return uncovered, witness

    def _assemble_repair(
        self, choices: Dict[int, int], fragments: List[List[Repair]]
    ) -> Repair:
        """A full repair from per-component fragment choices (default 0)."""
        parts = [
            fragments[index][choices.get(index, 0)]
            for index in range(len(fragments))
        ]
        return frozenset().union(*parts) if parts else frozenset()

    # Closed queries -----------------------------------------------------------

    def answer(
        self,
        query: Union[str, Formula],
        family: Optional[Family] = None,
        parallel: Optional[int] = None,
    ) -> ClosedAnswer:
        """Three-valued verdict with exact satisfying/considered counts.

        ``parallel`` shards the enumeration fallback (non-conjunctive
        queries) across a process pool; the witness-index fast path
        never materializes repairs, so it ignores the flag.
        """
        started = time.perf_counter()
        result = self._answer(query, family, parallel)
        annotate(route=result.route, verdict=result.verdict.value)
        observe_query(
            "incremental",
            result.route or self._route,
            str(family or self.family),
            time.perf_counter() - started,
        )
        return result

    def _answer(
        self,
        query: Union[str, Formula],
        family: Optional[Family] = None,
        parallel: Optional[int] = None,
    ) -> ClosedAnswer:
        family = family or self.family
        formula = self._to_formula(query)
        if not formula.is_closed:
            raise QueryError("answer() requires a closed formula")
        with obs_span("plan"):
            components, fragments = self._fragment_table(family)
        total = 1
        for options in fragments:
            total *= len(options)
        if total == 0:
            # Cannot happen for P1-respecting families; defensive only.
            return ClosedAnswer(
                family, Verdict.UNDETERMINED, 0, 0, None, route="witness-index"
            )
        index = self._witness_index(formula, ())
        if index is None:
            with obs_span("enumerate-repairs", route=self._route):
                return self._answer_by_enumeration(
                    formula, family, fragments, parallel
                )
        with obs_span("witness-cover"):
            supports = index.supports_for(())
            relevant, compat, always = self._compatibility(
                supports, components, fragments
            )
        if always:
            return ClosedAnswer(
                family, Verdict.TRUE, total, total, None, route="witness-index"
            )
        if not compat:
            return ClosedAnswer(
                family,
                Verdict.FALSE,
                total,
                0,
                self._assemble_repair({}, fragments),
                route="witness-index",
            )
        scale = total
        for comp_index in relevant:
            scale //= len(fragments[comp_index])
        uncovered_product = 1
        witness_choices: Dict[int, int] = {}
        for comp_indexes, cluster_supports in self._clusters(relevant, compat):
            uncovered, witness = self._cluster_uncovered(
                comp_indexes, cluster_supports, fragments, count_all=True
            )
            uncovered_product *= uncovered
            if witness is not None:
                witness_choices.update(witness)
        satisfying = total - uncovered_product * scale
        counterexample: Optional[Repair] = None
        if uncovered_product:
            counterexample = self._assemble_repair(witness_choices, fragments)
        if satisfying == total:
            verdict = Verdict.TRUE
        elif satisfying == 0:
            verdict = Verdict.FALSE  # pragma: no cover - needs zero supports
        else:
            verdict = Verdict.UNDETERMINED
        return ClosedAnswer(
            family, verdict, total, satisfying, counterexample,
            route="witness-index",
        )

    def _answer_by_enumeration(
        self,
        formula: Formula,
        family: Family,
        fragments: List[List[Repair]],
        parallel: Optional[int] = None,
    ) -> ClosedAnswer:
        """Fallback for non-conjunctive queries: evaluate per repair."""
        from repro.service.parallel import resolve_workers

        workers = resolve_workers(parallel)
        if workers is not None:
            from repro.service.parallel import plan_from_fragments, run_closed

            merged = run_closed(
                plan_from_fragments(fragments),
                formula,
                workers=workers,
                naive=self.naive,
            )
            return self._closed_from_counts(
                family, merged.considered, merged.satisfying,
                merged.counterexample,
            )
        considered = 0
        satisfying = 0
        counterexample: Optional[Repair] = None
        constants = constants_of(formula)
        for repair in self._iterate_repairs(fragments):
            considered += 1
            context = self._contexts.context_for(repair, constants)
            if evaluate(formula, repair, context=context):
                satisfying += 1
            elif counterexample is None:
                counterexample = repair
        return self._closed_from_counts(
            family, considered, satisfying, counterexample
        )

    def _closed_from_counts(
        self,
        family: Family,
        considered: int,
        satisfying: int,
        counterexample: Optional[Repair],
    ) -> ClosedAnswer:
        if considered == 0:
            verdict = Verdict.UNDETERMINED  # pragma: no cover - defensive
        elif satisfying == considered:
            verdict = Verdict.TRUE
        elif satisfying == 0:
            verdict = Verdict.FALSE
        else:
            verdict = Verdict.UNDETERMINED
        return ClosedAnswer(
            family, verdict, considered, satisfying, counterexample,
            route=self._route,
        )

    def is_consistently_true(
        self, query: Union[str, Formula], family: Optional[Family] = None
    ) -> bool:
        """Definition 3 with early exit on the first uncovered repair."""
        family = family or self.family
        formula = self._to_formula(query)
        if not formula.is_closed:
            raise QueryError(
                "closed-query CQA requires a closed formula; "
                "use certain_answers() for open queries"
            )
        components, fragments = self._fragment_table(family)
        index = self._witness_index(formula, ())
        if index is None:
            constants = constants_of(formula)
            return all(
                evaluate(
                    formula,
                    repair,
                    context=self._contexts.context_for(repair, constants),
                )
                for repair in self._iterate_repairs(fragments)
            )
        supports = index.supports_for(())
        relevant, compat, always = self._compatibility(
            supports, components, fragments
        )
        if always:
            return True
        if not compat:
            return False
        return any(
            self._cluster_uncovered(
                comp_indexes, cluster_supports, fragments, count_all=False
            )[0]
            == 0
            for comp_indexes, cluster_supports in self._clusters(relevant, compat)
        )

    # Open queries -------------------------------------------------------------

    def certain_answers(
        self,
        query: Union[str, Formula],
        variables: Optional[Tuple[str, ...]] = None,
        family: Optional[Family] = None,
        parallel: Optional[int] = None,
    ) -> OpenAnswers:
        """Certain/possible answer sets of an open query.

        ``parallel`` shards the enumeration fallback across a process
        pool (the witness-index fast path ignores it).
        """
        started = time.perf_counter()
        result = self._certain_answers(query, variables, family, parallel)
        annotate(route=result.route, certain=len(result.certain))
        observe_query(
            "incremental",
            result.route or self._route,
            str(family or self.family),
            time.perf_counter() - started,
        )
        return result

    def _certain_answers(
        self,
        query: Union[str, Formula],
        variables: Optional[Tuple[str, ...]] = None,
        family: Optional[Family] = None,
        parallel: Optional[int] = None,
    ) -> OpenAnswers:
        family = family or self.family
        formula = self._to_formula(query)
        if variables is None:
            variables = tuple(sorted(formula.free_variables()))
        with obs_span("plan"):
            components, fragments = self._fragment_table(family)
        total = 1
        for options in fragments:
            total *= len(options)
        index = self._witness_index(formula, tuple(variables))
        if index is None or total == 0:
            with obs_span("enumerate-repairs", route=self._route):
                return self._certain_answers_by_enumeration(
                    formula, tuple(variables), family, fragments, parallel
                )
        certain: Set[Tuple] = set()
        possible: Set[Tuple] = set()
        with obs_span("witness-cover"):
            for answer in index.answers():
                relevant, compat, always = self._compatibility(
                    index.supports_for(answer), components, fragments
                )
                if always:
                    certain.add(answer)
                    possible.add(answer)
                    continue
                if not compat:
                    continue
                # A surviving support is itself contained in some repair
                # (choose its compatible fragments), so the answer is
                # possible.
                possible.add(answer)
                if any(
                    self._cluster_uncovered(
                        comp_indexes, cluster_supports, fragments,
                        count_all=False,
                    )[0]
                    == 0
                    for comp_indexes, cluster_supports in self._clusters(
                        relevant, compat
                    )
                ):
                    certain.add(answer)
        return OpenAnswers(
            family,
            tuple(variables),
            frozenset(certain),
            frozenset(possible),
            total,
            route="witness-index",
        )

    def _certain_answers_by_enumeration(
        self,
        formula: Formula,
        variables: Tuple[str, ...],
        family: Family,
        fragments: List[List[Repair]],
        parallel: Optional[int] = None,
    ) -> OpenAnswers:
        from repro.service.parallel import resolve_workers

        workers = resolve_workers(parallel)
        if workers is not None:
            from repro.service.parallel import plan_from_fragments, run_open

            merged = run_open(
                plan_from_fragments(fragments),
                formula,
                variables,
                workers=workers,
                naive=self.naive,
            )
            return OpenAnswers(
                family,
                variables,
                merged.certain,
                merged.possible,
                merged.considered,
                route=self._route,
            )
        certain: Optional[FrozenSet[Tuple]] = None
        possible: FrozenSet[Tuple] = frozenset()
        considered = 0
        constants = constants_of(formula)
        for repair in self._iterate_repairs(fragments):
            considered += 1
            context = self._contexts.context_for(repair, constants)
            result = evaluate_answers(formula, repair, variables, context=context)
            certain = result if certain is None else certain & result
            possible = possible | result
        return OpenAnswers(
            family,
            variables,
            certain if certain is not None else frozenset(),
            possible,
            considered,
            route=self._route,
        )

    def sql_certain_answers(
        self, sql: str, family: Optional[Family] = None
    ) -> OpenAnswers:
        """Certain answers for a conjunctive SQL query."""
        formula, variables = sql_to_formula(sql, self.schema)
        return self.certain_answers(formula, variables, family)

    # Views --------------------------------------------------------------------

    def current_rows(self) -> FrozenSet[Row]:
        """The instance as it stands after all updates."""
        return self.graph.vertices

    def current_database(self) -> Database:
        """The current instance reassembled into a :class:`Database`."""
        return Database.from_rows(self.schema, self.graph.vertices)

    def summary(self) -> Dict[str, object]:
        """Snapshot of the engine's inconsistency and cache state."""
        active = self.active_priority_edges()
        return {
            "tuples": self.graph.vertex_count,
            "conflicts": self.graph.edge_count,
            "oriented": len(active),
            "priority_total": len(active) == self.graph.edge_count,
            "family": str(self.family),
            "components": self.graph.component_count,
            "conflict_components": self.graph.conflict_component_count,
            "updates_applied": self.updates_applied,
            "cache": self._cache.stats(),
            "witness_indexes": len(self._witnesses),
            "evaluation_contexts": len(self._contexts),
        }
