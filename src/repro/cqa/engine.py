"""The preferred consistent-query-answering engine.

:class:`CqaEngine` wires the whole stack together: it builds the
conflict graph of an instance w.r.t. its FDs, attaches a priority,
materializes (lazily, with caching) the preferred repairs of any family,
and answers closed and open queries under Definition 3 semantics.

The evaluation strategy mirrors the complexity results of Section 4:
preferred consistent answering is a *counterexample search* — a closed
query fails to be consistently true as soon as one preferred repair
falsifies it — so repairs stream through the engine with early exit,
and for the polynomial families (L, S, C) each candidate repair is
admitted by its PTIME membership check before the query is evaluated.

Per-repair :class:`~repro.query.evaluator.EvaluationContext` objects
(with their lazily-built hash indexes and join plans) are cached in a
:class:`~repro.query.evaluator.ContextCache` and shared across every
query of one engine's lifetime; ``naive=True`` pins the engine to the
scan-based reference evaluator instead.
"""

from __future__ import annotations

import time
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs import annotate, observe_query
from repro.obs import span as obs_span

from repro.constraints.conflict_graph import ConflictGraph, build_conflict_graph
from repro.constraints.fd import FunctionalDependency
from repro.core.cleaning import all_cleaning_results
from repro.core.families import Family, preferred_repairs
from repro.core.optimality import is_locally_optimal, is_semi_globally_optimal
from repro.cqa.answers import ClosedAnswer, OpenAnswers, Verdict
from repro.exceptions import QueryError
from repro.priorities.priority import Priority, PriorityEdge
from repro.query.ast import Formula, constants_of
from repro.query.evaluator import ContextCache, EvaluationContext
from repro.query.evaluator import answers as evaluate_answers
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query
from repro.query.sql import sql_to_formula
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.repairs.enumerate import enumerate_repairs, repair_sort_key

Repair = FrozenSet[Row]

_STREAMING_FILTERS = {
    Family.REP: lambda repair, priority: True,
    Family.LOCAL: lambda repair, priority: is_locally_optimal(repair, priority),
    Family.SEMI_GLOBAL: lambda repair, priority: is_semi_globally_optimal(
        repair, priority
    ),
}


class CqaEngine:
    """Answers queries over an inconsistent instance under a repair family."""

    def __init__(
        self,
        data: Union[RelationInstance, Database],
        dependencies: Sequence[FunctionalDependency],
        priority: Union[Priority, Iterable[PriorityEdge], None] = None,
        family: Family = Family.REP,
        naive: bool = False,
    ) -> None:
        self.data = data
        self.dependencies = tuple(dependencies)
        self.graph: ConflictGraph = build_conflict_graph(data, self.dependencies)
        if isinstance(priority, Priority):
            if priority.graph != self.graph:
                raise QueryError(
                    "priority was built over a different conflict graph"
                )
            self.priority = priority
        else:
            self.priority = Priority(self.graph, priority or ())
        self.family = family
        self.naive = naive
        self._repair_cache: Dict[Family, List[Repair]] = {}
        self._contexts = ContextCache(naive=naive)

    @property
    def _route(self) -> str:
        return "naive" if self.naive else "indexed"

    @property
    def database_schema(self):
        """The full database schema, whether built over one relation or
        many (the analysis layer and validation both need this view)."""
        if isinstance(self.data, Database):
            return self.data.schema
        from repro.relational.schema import DatabaseSchema

        return DatabaseSchema([self.data.schema])

    def route_report(
        self,
        query: Union[str, Formula],
        variables: Optional[Sequence[str]] = None,
    ):
        """Static :class:`~repro.analysis.model.RouteReport` for
        ``query`` under this engine's theory and priority.

        This engine always streams repairs (route ``"naive"`` or
        ``"indexed"``); the report additionally predicts what the
        SQLite-pushed engines would do with the same quadruple, so
        callers can see which answers were one backend switch away from
        a pushed plan.
        """
        from repro.analysis import analyze

        formula = self._to_formula(query)
        return analyze(
            self.database_schema,
            self.dependencies,
            formula,
            variables,
            priority=self.priority.edges,
            naive=self.naive,
        )

    def _context_for(self, repair: Repair, constants) -> EvaluationContext:
        """Shared per-repair context: indexes and plans live across queries."""
        return self._contexts.context_for(repair, constants)

    # Repair access ----------------------------------------------------------

    def repairs(self, family: Optional[Family] = None) -> List[Repair]:
        """Materialized preferred repairs of the (given or default) family."""
        family = family or self.family
        if family not in self._repair_cache:
            pool = self._repair_cache.get(Family.REP)
            self._repair_cache[family] = preferred_repairs(
                family, self.priority, pool
            )
        return self._repair_cache[family]

    def _stream_repairs(self, family: Family) -> Iterator[Repair]:
        """Preferred repairs with early-exit-friendly streaming.

        A stream that runs to completion has seen the whole family, so
        it populates :attr:`_repair_cache` — repeated ``answer()`` calls
        must not re-run Bron–Kerbosch.  Early-exited streams (a
        counterexample was found) leave the cache untouched.
        """
        if family in self._repair_cache:
            yield from self._repair_cache[family]
            return
        if family in _STREAMING_FILTERS:
            accept = _STREAMING_FILTERS[family]
            collected: List[Repair] = []
            for repair in enumerate_repairs(self.graph):
                if accept(repair, self.priority):
                    collected.append(repair)
                    yield repair
            # Store in the deterministic order repairs() promises.
            self._repair_cache.setdefault(
                family, sorted(collected, key=repair_sort_key)
            )
            return
        # G and C need global information; materialize through the cache.
        yield from self.repairs(family)

    # Closed queries -----------------------------------------------------------

    def _to_formula(self, query: Union[str, Formula]) -> Formula:
        from repro.query.validate import check_against_schema

        with obs_span("parse"):
            formula = parse_query(query) if isinstance(query, str) else query
            if isinstance(self.data, Database):
                schema = self.data.schema
            else:
                from repro.relational.schema import DatabaseSchema

                schema = DatabaseSchema([self.data.schema])
            return check_against_schema(formula, schema)

    def _shard_plan(self, family: Family):
        """The sharded view of this engine's preferred-repair space."""
        from repro.service.parallel import shard_plan

        return shard_plan(self.graph, self.priority, family)

    def is_consistently_true(
        self,
        query: Union[str, Formula],
        family: Optional[Family] = None,
        parallel: Optional[int] = None,
    ) -> bool:
        """Definition 3 with early exit on the first falsifying repair.

        ``parallel`` shards the repair space across a process pool
        (``0`` = hardware width, ``1`` = shard path in-process, ``None``
        = serial streaming); verdicts are identical on every path.
        """
        family = family or self.family
        formula = self._to_formula(query)
        if not formula.is_closed:
            raise QueryError(
                "closed-query CQA requires a closed formula; "
                "use certain_answers() for open queries"
            )
        from repro.service.parallel import resolve_workers

        workers = resolve_workers(parallel)
        if workers is not None:
            from repro.service.parallel import run_closed

            with obs_span("shard-fan-out", workers=workers):
                merged = run_closed(
                    self._shard_plan(family),
                    formula,
                    workers=workers,
                    naive=self.naive,
                    stop_on_false=True,
                )
            return merged.counterexample is None
        constants = constants_of(formula)
        with obs_span("stream-repairs", route=self._route):
            for repair in self._stream_repairs(family):
                context = self._context_for(repair, constants)
                if not evaluate(formula, repair, context=context):
                    return False
        return True

    def answer(
        self,
        query: Union[str, Formula],
        family: Optional[Family] = None,
        parallel: Optional[int] = None,
    ) -> ClosedAnswer:
        """Full three-valued verdict with counts and a counterexample.

        ``parallel`` routes through the sharded executor (see
        :meth:`is_consistently_true`); counts and the counterexample
        repair match the serial stream exactly for the streaming
        families (Rep, L, S) and agree on content for G and C.
        """
        started = time.perf_counter()
        family = family or self.family
        formula = self._to_formula(query)
        if not formula.is_closed:
            raise QueryError("answer() requires a closed formula")
        from repro.service.parallel import resolve_workers

        workers = resolve_workers(parallel)
        if workers is not None:
            from repro.service.parallel import run_closed

            with obs_span("shard-fan-out", workers=workers):
                merged = run_closed(
                    self._shard_plan(family),
                    formula,
                    workers=workers,
                    naive=self.naive,
                )
            result = self._closed_answer_from_counts(
                family, merged.considered, merged.satisfying,
                merged.counterexample,
            )
        else:
            considered = 0
            satisfying = 0
            counterexample: Optional[Repair] = None
            constants = constants_of(formula)
            with obs_span("stream-repairs", route=self._route):
                for repair in self._stream_repairs(family):
                    considered += 1
                    context = self._context_for(repair, constants)
                    if evaluate(formula, repair, context=context):
                        satisfying += 1
                    elif counterexample is None:
                        counterexample = repair
                annotate(repairs=considered)
            result = self._closed_answer_from_counts(
                family, considered, satisfying, counterexample
            )
        annotate(route=result.route, verdict=result.verdict.value)
        observe_query(
            "cqa", result.route or self._route, str(family),
            time.perf_counter() - started,
        )
        return result

    def _closed_answer_from_counts(
        self,
        family: Family,
        considered: int,
        satisfying: int,
        counterexample: Optional[Repair],
    ) -> ClosedAnswer:
        if considered == 0:
            # Cannot happen for P1-respecting families; defensive only.
            verdict = Verdict.UNDETERMINED
        elif satisfying == considered:
            verdict = Verdict.TRUE
        elif satisfying == 0:
            verdict = Verdict.FALSE
        else:
            verdict = Verdict.UNDETERMINED
        return ClosedAnswer(
            family, verdict, considered, satisfying, counterexample,
            route=self._route,
        )

    # Open queries ---------------------------------------------------------------

    def certain_answers(
        self,
        query: Union[str, Formula],
        variables: Optional[Tuple[str, ...]] = None,
        family: Optional[Family] = None,
        parallel: Optional[int] = None,
    ) -> OpenAnswers:
        """Certain/possible answer sets of an open query (along [1, 7]).

        ``parallel`` shards per-repair evaluation across a process pool
        (see :meth:`is_consistently_true`); the merged answer sets are
        bit-identical to serial streaming.
        """
        started = time.perf_counter()
        family = family or self.family
        formula = self._to_formula(query)
        if variables is None:
            variables = tuple(sorted(formula.free_variables()))
        from repro.service.parallel import resolve_workers

        workers = resolve_workers(parallel)
        if workers is not None:
            from repro.service.parallel import run_open

            with obs_span("shard-fan-out", workers=workers):
                merged = run_open(
                    self._shard_plan(family),
                    formula,
                    tuple(variables),
                    workers=workers,
                    naive=self.naive,
                )
            answers = OpenAnswers(
                family,
                tuple(variables),
                merged.certain,
                merged.possible,
                merged.considered,
                route=self._route,
            )
        else:
            certain: Optional[FrozenSet[Tuple]] = None
            possible: FrozenSet[Tuple] = frozenset()
            considered = 0
            constants = constants_of(formula)
            with obs_span("stream-repairs", route=self._route):
                for repair in self._stream_repairs(family):
                    considered += 1
                    context = self._context_for(repair, constants)
                    result = evaluate_answers(
                        formula, repair, variables, context=context
                    )
                    certain = result if certain is None else certain & result
                    possible = possible | result
                annotate(repairs=considered)
            answers = OpenAnswers(
                family,
                variables,
                certain if certain is not None else frozenset(),
                possible,
                considered,
                route=self._route,
            )
        annotate(route=answers.route, certain=len(answers.certain))
        observe_query(
            "cqa", answers.route or self._route, str(family),
            time.perf_counter() - started,
        )
        return answers

    def sql_certain_answers(
        self,
        sql: str,
        family: Optional[Family] = None,
        parallel: Optional[int] = None,
    ) -> OpenAnswers:
        """Certain answers for a conjunctive SQL query."""
        if not isinstance(self.data, Database):
            schema_source = Database.single(self.data)
        else:
            schema_source = self.data
        formula, variables = sql_to_formula(sql, schema_source.schema)
        return self.certain_answers(formula, variables, family, parallel)

    # Diagnostics -------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Human-oriented snapshot of the engine's inconsistency state."""
        return {
            "tuples": self.graph.vertex_count,
            "conflicts": self.graph.edge_count,
            "oriented": len(self.priority.edges),
            "priority_total": self.priority.is_total,
            "family": str(self.family),
            "evaluation": self._route,
            "contexts_cached": len(self._contexts),
        }
