"""A lazily refreshed SQLite mirror of a mutating instance.

``repro session`` keeps one :class:`~repro.incremental.engine.
IncrementalCqaEngine` alive while a script inserts and deletes tuples.
With ``--backend sqlite`` the session additionally maintains this
mirror: an (in-memory by default) SQLite database that is re-saved from
the engine's current state the first time a query arrives after an
update, so rewritable queries run pushed down while updates stay
incremental.  Refreshes are O(instance), queries are index-backed; a
burst of updates between two queries costs one refresh.

The mirror also hosts the preference-aware pushdown
(:mod:`repro.prefsql`): :meth:`pref_engine_for` hands out a
:class:`~repro.prefsql.engine.PrefSqlCqaEngine` whose conflict/edge
side tables live on the mirror connection.  Because a re-save
reassigns rowids, every refresh invalidates the preference engine and
runs the registered *refresh hooks* — the incremental-maintenance
seam the side tables hang off.
"""

from __future__ import annotations

import sqlite3
from typing import (
    Callable,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.backend.engine import SqlCqaEngine
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.priorities.priority import PriorityEdge
from repro.relational.database import Database
from repro.relational.sqlite_io import save_database

#: A refresh hook: called with the mirror connection after each re-save.
RefreshHook = Callable[[sqlite3.Connection], None]


class SqliteMirror:
    """Owns a SQLite connection kept in sync with a changing database."""

    def __init__(
        self,
        dependencies: Sequence[FunctionalDependency],
        family: Family = Family.REP,
        target: str = ":memory:",
    ) -> None:
        # The service broker refreshes and queries the mirror from
        # whichever front-end thread holds the per-database refresh
        # lock, so access is serialized per refresh but not
        # thread-affine (and read-only queries may overlap).
        self._connection = sqlite3.connect(target, check_same_thread=False)
        self.dependencies = tuple(dependencies)
        self.family = family
        self._dirty = True
        self._engine: Optional[SqlCqaEngine] = None
        self._pref_engine = None
        self._pref_edges: Optional[FrozenSet[PriorityEdge]] = None
        self._refresh_hooks: List[RefreshHook] = []
        # The preference side tables reference rowids, which a re-save
        # reassigns; their maintenance hangs off the hook mechanism so
        # additional maintainers (diagnostics, caches) can join it.
        self.add_refresh_hook(self._invalidate_pref_engine)

    def add_refresh_hook(self, hook: RefreshHook) -> None:
        """Run ``hook(connection)`` after every re-save of the mirror.

        The preference layer uses this to re-materialize its side
        tables once the rowids they reference have been reassigned.
        """
        self._refresh_hooks.append(hook)

    def mark_dirty(self) -> None:
        """Record that the source instance changed since the last refresh."""
        self._dirty = True

    @property
    def dirty(self) -> bool:
        """Whether the next :meth:`engine_for` will re-save the source."""
        return self._dirty or self._engine is None

    def _invalidate_pref_engine(
        self, connection: sqlite3.Connection
    ) -> None:
        self._pref_engine = None
        self._pref_edges = None

    def _refresh(
        self, database: Union[Database, Callable[[], Database]]
    ) -> None:
        if callable(database):
            database = database()
        save_database(database, self._connection, self.dependencies)
        self._engine = SqlCqaEngine(
            self._connection, self.dependencies, family=self.family
        )
        for hook in self._refresh_hooks:
            hook(self._connection)
        self._dirty = False

    def engine_for(
        self, database: Union[Database, Callable[[], Database]]
    ) -> SqlCqaEngine:
        """A :class:`SqlCqaEngine` over an up-to-date mirror of ``database``.

        ``database`` may be a zero-argument callable, invoked only when
        a refresh is actually due — callers whose source snapshot is
        itself O(instance) to assemble (the broker's
        ``current_database()``) skip that cost on clean mirrors.
        """
        if self.dirty:
            self._refresh(database)
        return self._engine

    def pref_engine_for(
        self,
        database: Union[Database, Callable[[], Database]],
        priority_edges: Iterable[PriorityEdge],
        family: Optional[Family] = None,
    ):
        """A :class:`~repro.prefsql.engine.PrefSqlCqaEngine` over an
        up-to-date mirror, rebuilt when the data or the declared
        priority changed since the last call."""
        from repro.prefsql.engine import PrefSqlCqaEngine  # cycle guard

        edges = frozenset(priority_edges)
        effective_family = family or self.family
        if self.dirty:
            self._refresh(database)
        if (
            self._pref_engine is not None
            and self._pref_edges is not None
            and edges >= self._pref_edges
        ):
            # Priority grew but the data did not change: maintain the
            # side tables incrementally instead of rebuilding.
            extra = edges - self._pref_edges
            if extra:
                self._pref_engine.extend_priority(sorted(extra))
                self._pref_edges = edges
            if self._pref_engine.family is not effective_family:
                # The default family is per-call state on the engine
                # (answers are keyed per family internally); omitting
                # ``family`` always means the mirror's own default.
                self._pref_engine.family = effective_family
        else:
            self._pref_engine = PrefSqlCqaEngine(
                self._connection,
                self.dependencies,
                sorted(edges),
                effective_family,
            )
            self._pref_edges = edges
        return self._pref_engine

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "SqliteMirror":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
