"""Benchmark: serving under load — the BENCH_serve_scale sweep.

A Synchrobench-style grid for the serving layer: the load generator
(:mod:`repro.service.loadgen`) replays a fixed recorded-style workload
against an in-process front end, sweeping **concurrency levels ×
read/write mixes** with a seeded RNG.  Each swept cell reports
throughput and p50/p95/p99 latency plus flight-recorder trace ids of
its slowest executions (tail exemplars), and every replayed answer is
asserted **bit-identical** to a serial reference pass — the sweep
measures nothing it has not verified.

The workload is the Fig. 5 conjunctive self-join family over Figure-4
conflict chains (closed probes at several selectivities plus the open
per-group query), with churn writes against a scratch relation the
queries never mention: writes exercise the exclusive write path
(per-database write lock, fingerprint recomputation, invalidation
bookkeeping) without making answers timing-dependent, so bit-identical
verification stays sound at every mix.

Each cell runs on a **fresh broker** (cold answer cache, reset flight
recorder), so its exemplars and latency distribution belong to that
cell alone and cells cannot warm each other.

This is the baseline trajectory the ROADMAP's async/multi-process
front-end rewrite must beat.  Results land in
``BENCH_serve_scale.json`` (see ``benchmarks/_cli.py``);
``tools/bench_compare.py`` warns when throughput halves or p95 doubles
against a committed baseline.
"""

from __future__ import annotations

import sys
import time
from typing import List

if not __package__:
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks._cli import apply_seed, bench_parser, emit_result

from repro.datagen.generators import CHAIN_FDS, chain_instance
from repro.obs import RECORDER
from repro.obs.workload import Workload, WorkloadEntry, normalize_entries
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.service.broker import RequestBroker
from repro.service.loadgen import CellSpec, InProcessTarget, LoadGenerator
from repro.service.server import ServiceFrontEnd

#: Scratch relation the churn writes cycle through; no query mentions
#: it, so answers are independent of write interleaving.
SCRATCH = RelationSchema("W", ["K:number", "V:number"])


def build_workload(distinct: int) -> Workload:
    """Closed probes at ``distinct`` selectivities + the open query +
    one churn entry (weights emulate a recorded skew: low thresholds —
    the common probes — draw more often)."""
    entries = [
        WorkloadEntry(
            kind="query",
            query=(
                "EXISTS a, b1, b2, c1, c2, d1, d2 . "
                "R(a, b1, c1, d1) AND R(a, b2, c2, d2) AND b1 != b2 "
                f"AND a >= {threshold}"
            ),
            weight=distinct - threshold,
        )
        for threshold in range(distinct)
    ]
    entries.append(
        WorkloadEntry(
            kind="query",
            query=(
                "EXISTS b1, b2, c1, c2, d1, d2 . "
                "R(a, b1, c1, d1) AND R(a, b2, c2, d2) AND b1 != b2"
            ),
            variables=("a",),
        )
    )
    entries.append(WorkloadEntry(kind="churn", relation="W", values=(0, 0)))
    return Workload(normalize_entries(entries), name="serve-scale")


def run_cell(
    length: int, workload: Workload, spec: CellSpec
) -> dict:
    """One swept cell on a fresh broker: serial reference, then replay."""
    RECORDER.reset()
    RECORDER.configure(sample_rate=1.0)
    database = Database([chain_instance(length), RelationInstance(SCRATCH)])
    with RequestBroker() as broker:
        broker.register("chain", database, CHAIN_FDS)
        generator = LoadGenerator(
            InProcessTarget(ServiceFrontEnd(broker)),
            workload,
            recorder=RECORDER,
        )
        result = generator.run_cell(spec)
        admission = broker.admission.stats()
    assert result.verified, (
        f"cell c={spec.concurrency} w={spec.write_fraction}: "
        f"{len(result.mismatches)} answer mismatches, "
        f"{result.errors} errors — replay diverged from the serial "
        f"reference"
    )
    assert result.trace_exemplars, (
        f"cell c={spec.concurrency} w={spec.write_fraction}: no flight-"
        f"recorder exemplars retained (sampling misconfigured?)"
    )
    cell = result.to_dict()
    cell["rejected_by_admission"] = admission["rejected"]
    return cell


def main(argv=None) -> int:
    parser = bench_parser(__doc__)
    parser.add_argument(
        "--length", type=int, default=24,
        help="conflict-chain length behind the service",
    )
    parser.add_argument(
        "--distinct", type=int, default=5,
        help="distinct closed probes in the workload",
    )
    parser.add_argument(
        "--concurrency", type=int, nargs="+", default=[1, 2, 4, 8],
        help="worker counts to sweep",
    )
    parser.add_argument(
        "--write-fraction", type=float, nargs="+", default=[0.0, 0.1, 0.5],
        help="write fractions to sweep",
    )
    parser.add_argument(
        "--requests", type=int, default=300,
        help="operations per swept cell",
    )
    args = parser.parse_args(argv)
    seed = apply_seed(args)

    if args.smoke:
        # Seconds-long CI tier; still >= 2 concurrency x >= 2 mixes so
        # the committed artifact satisfies the sweep-shape criterion.
        args.length = 12
        args.concurrency = [1, 4]
        args.write_fraction = [0.0, 0.2]
        args.requests = 80

    workload = build_workload(args.distinct)
    print(
        f"serve-scale sweep: chain {args.length}, "
        f"{len(workload.reads)} query entries, seed {seed}, "
        f"{args.requests} ops/cell"
    )
    print(
        f"{'CONC':>4} {'WRITES':>6} {'RPS':>10} {'P50MS':>8} "
        f"{'P95MS':>8} {'P99MS':>8}  EXEMPLARS"
    )
    cells: List[dict] = []
    started = time.perf_counter()
    for write_fraction in args.write_fraction:
        for concurrency in args.concurrency:
            spec = CellSpec(
                concurrency=concurrency,
                write_fraction=write_fraction,
                requests=args.requests,
                seed=seed,
            )
            cell = run_cell(args.length, workload, spec)
            cells.append(cell)
            print(
                f"{cell['concurrency']:>4} {cell['write_fraction']:>6.2f} "
                f"{cell['throughput_rps']:>10.1f} {cell['p50_ms']:>8.3f} "
                f"{cell['p95_ms']:>8.3f} {cell['p99_ms']:>8.3f}  "
                f"{','.join(cell['trace_exemplars'][:2])}"
            )

    read_only = [cell for cell in cells if cell["write_fraction"] == 0.0]
    best_rps = max(cell["throughput_rps"] for cell in cells)
    emit_result(
        __file__,
        {
            "length": args.length,
            "requests_per_cell": args.requests,
            "concurrency_levels": args.concurrency,
            "write_fractions": args.write_fraction,
            "verified": all(cell["verified"] for cell in cells),
            "best_throughput_rps": best_rps,
            "read_only_peak_rps": max(
                (cell["throughput_rps"] for cell in read_only), default=0.0
            ),
            "cells": cells,
        },
    )
    print(
        f"{len(cells)} cells in {time.perf_counter() - started:.1f}s, "
        f"all verified bit-identical to the serial reference "
        f"(peak {best_rps:,.0f} rps)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
