"""The data-cleaning baseline the paper argues against (Section 1).

Classical cleaning physically resolves conflicts with the standard
repertoire of actions [23]: remove a tuple, leave it, or report it to an
auxiliary *contingency* table.  When the user's preference information
is incomplete, the "cleaned" database may remain inconsistent (Example
3) — precisely the failure mode preferred consistent query answers
avoid.  This module implements that baseline so the examples and
benchmarks can reproduce the paper's comparison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, List, Set, Tuple

from repro.constraints.conflict_graph import ConflictGraph
from repro.constraints.conflicts import ConflictEdge
from repro.priorities.priority import Priority
from repro.relational.rows import Row, sorted_rows


class UnresolvedPolicy(enum.Enum):
    """What to do with conflicts the priority does not orient."""

    #: Leave both tuples in place (the cleaned database may stay
    #: inconsistent — Example 3's outcome).
    KEEP = "keep"
    #: Move both tuples to the contingency table (loses information but
    #: guarantees consistency of the main result).
    CONTINGENCY = "contingency"


@dataclass(frozen=True)
class CleaningOutcome:
    """Result of one cleaning pass."""

    kept: FrozenSet[Row]
    removed: FrozenSet[Row]
    contingency: FrozenSet[Row]
    unresolved_conflicts: Tuple[ConflictEdge, ...]

    @property
    def is_consistent(self) -> bool:
        """Whether the kept part is conflict-free."""
        return not self.unresolved_conflicts


def clean_database(
    priority: Priority,
    policy: UnresolvedPolicy = UnresolvedPolicy.KEEP,
) -> CleaningOutcome:
    """One-shot cleaning: drop every dominated tuple, apply ``policy``.

    A tuple is removed when some tuple dominates it (it lost at least
    one oriented conflict).  Conflicts between surviving tuples are
    unresolved: under ``KEEP`` they remain in the kept part; under
    ``CONTINGENCY`` both parties move to the contingency table.

    Unlike Algorithm 1, this is the *non-iterative* cleaning of typical
    ETL tools: a removed tuple still "spends" its wins, so the result
    can differ from the paper's winnow iteration and is generally not a
    repair.
    """
    graph = priority.graph
    removed: Set[Row] = {
        row for row in graph.vertices if priority.dominators_of(row)
    }
    survivors = graph.vertices - removed
    unresolved: List[ConflictEdge] = [
        pair for pair in graph.edges() if pair <= survivors
    ]
    contingency: Set[Row] = set()
    if policy is UnresolvedPolicy.CONTINGENCY:
        for pair in unresolved:
            contingency.update(pair)
        survivors = survivors - contingency
        unresolved = []
    return CleaningOutcome(
        kept=frozenset(survivors),
        removed=frozenset(removed),
        contingency=frozenset(contingency),
        unresolved_conflicts=tuple(
            sorted(unresolved, key=lambda pair: sorted_rows(pair).__repr__())
        ),
    )
