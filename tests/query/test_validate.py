"""Unit tests for schema validation of formulas."""

import pytest

from repro.exceptions import QueryError
from repro.query.parser import parse_query
from repro.query.validate import check_against_schema
from repro.relational.schema import schema_from_mapping

SCHEMA = schema_from_mapping({"Mgr": ["Name", "Dept", "Salary:number"]})


class TestCheckAgainstSchema:
    def test_valid_formula_passes_through(self):
        formula = parse_query("EXISTS d, s . Mgr(Mary, d, s)")
        assert check_against_schema(formula, SCHEMA) is formula

    def test_unknown_relation_rejected(self):
        with pytest.raises(QueryError, match="unknown relation"):
            check_against_schema(parse_query("Emp(Mary, 'IT', 3)"), SCHEMA)

    def test_wrong_arity_rejected(self):
        with pytest.raises(QueryError, match="arity"):
            check_against_schema(parse_query("Mgr(Mary, 'IT')"), SCHEMA)

    def test_nested_atoms_are_checked(self):
        bad = parse_query(
            "FORALL n . (Mgr(n, 'IT', 3) IMPLIES NOT (Mgr(n) OR 1 < 2))"
        )
        with pytest.raises(QueryError):
            check_against_schema(bad, SCHEMA)

    def test_comparisons_and_constants_are_fine(self):
        formula = parse_query("1 < 2 AND TRUE OR FALSE")
        assert check_against_schema(formula, SCHEMA) is formula

    def test_engine_raises_on_misspelled_relation(self):
        from repro.cqa.engine import CqaEngine
        from repro.datagen.paper_instances import mgr_scenario

        scenario = mgr_scenario()
        engine = CqaEngine(scenario.instance, scenario.dependencies)
        with pytest.raises(QueryError):
            engine.answer("Mgrr(Mary, 'IT', 3, 4)")

    def test_engine_raises_on_wrong_arity(self):
        from repro.cqa.engine import CqaEngine
        from repro.datagen.paper_instances import mgr_scenario

        scenario = mgr_scenario()
        engine = CqaEngine(scenario.instance, scenario.dependencies)
        with pytest.raises(QueryError):
            engine.answer("EXISTS d, s . Mgr(Mary, d, s)")
