#!/usr/bin/env python3
"""Explore the complexity landscape of Figure 5 interactively.

Demonstrates, on scaled synthetic workloads:

* the exponential repair explosion of Example 4 (2^n repairs) and why
  counting factors through connected components,
* polynomial L/S/C repair checking vs the exponential witness search
  behind G repair checking,
* the PTIME ground-quantifier-free CQA algorithm vs naive
  repair enumeration (the Rep row of Figure 5).

Run:  python examples/complexity_explorer.py
"""

import time

from repro.constraints.conflict_graph import build_conflict_graph
from repro.core.families import Family, is_preferred_repair
from repro.cqa.tractable import consistent_answer_qf
from repro.cqa.engine import CqaEngine
from repro.datagen.generators import (
    CHAIN_FDS,
    GRID_FDS,
    chain_instance,
    chain_priority_pairs,
    grid_instance,
)
from repro.priorities.priority import Priority, empty_priority
from repro.query.ast import Atom, Const
from repro.repairs.enumerate import count_repairs
from repro.repairs.sampling import random_repair


def timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def main() -> None:
    print("Example 4: repair explosion (counted via component factoring)")
    for n in (4, 8, 16, 32, 64):
        graph = build_conflict_graph(grid_instance(n), GRID_FDS)
        count, elapsed = timed(count_repairs, graph)
        print(f"  n={n:3d}: {count} repairs  ({elapsed * 1e3:7.2f} ms)")

    print("\nRepair checking: PTIME families vs the co-NP G check")
    for length in (8, 12, 16, 20):
        instance = chain_instance(length)
        graph = build_conflict_graph(instance, CHAIN_FDS)
        priority = Priority(graph, chain_priority_pairs(instance)[: length // 2])
        candidate = random_repair(graph)
        line = [f"  chain n={length:3d}:"]
        for family in (Family.LOCAL, Family.SEMI_GLOBAL, Family.COMMON, Family.GLOBAL):
            _, elapsed = timed(
                is_preferred_repair, family, candidate, priority
            )
            line.append(f"{family.value}={elapsed * 1e3:7.2f}ms")
        print(" ".join(line))
    print("  (G-Rep checking enumerates repairs: watch it pull away)")

    print("\nCQA for a ground fact: tractable algorithm vs naive enumeration")
    query = Atom("R", [Const(0), Const(0)])
    for n in (6, 10, 14, 18):
        instance = grid_instance(n)
        graph = build_conflict_graph(instance, GRID_FDS)
        _, fast = timed(consistent_answer_qf, query, graph)
        engine = CqaEngine(instance, GRID_FDS)
        verdict, slow = timed(engine.answer, query)
        print(
            f"  n={n:3d} ({2 ** n:7d} repairs): "
            f"tractable {fast * 1e3:8.3f} ms | naive {slow * 1e3:9.2f} ms"
        )

    print("\nTakeaway: rows of Figure 5 separated empirically —")
    print("  Rep/L/S/C checking and ground-QF CQA stay polynomial;")
    print("  G checking and naive CQA blow up with the repair space.")


if __name__ == "__main__":
    main()
