"""Query answering over baseline resolutions.

Each related-work baseline resolves an inconsistent instance into one or
more alternative row sets: classical cleaning keeps a (possibly still
inconsistent) main table, rank-based resolution keeps the winners, and
stratified preferred subtheories produce a whole family.  To compare
those outcomes against Definition 3 answering on equal footing, this
module evaluates queries over the alternatives with the same indexed
:class:`~repro.query.evaluator.EvaluationContext` machinery (and the
same ``naive=True`` scan-based escape hatch) the CQA engines use — the
certain/possible split over the alternatives mirrors
:class:`~repro.cqa.answers.OpenAnswers` exactly.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple, Union

from repro.core.families import Family
from repro.cqa.answers import OpenAnswers
from repro.exceptions import QueryError
from repro.query.ast import Formula, constants_of
from repro.query.evaluator import ContextCache
from repro.query.evaluator import answers as evaluate_answers
from repro.query.parser import parse_query
from repro.relational.rows import Row

from repro.baselines.cleaning import CleaningOutcome


def baseline_answers(
    alternatives: Iterable[Iterable[Row]],
    query: Union[str, Formula],
    variables: Optional[Tuple[str, ...]] = None,
    naive: bool = False,
    parallel: Optional[int] = None,
) -> OpenAnswers:
    """Certain/possible answers of ``query`` over baseline alternatives.

    ``alternatives`` is any iterable of row collections (e.g. the output
    of :func:`~repro.baselines.stratified.preferred_subtheories`, or a
    single cleaned table).  A tuple is *certain* when every alternative
    yields it and *possible* when at least one does — the same
    definitions the repair families use, so the result is directly
    comparable with engine output.  The ``family`` field is ``Rep``
    (baselines carry no preference semantics of their own).

    ``parallel`` shards the alternatives across the service layer's
    process pool (``0`` = hardware width); merged answers are identical
    to the serial loop.
    """
    formula = parse_query(query) if isinstance(query, str) else query
    if variables is None:
        variables = tuple(sorted(formula.free_variables()))
    from repro.service.parallel import resolve_workers

    workers = resolve_workers(parallel)
    if workers is not None:
        from repro.service.parallel import plan_from_fragments, run_open

        pool = [frozenset(alternative) for alternative in alternatives]
        if not pool:
            raise QueryError("baseline_answers() needs at least one alternative")
        # One pseudo-component whose fragments are the alternatives:
        # the product over a single list enumerates exactly the pool.
        merged = run_open(
            plan_from_fragments([pool]),
            formula,
            tuple(variables),
            workers=workers,
            naive=naive,
        )
        return OpenAnswers(
            Family.REP,
            tuple(variables),
            merged.certain,
            merged.possible,
            merged.considered,
            route="naive" if naive else "indexed",
        )
    cache = ContextCache(naive=naive)
    constants = constants_of(formula)
    certain: Optional[FrozenSet[Tuple]] = None
    possible: FrozenSet[Tuple] = frozenset()
    considered = 0
    for alternative in alternatives:
        rows = frozenset(alternative)
        considered += 1
        context = cache.context_for(rows, constants)
        result = evaluate_answers(formula, rows, tuple(variables), context=context)
        certain = result if certain is None else certain & result
        possible = possible | result
    if considered == 0:
        raise QueryError("baseline_answers() needs at least one alternative")
    return OpenAnswers(
        Family.REP,
        tuple(variables),
        certain if certain is not None else frozenset(),
        possible,
        considered,
        route="naive" if naive else "indexed",
    )


def cleaned_answers(
    outcome: CleaningOutcome,
    query: Union[str, Formula],
    variables: Optional[Tuple[str, ...]] = None,
    naive: bool = False,
) -> OpenAnswers:
    """Answers over the kept part of a cleaning outcome.

    One alternative only, so certain and possible coincide — precisely
    the over-confidence of the cleaning baseline the paper's Example 3
    criticizes: answers resting on unresolved conflicts are reported as
    if they were certain.
    """
    return baseline_answers([outcome.kept], query, variables, naive)
