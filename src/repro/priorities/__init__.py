"""Priorities: acyclic conflict-graph orientations, winnow, builders."""

from repro.priorities.priority import Priority, PriorityEdge, empty_priority
from repro.priorities.winnow import winnow, winnow_naive
from repro.priorities.builders import (
    priority_from_pairs,
    priority_from_ranking,
    priority_from_relation,
    priority_from_source_reliability,
    priority_from_timestamps,
    random_priority,
)

__all__ = [
    "Priority",
    "PriorityEdge",
    "empty_priority",
    "priority_from_pairs",
    "priority_from_ranking",
    "priority_from_relation",
    "priority_from_source_reliability",
    "priority_from_timestamps",
    "random_priority",
    "winnow",
    "winnow_naive",
]
