#!/usr/bin/env python3
"""Compare freshly emitted BENCH_*.json files against committed copies.

The benchmark harness (``benchmarks/_cli.py``) writes one
``BENCH_<name>.json`` per suite; the repository commits a reference copy
of each.  CI runs the smoke tier into a scratch directory
(``REPRO_BENCH_RESULTS``) and calls this tool to diff every numeric
metric against the committed baseline, so the perf trajectory of a PR
is visible in the log without gating merges on noisy numbers.

Per-metric output: committed value, fresh value, and the ratio.  Three
metric classes get **regression warnings** at a 2x threshold:

* ``*speedup`` metrics (higher is better) warn when the fresh value
  falls below half the committed one;
* ``*throughput*`` / ``*_rps`` metrics (higher is better, e.g. the
  per-cell rates of ``BENCH_serve_scale.json``) warn the same way when
  throughput halves;
* ``*p95*`` latency metrics (lower is better) warn when the fresh value
  exceeds twice the committed one.

Exit status is 0 even with warnings — the CI step is informational —
unless ``--strict`` is given (then warnings exit 1).  Missing files on
either side are reported but never fatal: suites come and go, and the
smoke tier may legitimately emit a subset of metrics.

Usage::

    python tools/bench_compare.py --fresh bench_fresh [--committed .]
    python tools/bench_compare.py --fresh bench_fresh --strict
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

#: Ratio beyond which a tracked metric counts as regressed.
REGRESSION_FACTOR = 2.0

#: Keys that are environment descriptors, not performance metrics.
_IGNORED_LEAVES = {"python", "bench", "mode", "limit", "seed", "count"}


def _flatten(payload, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf."""
    if isinstance(payload, dict):
        for key, value in sorted(payload.items()):
            yield from _flatten(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(payload, bool):
        return  # booleans are flags (e.g. answers_identical), not metrics
    elif isinstance(payload, (int, float)):
        yield prefix, float(payload)


def _load_metrics(path: Path) -> Dict[str, float]:
    data = json.loads(path.read_text())
    return {
        key: value
        for key, value in _flatten(data)
        if key.rsplit(".", 1)[-1] not in _IGNORED_LEAVES
    }


def _is_speedup(metric: str) -> bool:
    return metric.rsplit(".", 1)[-1].endswith("speedup")


def _is_throughput(metric: str) -> bool:
    leaf = metric.rsplit(".", 1)[-1]
    return "throughput" in leaf or leaf.endswith("_rps")


def _is_p95(metric: str) -> bool:
    return "p95" in metric.rsplit(".", 1)[-1]


def compare_file(
    committed: Path, fresh: Path
) -> Tuple[List[str], List[str]]:
    """Diff one suite's metrics; returns (report lines, warnings)."""
    base = _load_metrics(committed)
    new = _load_metrics(fresh)
    lines: List[str] = []
    warnings: List[str] = []
    for metric in sorted(set(base) | set(new)):
        if metric not in base:
            lines.append(f"  {metric}: (new) {new[metric]:g}")
            continue
        if metric not in new:
            lines.append(f"  {metric}: {base[metric]:g} -> (absent)")
            continue
        before, after = base[metric], new[metric]
        ratio = after / before if before else float("inf") if after else 1.0
        marker = ""
        if _is_speedup(metric) and ratio < 1.0 / REGRESSION_FACTOR:
            marker = "  << REGRESSION (speedup halved)"
            warnings.append(
                f"{committed.name}:{metric} speedup {before:g} -> {after:g}"
            )
        elif _is_throughput(metric) and ratio < 1.0 / REGRESSION_FACTOR:
            marker = "  << REGRESSION (throughput halved)"
            warnings.append(
                f"{committed.name}:{metric} throughput {before:g} -> {after:g}"
            )
        elif _is_p95(metric) and ratio > REGRESSION_FACTOR:
            marker = "  << REGRESSION (p95 doubled)"
            warnings.append(
                f"{committed.name}:{metric} p95 {before:g}s -> {after:g}s"
            )
        lines.append(
            f"  {metric}: {before:g} -> {after:g} (x{ratio:.2f}){marker}"
        )
    return lines, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        required=True,
        help="directory holding freshly emitted BENCH_*.json files",
    )
    parser.add_argument(
        "--committed",
        default=".",
        help="directory holding the committed baselines (default: repo root)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any regression warning fires (default: exit 0)",
    )
    args = parser.parse_args(argv)

    fresh_dir = Path(args.fresh)
    committed_dir = Path(args.committed)
    fresh_files = sorted(fresh_dir.glob("BENCH_*.json"))
    if not fresh_files:
        print(f"no BENCH_*.json files in {fresh_dir}", file=sys.stderr)
        return 0 if not args.strict else 1

    all_warnings: List[str] = []
    for fresh in fresh_files:
        committed = committed_dir / fresh.name
        print(f"== {fresh.name} ==")
        if not committed.is_file():
            print("  (no committed baseline — first run of this suite)")
            continue
        lines, warnings = compare_file(committed, fresh)
        print("\n".join(lines))
        all_warnings.extend(warnings)
    for committed in sorted(committed_dir.glob("BENCH_*.json")):
        if not (fresh_dir / committed.name).is_file():
            print(f"== {committed.name} == (not emitted by this run)")

    if all_warnings:
        print(f"\n{len(all_warnings)} regression warning(s):")
        for warning in all_warnings:
            print(f"  WARNING: {warning}")
        if args.strict:
            return 1
    else:
        print("\nno regressions beyond the 2x threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
