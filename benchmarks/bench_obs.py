"""Bench guard: observability must be near-free when tracing is off.

Runs one mixed multi-engine CQA workload (in-memory streaming,
witness-index incremental, SQLite pushdown, preference-aware pushdown,
denial hypergraph — every repair family) in the two states that matter:

* **enabled** — the default serving configuration: metrics registry on,
  flight recorder on with a deterministic 10% sampling rate (sampled
  operations run fully traced and are retained as records; the rest
  resolve to the shared no-ops);
* **disabled** — ``REGISTRY.enabled = False`` and ``RECORDER.enabled =
  False``, the closest reachable stand-in for fully uninstrumented code
  (one branch per record call, one per capture).

The two states interleave across several rounds; the guard asserts

1. the answers of both states are bit-identical, and a third *fully
   traced* round reproduces them again;
2. the enabled state's best-of-rounds wall time stays within 5% of the
   disabled state's (best-of-rounds squeezes out scheduler noise, so
   the comparison isolates the instrumentation branch itself);
3. the sampled-recording rounds actually retained records (the recorder
   was genuinely in the measured path, not configured away).

Emits ``BENCH_obs.json`` with both timings, the measured overhead, and
the per-route p50/p95 latencies the registry collected along the way.

Run directly (``python benchmarks/bench_obs.py``); ``--smoke`` shrinks
the workload for CI and relaxes the bound to 25% (sub-100ms rounds are
dominated by timer noise, not by the branch under test).
"""

from __future__ import annotations

import sqlite3
import sys
import time
from typing import List, Tuple

if not __package__:
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks._cli import apply_seed, bench_parser, emit_result

from repro.backend import SqlCqaEngine
from repro.constraints.conflict_graph import build_conflict_graph
from repro.constraints.denial import fd_as_denial
from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.cqa.hypergraph_cqa import DenialCqaEngine
from repro.datagen.generators import GRID_FDS, GRID_SCHEMA, grid_instance
from repro.incremental import IncrementalCqaEngine
from repro.obs import RECORDER, REGISTRY, trace
from repro.prefsql import PrefSqlCqaEngine
from repro.priorities.builders import priority_from_ranking
from repro.query.parser import parse_query
from repro.relational.database import Database
from repro.relational.sqlite_io import save_database

OPEN = parse_query("EXISTS y . R(x, y)")
CLOSED = parse_query("EXISTS x, y . R(x, y)")

ALL_FAMILIES = (
    Family.REP,
    Family.LOCAL,
    Family.SEMI_GLOBAL,
    Family.GLOBAL,
    Family.COMMON,
)


def _workload(groups: int):
    """One deterministic grid instance plus its ranked priority."""
    instance = grid_instance(groups, 2)
    graph = build_conflict_graph(instance, GRID_FDS)
    priority = priority_from_ranking(graph, lambda row: row["B"])
    return instance, priority


def run_workload(groups: int) -> Tuple[list, float]:
    """Run every engine over the workload; return (answers, seconds).

    The answer list is pure data (verdicts and sorted tuples), so two
    runs compare bit-for-bit regardless of instrumentation state.
    """
    instance, priority = _workload(groups)
    collected: List[object] = []
    started = time.perf_counter()

    # Every engine operation runs under a flight-recorder capture, so
    # the enabled state measures the full sampled-recording path (the
    # RNG keep decision plus, for sampled operations, a live tracer);
    # a disabled recorder reduces each capture to one attribute check.
    for family in ALL_FAMILIES:
        engine = CqaEngine(instance, GRID_FDS, priority, family)
        with RECORDER.capture(f"closed[{family}]"):
            answer = engine.answer(CLOSED)
        with RECORDER.capture(f"open[{family}]"):
            result = engine.certain_answers(OPEN)
        collected.append(
            (str(family), answer.verdict.value,
             sorted(result.certain), sorted(result.possible))
        )

    incremental = IncrementalCqaEngine(
        instance, GRID_FDS, priority.edges, Family.GLOBAL
    )
    with RECORDER.capture("open[incremental]"):
        result = incremental.certain_answers(OPEN)
    collected.append(("incremental", sorted(result.certain)))

    connection = sqlite3.connect(":memory:")
    save_database(Database.single(instance), connection, GRID_FDS)
    with SqlCqaEngine(connection, GRID_FDS) as engine:
        with RECORDER.capture("open[sql]"):
            result = engine.certain_answers(OPEN)
        collected.append(("sql", sorted(result.certain)))

    connection = sqlite3.connect(":memory:")
    save_database(Database.single(instance), connection, GRID_FDS)
    with PrefSqlCqaEngine(
        connection, GRID_FDS, priority.dominance_rows(), Family.GLOBAL
    ) as engine:
        with RECORDER.capture("open[prefsql]"):
            result = engine.certain_answers(OPEN)
        collected.append(("prefsql", sorted(result.certain)))

    denials = [fd_as_denial(fd, GRID_SCHEMA) for fd in GRID_FDS]
    with RECORDER.capture("closed[denial]"):
        answer = DenialCqaEngine(instance, denials).answer(CLOSED)
    collected.append(("denial", answer.verdict.value))

    return collected, time.perf_counter() - started


def main(argv=None) -> int:
    parser = bench_parser(__doc__)
    parser.add_argument(
        "--groups", type=int, default=None,
        help="grid groups per round (default 9; smoke 6)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="interleaved rounds per state (default 5; smoke 3)",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="report the overhead without enforcing the bound",
    )
    args = parser.parse_args(argv)
    apply_seed(args)
    groups = args.groups or (6 if args.smoke else 9)
    rounds = args.rounds or (3 if args.smoke else 5)
    limit = 0.25 if args.smoke else 0.05

    #: Fixed recorder seed: each enabled round replays the identical
    #: keep/drop sequence (this seed samples one of the workload's 14
    #: captures at 10%), so best-of-rounds compares like with like.
    recorder_seed = 5
    sample_rate = 0.1

    REGISTRY.reset()
    REGISTRY.enabled = True
    RECORDER.configure(sample_rate=sample_rate, slow_ms=None)

    enabled_times: List[float] = []
    disabled_times: List[float] = []
    recorded_counts: List[int] = []
    reference = None
    for _ in range(rounds):
        REGISTRY.enabled = False
        RECORDER.enabled = False
        answers, seconds = run_workload(groups)
        disabled_times.append(seconds)
        if reference is None:
            reference = answers
        assert answers == reference, "disabled-state answers diverged"

        REGISTRY.enabled = True
        RECORDER.reset(seed=recorder_seed)
        RECORDER.enabled = True
        answers, seconds = run_workload(groups)
        enabled_times.append(seconds)
        recorded_counts.append(RECORDER.summary()["recorded"])
        assert answers == reference, (
            "instrumented answers differ from uninstrumented answers"
        )

    assert min(recorded_counts) >= 1, (
        "sampled-recording rounds retained no records — the recorder "
        "was not in the measured path"
    )
    assert len(set(recorded_counts)) == 1, (
        "seeded sampling was not deterministic across rounds"
    )

    RECORDER.enabled = False
    with trace("bench") as tracer:
        traced_answers, traced_seconds = run_workload(groups)
    RECORDER.enabled = True
    assert traced_answers == reference, (
        "traced answers differ from uninstrumented answers"
    )
    assert tracer.root.children, "traced round recorded no spans"

    best_disabled = min(disabled_times)
    best_enabled = min(enabled_times)
    overhead = (best_enabled - best_disabled) / best_disabled
    print(
        f"[obs guard, {groups} groups x {rounds} rounds] "
        f"disabled {best_disabled * 1000:7.2f} ms | "
        f"enabled {best_enabled * 1000:7.2f} ms | "
        f"overhead {overhead * 100:+5.2f}% (limit {limit * 100:.0f}%) | "
        f"traced {traced_seconds * 1000:7.2f} ms"
    )

    path = emit_result(
        __file__,
        {
            "mode": "guard",
            "groups": groups,
            "rounds": rounds,
            "disabled_best_s": round(best_disabled, 6),
            "enabled_best_s": round(best_enabled, 6),
            "traced_s": round(traced_seconds, 6),
            "overhead": round(overhead, 6),
            "limit": limit,
            "sample_rate": sample_rate,
            "recorded_per_round": recorded_counts[0],
            "answers_identical": True,
        },
    )
    print(f"wrote {path}")

    if not args.no_assert:
        assert overhead < limit, (
            f"metrics-enabled overhead {overhead * 100:.2f}% exceeds the "
            f"{limit * 100:.0f}% bound"
        )
        print(
            f"criterion met: answers bit-identical, overhead "
            f"{overhead * 100:.2f}% < {limit * 100:.0f}%"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
