"""Unit tests for CSV and SQLite persistence."""

import sqlite3

import pytest

from repro.exceptions import SchemaError, UnknownRelationError
from repro.relational.csv_io import (
    instance_to_csv_text,
    read_instance_csv,
    read_instance_csv_text,
    write_instance_csv,
)
from repro.relational.database import Database
from repro.relational.domain import AttributeType
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.relational.sqlite_io import (
    load_database,
    load_instance,
    save_database,
    save_instance,
)

SCHEMA = RelationSchema("Mgr", ["Name", "Dept", "Salary:number"])


def sample_instance():
    return RelationInstance.from_values(
        SCHEMA, [("Mary", "R&D", 40), ("John", "PR", 30)]
    )


class TestCsv:
    def test_round_trip_text(self):
        instance = sample_instance()
        text = instance_to_csv_text(instance)
        again = read_instance_csv_text(text, "Mgr")
        assert again == instance

    def test_round_trip_file(self, tmp_path):
        instance = sample_instance()
        path = tmp_path / "mgr.csv"
        write_instance_csv(instance, path)
        assert read_instance_csv(path, "Mgr") == instance

    def test_relation_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "Mgr.csv"
        write_instance_csv(sample_instance(), path)
        assert read_instance_csv(path).schema.name == "Mgr"

    def test_type_inference_without_suffix(self):
        text = "Name,Salary\nMary,40\nJohn,30\n"
        instance = read_instance_csv_text(text, "Emp")
        assert instance.schema.type_of("Salary") is AttributeType.NUMBER
        assert instance.schema.type_of("Name") is AttributeType.NAME

    def test_mixed_column_stays_name(self):
        text = "A\n1\nx\n"
        instance = read_instance_csv_text(text, "R")
        assert instance.schema.type_of("A") is AttributeType.NAME

    def test_explicit_schema_header_check(self):
        with pytest.raises(SchemaError):
            read_instance_csv_text("X,Y\n1,2\n", "Mgr", SCHEMA)

    def test_empty_input_rejected(self):
        with pytest.raises(SchemaError):
            read_instance_csv_text("", "R")

    def test_bad_record_arity(self):
        with pytest.raises(SchemaError):
            read_instance_csv_text("A,B\n1\n", "R")


class TestSqlite:
    def test_round_trip_file(self, tmp_path):
        instance = sample_instance()
        path = tmp_path / "db.sqlite"
        save_instance(instance, path)
        assert load_instance(path, "Mgr") == instance

    def test_round_trip_preserves_types_when_empty(self, tmp_path):
        empty = RelationInstance(SCHEMA)
        path = tmp_path / "db.sqlite"
        save_instance(empty, path)
        loaded = load_instance(path, "Mgr")
        assert loaded.schema == SCHEMA

    def test_unknown_relation(self, tmp_path):
        path = tmp_path / "db.sqlite"
        save_instance(sample_instance(), path)
        with pytest.raises(UnknownRelationError):
            load_instance(path, "Nope")

    def test_database_round_trip(self, tmp_path):
        other = RelationSchema("Dept", ["Dept", "Budget:number"])
        db = Database(
            [
                sample_instance(),
                RelationInstance.from_values(other, [("R&D", 100)]),
            ]
        )
        path = tmp_path / "db.sqlite"
        save_database(db, path)
        assert load_database(path) == db

    def test_load_foreign_table_via_pragma(self, tmp_path):
        path = tmp_path / "db.sqlite"
        with sqlite3.connect(path) as connection:
            connection.execute("CREATE TABLE T (X TEXT NOT NULL, N INTEGER NOT NULL)")
            connection.execute("INSERT INTO T VALUES ('a', 1)")
        instance = load_instance(str(path), "T")
        assert instance.schema.type_of("N") is AttributeType.NUMBER
        assert len(instance) == 1

    def test_save_replaces_existing_table(self, tmp_path):
        path = tmp_path / "db.sqlite"
        save_instance(sample_instance(), path)
        smaller = RelationInstance.from_values(SCHEMA, [("Solo", "IT", 1)])
        save_instance(smaller, path)
        assert load_instance(path, "Mgr") == smaller
