"""Classical functional-dependency theory.

The paper's future-work section suggests refining the complexity
results "by assuming the conformance of functional dependencies with
BCNF".  This module supplies the standard machinery needed to even pose
that question: attribute-set closure, implication, candidate keys,
BCNF/3NF tests, minimal covers and projection utilities.

All algorithms are the textbook ones (Armstrong axioms are sound and
complete; closure is computed with the linear-scan fixpoint method).
"""

from __future__ import annotations

from itertools import combinations
from typing import AbstractSet, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.constraints.fd import FunctionalDependency
from repro.relational.schema import RelationSchema


def attribute_closure(
    attributes: Iterable[str],
    dependencies: Sequence[FunctionalDependency],
) -> FrozenSet[str]:
    """Closure ``X⁺`` of an attribute set under the given FDs."""
    closure: Set[str] = set(attributes)
    changed = True
    while changed:
        changed = False
        for dependency in dependencies:
            if dependency.lhs <= closure and not dependency.rhs <= closure:
                closure.update(dependency.rhs)
                changed = True
    return frozenset(closure)


def implies(
    dependencies: Sequence[FunctionalDependency],
    candidate: FunctionalDependency,
) -> bool:
    """Whether the FD set logically implies ``candidate`` (via closure)."""
    return candidate.rhs <= attribute_closure(candidate.lhs, dependencies)


def equivalent(
    first: Sequence[FunctionalDependency],
    second: Sequence[FunctionalDependency],
) -> bool:
    """Whether two FD sets imply each other."""
    return all(implies(second, fd) for fd in first) and all(
        implies(first, fd) for fd in second
    )


def is_trivial(dependency: FunctionalDependency) -> bool:
    """Whether the FD is trivial (``rhs ⊆ lhs``)."""
    return dependency.rhs <= dependency.lhs


def is_superkey(
    attributes: Iterable[str],
    schema: RelationSchema,
    dependencies: Sequence[FunctionalDependency],
) -> bool:
    """Whether the attribute set determines every attribute of the schema."""
    return attribute_closure(attributes, dependencies) >= set(schema.attribute_names)


def candidate_keys(
    schema: RelationSchema,
    dependencies: Sequence[FunctionalDependency],
) -> List[FrozenSet[str]]:
    """All minimal keys of the schema, smallest first.

    Exponential in the number of attributes in the worst case (the
    problem is inherently so); fine for the schema sizes of this domain.
    """
    attributes = tuple(schema.attribute_names)
    keys: List[FrozenSet[str]] = []
    for size in range(len(attributes) + 1):
        for subset in combinations(attributes, size):
            subset_set = frozenset(subset)
            if any(key <= subset_set for key in keys):
                continue
            if is_superkey(subset_set, schema, dependencies):
                keys.append(subset_set)
    return keys


def is_bcnf(
    schema: RelationSchema,
    dependencies: Sequence[FunctionalDependency],
) -> bool:
    """Boyce–Codd normal form: every non-trivial FD has a superkey LHS."""
    return all(
        is_trivial(fd) or is_superkey(fd.lhs, schema, dependencies)
        for fd in dependencies
    )


def bcnf_violations(
    schema: RelationSchema,
    dependencies: Sequence[FunctionalDependency],
) -> List[FunctionalDependency]:
    """The dependencies witnessing a BCNF violation (empty iff BCNF)."""
    return [
        fd
        for fd in dependencies
        if not is_trivial(fd) and not is_superkey(fd.lhs, schema, dependencies)
    ]


def is_3nf(
    schema: RelationSchema,
    dependencies: Sequence[FunctionalDependency],
) -> bool:
    """Third normal form: each RHS attribute is prime or the LHS is a superkey."""
    prime: Set[str] = set()
    for key in candidate_keys(schema, dependencies):
        prime.update(key)
    for fd in dependencies:
        if is_trivial(fd) or is_superkey(fd.lhs, schema, dependencies):
            continue
        if not fd.rhs - fd.lhs <= prime:
            return False
    return True


def minimal_cover(
    dependencies: Sequence[FunctionalDependency],
) -> List[FunctionalDependency]:
    """A minimal (canonical) cover of the FD set.

    Standard three phases: split right-hand sides to single attributes,
    remove extraneous LHS attributes, remove redundant dependencies.
    The relation tag of each FD is preserved.
    """
    # Phase 1: singleton right-hand sides.
    split: List[FunctionalDependency] = []
    for fd in dependencies:
        for attribute in sorted(fd.rhs):
            if attribute in fd.lhs:
                continue  # drop trivial parts
            split.append(FunctionalDependency(fd.lhs, [attribute], fd.relation))

    # Phase 2: remove extraneous left-hand-side attributes.
    reduced: List[FunctionalDependency] = []
    for fd in split:
        lhs = set(fd.lhs)
        for attribute in sorted(fd.lhs):
            if len(lhs) == 1:
                break
            trimmed = lhs - {attribute}
            if fd.rhs <= attribute_closure(trimmed, split):
                lhs = trimmed
        reduced.append(FunctionalDependency(lhs, fd.rhs, fd.relation))

    # Phase 3: drop redundant dependencies.
    result: List[FunctionalDependency] = list(dict.fromkeys(reduced))
    index = 0
    while index < len(result):
        fd = result[index]
        rest = result[:index] + result[index + 1 :]
        if implies(rest, fd):
            result = rest
        else:
            index += 1
    return result


def project_dependencies(
    dependencies: Sequence[FunctionalDependency],
    attributes: AbstractSet[str],
) -> List[FunctionalDependency]:
    """FDs implied on a subset of attributes (decomposition support).

    Computes, for every subset ``X`` of ``attributes``, the portion of
    ``X⁺`` inside ``attributes``; returns a minimal cover of the result.
    Exponential in ``len(attributes)`` as usual.
    """
    attributes = frozenset(attributes)
    projected: List[FunctionalDependency] = []
    members = tuple(sorted(attributes))
    for size in range(1, len(members) + 1):
        for subset in combinations(members, size):
            closure = attribute_closure(subset, dependencies)
            rhs = (closure & attributes) - set(subset)
            if rhs:
                projected.append(FunctionalDependency(subset, rhs))
    return minimal_cover(projected)
