"""Unit tests for classical FD theory (closure, keys, normal forms)."""

from repro.constraints.fd import FunctionalDependency
from repro.constraints.fd_theory import (
    attribute_closure,
    bcnf_violations,
    candidate_keys,
    equivalent,
    implies,
    is_3nf,
    is_bcnf,
    is_superkey,
    is_trivial,
    minimal_cover,
    project_dependencies,
)
from repro.relational.schema import RelationSchema


def fd(text):
    return FunctionalDependency.parse(text)


R_ABCD = RelationSchema("R", ["A", "B", "C", "D"])


class TestClosure:
    def test_textbook_closure(self):
        fds = [fd("A -> B"), fd("B -> C")]
        assert attribute_closure(["A"], fds) == {"A", "B", "C"}

    def test_closure_without_applicable_fds(self):
        assert attribute_closure(["D"], [fd("A -> B")]) == {"D"}

    def test_multi_attribute_lhs(self):
        fds = [fd("A B -> C")]
        assert attribute_closure(["A"], fds) == {"A"}
        assert attribute_closure(["A", "B"], fds) == {"A", "B", "C"}

    def test_empty_lhs_fd_applies_everywhere(self):
        assert attribute_closure([], [fd(" -> A")]) == {"A"}


class TestImplication:
    def test_transitivity_implied(self):
        fds = [fd("A -> B"), fd("B -> C")]
        assert implies(fds, fd("A -> C"))

    def test_not_implied(self):
        assert not implies([fd("A -> B")], fd("B -> A"))

    def test_equivalence(self):
        first = [fd("A -> B"), fd("B -> C")]
        second = [fd("A -> B, C"), fd("B -> C")]
        assert equivalent(first, second)
        assert not equivalent(first, [fd("A -> B")])

    def test_trivial(self):
        assert is_trivial(FunctionalDependency(["A", "B"], ["A"]))
        assert not is_trivial(fd("A -> B"))


class TestKeys:
    def test_is_superkey(self):
        fds = [fd("A -> B"), fd("B -> C D")]
        assert is_superkey(["A"], R_ABCD, fds)
        assert not is_superkey(["B"], R_ABCD, fds)

    def test_candidate_keys_minimal(self):
        fds = [fd("A -> B C D"), fd("B C -> A")]
        keys = candidate_keys(R_ABCD, fds)
        assert frozenset({"A"}) in keys
        assert frozenset({"B", "C"}) in keys
        # No superset of a key is listed.
        assert not any(k > frozenset({"A"}) for k in keys)

    def test_no_fds_key_is_everything(self):
        keys = candidate_keys(R_ABCD, [])
        assert keys == [frozenset({"A", "B", "C", "D"})]


class TestNormalForms:
    def test_bcnf_holds_for_key_fds(self):
        fds = [fd("A -> B C D")]
        assert is_bcnf(R_ABCD, fds)
        assert bcnf_violations(R_ABCD, fds) == []

    def test_bcnf_violation_detected(self):
        fds = [fd("A -> B C D"), fd("B -> C")]
        assert not is_bcnf(R_ABCD, fds)
        assert fd("B -> C") in bcnf_violations(R_ABCD, fds)

    def test_3nf_with_prime_rhs(self):
        # Classic: R(A,B,C), A→B, B→A: B→A has prime RHS.
        schema = RelationSchema("R", ["A", "B", "C"])
        fds = [fd("A B -> C"), fd("C -> B")]
        assert is_3nf(schema, fds)
        assert not is_bcnf(schema, fds)

    def test_mgr_example_is_bcnf(self):
        schema = RelationSchema(
            "Mgr", ["Name", "Dept", "Salary:number", "Reports:number"]
        )
        fds = [
            FunctionalDependency.parse("Dept -> Name, Salary, Reports"),
            FunctionalDependency.parse("Name -> Dept, Salary, Reports"),
        ]
        assert is_bcnf(schema, fds)


class TestMinimalCover:
    def test_splits_rhs(self):
        cover = minimal_cover([fd("A -> B C")])
        assert all(len(item.rhs) == 1 for item in cover)
        assert equivalent(cover, [fd("A -> B C")])

    def test_removes_redundant_fd(self):
        cover = minimal_cover([fd("A -> B"), fd("B -> C"), fd("A -> C")])
        assert equivalent(cover, [fd("A -> B"), fd("B -> C")])
        assert len(cover) == 2

    def test_trims_extraneous_lhs(self):
        cover = minimal_cover([fd("A -> B"), fd("A B -> C")])
        assert fd("A -> C") in cover or implies(cover, fd("A -> C"))
        assert all(item.lhs == {"A"} for item in cover)

    def test_preserves_equivalence(self):
        original = [fd("A -> B C"), fd("B -> C"), fd("A C -> D")]
        assert equivalent(minimal_cover(original), original)


class TestProjection:
    def test_transitive_dependency_projected(self):
        fds = [fd("A -> B"), fd("B -> C")]
        projected = project_dependencies(fds, {"A", "C"})
        assert implies(projected, fd("A -> C"))

    def test_projection_drops_outside_attributes(self):
        fds = [fd("A -> B")]
        projected = project_dependencies(fds, {"A", "C"})
        assert all(item.lhs | item.rhs <= {"A", "C"} for item in projected)
