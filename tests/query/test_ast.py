"""Unit tests for the formula AST."""

import pytest

from repro.exceptions import QueryError
from repro.query.ast import (
    And,
    Atom,
    Comparison,
    Const,
    Exists,
    FalseFormula,
    Forall,
    Implies,
    Not,
    Or,
    TrueFormula,
    Var,
    constants_of,
    is_ground,
    is_quantifier_free,
)


class TestTerms:
    def test_atom_coerces_raw_values(self):
        atom = Atom("R", ["x", 3])
        # Lowercase convention applies to the parser only; the AST keeps
        # raw Python values as constants.
        assert atom.terms == (Const("x"), Const(3))

    def test_atom_keeps_vars(self):
        atom = Atom("R", [Var("x"), Const(1)])
        assert atom.free_variables() == {"x"}

    def test_bool_rejected_as_term(self):
        with pytest.raises(QueryError):
            Atom("R", [True])


class TestFreeVariables:
    def test_comparison(self):
        assert Comparison("<", Var("x"), Const(3)).free_variables() == {"x"}

    def test_exists_binds(self):
        formula = Exists(["x"], Atom("R", [Var("x"), Var("y")]))
        assert formula.free_variables() == {"y"}

    def test_nested_connectives(self):
        formula = And(
            [
                Atom("R", [Var("x")]),
                Or([Atom("R", [Var("y")]), Not(Atom("R", [Var("z")]))]),
            ]
        )
        assert formula.free_variables() == {"x", "y", "z"}

    def test_is_closed(self):
        assert Exists(["x"], Atom("R", [Var("x")])).is_closed
        assert not Atom("R", [Var("x")]).is_closed


class TestSubstitute:
    def test_atom_substitution(self):
        atom = Atom("R", [Var("x"), Var("y")])
        bound = atom.substitute({"x": 1})
        assert bound == Atom("R", [Const(1), Var("y")])

    def test_quantifier_shadowing(self):
        formula = Exists(["x"], Atom("R", [Var("x"), Var("y")]))
        bound = formula.substitute({"x": 9, "y": 2})
        # x is bound by the quantifier and must not be replaced.
        assert bound == Exists(["x"], Atom("R", [Var("x"), Const(2)]))

    def test_comparison_substitution(self):
        comp = Comparison("<", Var("x"), Var("y")).substitute({"y": 5})
        assert comp == Comparison("<", Var("x"), Const(5))


class TestStructure:
    def test_and_flattens(self):
        inner = And([Atom("R", [Const(1)]), Atom("R", [Const(2)])])
        outer = And([inner, Atom("R", [Const(3)])])
        assert len(outer.parts) == 3

    def test_or_flattens(self):
        inner = Or([Atom("R", [Const(1)]), Atom("R", [Const(2)])])
        outer = Or([Atom("R", [Const(0)]), inner])
        assert len(outer.parts) == 3

    def test_empty_connectives_rejected(self):
        with pytest.raises(QueryError):
            And([])
        with pytest.raises(QueryError):
            Or([])

    def test_duplicate_quantifier_vars_rejected(self):
        with pytest.raises(QueryError):
            Exists(["x", "x"], Atom("R", [Var("x")]))

    def test_operator_sugar(self):
        a = Atom("R", [Const(1)])
        b = Atom("R", [Const(2)])
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)
        assert isinstance(a.implies(b), Implies)

    def test_unknown_comparison_op_rejected(self):
        with pytest.raises(QueryError):
            Comparison("~", Const(1), Const(2))

    def test_negated_comparison(self):
        assert Comparison("<", Var("x"), Const(1)).negated().op == ">="
        assert Comparison("=", Var("x"), Const(1)).negated().op == "!="


class TestPredicates:
    def test_constants_of(self):
        formula = Exists(
            ["x"],
            And(
                [
                    Atom("R", [Var("x"), Const("Mary")]),
                    Comparison(">", Var("x"), Const(7)),
                ]
            ),
        )
        assert constants_of(formula) == {"Mary", 7}

    def test_is_quantifier_free(self):
        assert is_quantifier_free(Not(Atom("R", [Const(1)])))
        assert not is_quantifier_free(Exists(["x"], Atom("R", [Var("x")])))
        assert not is_quantifier_free(Not(Forall(["x"], Atom("R", [Var("x")]))))

    def test_is_ground(self):
        assert is_ground(And([Atom("R", [Const(1)]), TrueFormula()]))
        assert not is_ground(Atom("R", [Var("x")]))
        assert not is_ground(Exists(["x"], Atom("R", [Var("x")])))

    def test_equality_and_hash(self):
        a = Exists(["x"], Atom("R", [Var("x")]))
        b = Exists(["x"], Atom("R", [Var("x")]))
        assert a == b and hash(a) == hash(b)
        assert a != Forall(["x"], Atom("R", [Var("x")]))

    def test_true_false_substitute_to_self(self):
        assert TrueFormula().substitute({"x": 1}) == TrueFormula()
        assert FalseFormula().substitute({}) == FalseFormula()
