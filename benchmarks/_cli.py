"""Uniform command-line surface for the benchmark suite.

Every ``benchmarks/bench_*.py`` accepts the same two flags:

``--smoke``
    A seconds-long, correctness-focused configuration for CI: sweeps
    shrink to their smallest sizes and (for the pytest-benchmark
    modules) timing is disabled, so only the assertions run.
``--seed``
    Seeds whatever randomness the workload uses (random instances,
    sampled repair candidates, shuffled insertion orders), making a
    run reproducible and letting CI vary the draw.

The standalone scripts (``bench_backend``, ``bench_incremental``,
``bench_evaluator``) consume the parsed flags directly.  The
pytest-benchmark modules re-execute themselves through ``pytest``; the
chosen values travel through environment variables so the module
re-imported by pytest picks them up when computing its parametrized
sweep sizes via :func:`sizes`.
"""

from __future__ import annotations

import argparse
import os

#: Environment toggles the pytest-benchmark modules read at import time.
SMOKE_ENV = "REPRO_BENCH_SMOKE"
SEED_ENV = "REPRO_BENCH_SEED"

DEFAULT_SEED = 7


def bench_parser(doc: str) -> argparse.ArgumentParser:
    """The shared ``--smoke`` / ``--seed`` parser; add extra flags freely."""
    first_line = (doc or "benchmark").strip().splitlines()[0]
    parser = argparse.ArgumentParser(description=first_line)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, seconds-long CI configuration (assertions only)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help=f"workload randomness seed (default: ${SEED_ENV} or {DEFAULT_SEED})",
    )
    return parser


def smoke_active() -> bool:
    return bool(os.environ.get(SMOKE_ENV))


def sizes(full, smoke):
    """Pick a sweep parametrization based on the smoke toggle."""
    return smoke if smoke_active() else full


def bench_seed(override: "int | None" = None) -> int:
    """The effective workload seed: flag, then environment, then default."""
    if override is not None:
        return override
    value = os.environ.get(SEED_ENV)
    return int(value) if value else DEFAULT_SEED


def apply_seed(args) -> int:
    """Resolve a standalone script's ``--seed``, export it, return it.

    Exporting through ``$REPRO_BENCH_SEED`` lets shared workload
    builders (:mod:`benchmarks.workloads`) pick the value up without
    threading it through every call.
    """
    seed = bench_seed(args.seed)
    os.environ[SEED_ENV] = str(seed)
    return seed


def run_pytest_module(module_file: str, doc: str, argv=None) -> int:
    """argparse front-end for a pytest-benchmark module.

    Parses the uniform flags, exports them through the environment, and
    re-runs the module under pytest — with ``--benchmark-disable`` in
    smoke mode (one plain call per case, assertions still enforced) and
    ``--benchmark-only`` otherwise.
    """
    args = bench_parser(doc).parse_args(argv)
    if args.smoke:
        os.environ[SMOKE_ENV] = "1"
    if args.seed is not None:
        os.environ[SEED_ENV] = str(args.seed)
    import pytest

    pytest_args = [module_file, "-q", "-p", "no:cacheprovider"]
    pytest_args.append("--benchmark-disable" if args.smoke else "--benchmark-only")
    return pytest.main(pytest_args)
