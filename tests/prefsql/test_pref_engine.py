"""PrefSqlCqaEngine: routing, answers, and parity with CqaEngine."""

from __future__ import annotations

import sqlite3

import pytest

from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.answers import Verdict
from repro.cqa.engine import CqaEngine
from repro.exceptions import CyclicPriorityError, NonConflictingPriorityError
from repro.prefsql import PrefSqlCqaEngine
from repro.priorities.priority import Priority
from repro.query.ast import And, Atom, Comparison, Exists, Var
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema
from repro.relational.sqlite_io import save_database

R_SCHEMA = RelationSchema("R", ["K", "A:number", "B"])
S_SCHEMA = RelationSchema("S", ["A:number", "C"])
FDS = [FunctionalDependency.parse("K -> A", "R")]

R_ROWS = [
    ("k0", 0, "x"),
    ("k0", 1, "y"),
    ("k0", 2, "z"),
    ("k1", 0, "x"),
    ("k1", 5, "w"),
    ("c0", 9, "q"),
]
S_ROWS = [(0, "c0"), (1, "c1"), (9, "c1")]


def _row(*values) -> Row:
    return Row(R_SCHEMA, values)


PRIORITY = [
    (_row("k0", 1, "y"), _row("k0", 0, "x")),
    (_row("k1", 5, "w"), _row("k1", 0, "x")),
]

x, y, z, c = Var("x"), Var("y"), Var("z"), Var("c")
OPEN_QUERY = Exists(["z"], Atom("R", [x, y, z]))


def _database() -> Database:
    return Database(
        [
            RelationInstance.from_values(R_SCHEMA, R_ROWS),
            RelationInstance.from_values(S_SCHEMA, S_ROWS),
        ]
    )


def _engines(priority=PRIORITY, family=Family.REP):
    connection = sqlite3.connect(":memory:")
    database = _database()
    save_database(database, connection, FDS)
    engine = PrefSqlCqaEngine(connection, FDS, priority, family)
    memory = CqaEngine(database, FDS, priority, family)
    return engine, memory


class TestRouting:
    def test_prioritized_query_routes_to_prefsql(self):
        engine, memory = _engines()
        for family in Family:
            result = engine.certain_answers(OPEN_QUERY, family=family)
            assert engine.last_route == "prefsql", family
            reference = memory.certain_answers(OPEN_QUERY, family=family)
            assert result.certain == reference.certain, family
            assert result.possible == reference.possible, family
            assert result.route == "prefsql"

    def test_query_avoiding_prioritized_relation_stays_on_sqlite(self):
        engine, memory = _engines()
        query = Atom("S", [y, c])
        result = engine.certain_answers(query, family=Family.GLOBAL)
        assert engine.last_route == "sqlite"
        reference = memory.certain_answers(query, family=Family.GLOBAL)
        assert result.certain == reference.certain
        assert result.possible == reference.possible

    def test_no_priority_behaves_like_the_blind_backend(self):
        engine, memory = _engines(priority=())
        result = engine.certain_answers(OPEN_QUERY)
        assert engine.last_route == "sqlite"
        reference = memory.certain_answers(OPEN_QUERY)
        assert result.certain == reference.certain

    def test_explain_reports_the_route_and_sql(self):
        engine, _ = _engines()
        decision = engine.explain(OPEN_QUERY, family=Family.COMMON)
        assert decision.pushed
        assert decision.route == "prefsql"
        assert "_repro_" in decision.plan.certain_sql

    def test_accepts_a_priority_object(self):
        database = _database()
        from repro.constraints.conflict_graph import build_conflict_graph

        graph = build_conflict_graph(database, FDS)
        priority = Priority(graph, PRIORITY)
        connection = sqlite3.connect(":memory:")
        save_database(database, connection, FDS)
        engine = PrefSqlCqaEngine(connection, FDS, priority, Family.COMMON)
        memory = CqaEngine(database, FDS, priority, Family.COMMON)
        result = engine.certain_answers(OPEN_QUERY)
        assert engine.last_route == "prefsql"
        assert result.certain == memory.certain_answers(OPEN_QUERY).certain


class TestClosedQueries:
    def test_verdicts_match_across_families(self):
        closed = Exists(
            ["k", "b"],
            And(
                [
                    Atom("R", [Var("k"), Var("a"), Var("b")]),
                    Comparison(">=", Var("a"), 1),
                ]
            ),
        )
        closed = Exists(["a"], closed)
        engine, memory = _engines()
        for family in Family:
            got = engine.answer(closed, family)
            assert engine.last_route == "prefsql"
            assert got.verdict is memory.answer(closed, family).verdict, family

    def test_counts_report_zero_repairs(self):
        engine, _ = _engines()
        answer = engine.answer(
            Exists(["k", "a", "b"], Atom("R", [Var("k"), Var("a"), Var("b")]))
        )
        assert answer.repairs_considered == 0
        assert answer.satisfying == 0

    def test_is_consistently_true(self):
        engine, memory = _engines(family=Family.COMMON)
        closed = Exists(["b"], Atom("R", ["k0", 1, Var("b")]))
        assert engine.is_consistently_true(closed) == (
            memory.answer(closed).verdict is Verdict.TRUE
        )


class TestSqlFrontend:
    def test_sql_certain_answers_route_through_prefsql(self):
        engine, memory = _engines(family=Family.SEMI_GLOBAL)
        sql = "SELECT t.K, t.A FROM R t WHERE t.A >= 0"
        got = engine.sql_certain_answers(sql)
        assert engine.last_route == "prefsql"
        reference = memory.sql_certain_answers(sql)
        assert got.certain == reference.certain
        assert got.possible == reference.possible


class TestValidation:
    def test_cyclic_priority_raises_like_the_memory_engine(self):
        cycle = [
            (_row("k0", 0, "x"), _row("k0", 1, "y")),
            (_row("k0", 1, "y"), _row("k0", 2, "z")),
            (_row("k0", 2, "z"), _row("k0", 0, "x")),
        ]
        connection = sqlite3.connect(":memory:")
        save_database(_database(), connection, FDS)
        with pytest.raises(CyclicPriorityError):
            PrefSqlCqaEngine(connection, FDS, cycle)
        with pytest.raises(CyclicPriorityError):
            CqaEngine(_database(), FDS, cycle)

    def test_non_conflicting_edge_raises_like_the_memory_engine(self):
        bad = [(_row("k0", 1, "y"), _row("k1", 0, "x"))]
        connection = sqlite3.connect(":memory:")
        save_database(_database(), connection, FDS)
        with pytest.raises(NonConflictingPriorityError):
            PrefSqlCqaEngine(connection, FDS, bad)
        with pytest.raises(NonConflictingPriorityError):
            CqaEngine(_database(), FDS, bad)

    def test_absent_row_raises_like_the_memory_engine(self):
        ghost = [(_row("k0", 1, "y"), _row("k0", 0, "ghost"))]
        connection = sqlite3.connect(":memory:")
        save_database(_database(), connection, FDS)
        with pytest.raises(NonConflictingPriorityError):
            PrefSqlCqaEngine(connection, FDS, ghost)
        with pytest.raises(NonConflictingPriorityError):
            CqaEngine(_database(), FDS, ghost)


class TestDiagnostics:
    def test_summary_reports_prioritized_relations(self):
        engine, _ = _engines(family=Family.COMMON)
        engine.certain_answers(OPEN_QUERY)
        summary = engine.summary()
        assert summary["backend"] == "prefsql"
        assert summary["prioritized_relations"] == ["R"]
        assert summary["priority_edges"] == len(PRIORITY)
        assert summary["last_route"] == "prefsql"
