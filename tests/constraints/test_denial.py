"""Unit tests for denial constraints and conflict hypergraphs (paper §6)."""

import pytest

from repro.constraints.conflict_graph import build_conflict_graph
from repro.constraints.denial import (
    ConflictHypergraph,
    DenialConstraint,
    build_conflict_hypergraph,
    fd_as_denial,
    violation_sets,
)
from repro.constraints.fd import FunctionalDependency
from repro.exceptions import ConstraintError
from repro.query.ast import Atom, Comparison, Var
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema

EMP = RelationSchema("Emp", ["Name", "Dept", "Salary:number"])
BUDGET = RelationSchema("Budget", ["Dept", "Cap:number"])


def no_overpaid() -> DenialConstraint:
    """¬∃ n,d,s,c . Emp(n,d,s) ∧ Budget(d,c) ∧ s > c."""
    return DenialConstraint(
        (
            Atom("Emp", [Var("n"), Var("d"), Var("s")]),
            Atom("Budget", [Var("d"), Var("c")]),
        ),
        Comparison(">", Var("s"), Var("c")),
    )


class TestDenialConstraint:
    def test_condition_variables_must_occur_in_atoms(self):
        with pytest.raises(ConstraintError):
            DenialConstraint(
                (Atom("Emp", [Var("n"), Var("d"), Var("s")]),),
                Comparison(">", Var("s"), Var("zz")),
            )

    def test_needs_at_least_one_atom(self):
        with pytest.raises(ConstraintError):
            DenialConstraint((), None)

    def test_quantified_condition_rejected(self):
        from repro.query.ast import Exists

        with pytest.raises(ConstraintError):
            DenialConstraint(
                (Atom("Emp", [Var("n"), Var("d"), Var("s")]),),
                Exists(["x"], Comparison("=", Var("x"), Var("s"))),
            )


class TestViolationSets:
    def test_cross_relation_violation(self):
        emp = RelationInstance.from_values(
            EMP, [("Mary", "R&D", 40), ("John", "R&D", 10)]
        )
        budget = RelationInstance.from_values(BUDGET, [("R&D", 20)])
        rows = emp.rows | budget.rows
        violations = set(violation_sets(rows, no_overpaid()))
        assert violations == {
            frozenset({Row(EMP, ("Mary", "R&D", 40)), Row(BUDGET, ("R&D", 20))})
        }

    def test_no_violations(self):
        emp = RelationInstance.from_values(EMP, [("Mary", "R&D", 10)])
        budget = RelationInstance.from_values(BUDGET, [("R&D", 20)])
        assert list(violation_sets(emp.rows | budget.rows, no_overpaid())) == []

    def test_single_tuple_violation(self):
        # A tuple can violate a constraint by itself (Salary > 100).
        constraint = DenialConstraint(
            (Atom("Emp", [Var("n"), Var("d"), Var("s")]),),
            Comparison(">", Var("s"), 100),
        )
        emp = RelationInstance.from_values(EMP, [("Mary", "R&D", 400)])
        violations = list(violation_sets(emp.rows, constraint))
        assert violations == [frozenset(emp.rows)]


class TestHypergraph:
    def test_superset_edges_pruned(self):
        rows = RelationInstance.from_values(EMP, [("A", "X", 1), ("B", "X", 2)]).rows
        row_a, row_b = sorted(rows)
        hyper = ConflictHypergraph(rows, [frozenset({row_a}), frozenset({row_a, row_b})])
        assert hyper.edges == (frozenset({row_a}),)

    def test_empty_edge_rejected(self):
        with pytest.raises(ConstraintError):
            ConflictHypergraph([], [frozenset()])

    def test_repairs_exclude_singleton_violators(self):
        constraint = DenialConstraint(
            (Atom("Emp", [Var("n"), Var("d"), Var("s")]),),
            Comparison(">", Var("s"), 100),
        )
        emp = RelationInstance.from_values(
            EMP, [("Mary", "R&D", 400), ("John", "PR", 10)]
        )
        hyper = build_conflict_hypergraph(emp.rows, [constraint])
        repairs = hyper.maximal_independent_sets()
        assert repairs == [frozenset({Row(EMP, ("John", "PR", 10))})]

    def test_ternary_conflicts(self):
        # "No three employees in one department": each violating triple
        # is a 3-element hyperedge, and repairs keep at most two.
        constraint = DenialConstraint(
            (
                Atom("Emp", [Var("n1"), Var("d"), Var("s1")]),
                Atom("Emp", [Var("n2"), Var("d"), Var("s2")]),
                Atom("Emp", [Var("n3"), Var("d"), Var("s3")]),
            ),
            # All three distinct.
            Comparison("!=", Var("n1"), Var("n2"))
            & Comparison("!=", Var("n2"), Var("n3"))
            & Comparison("!=", Var("n1"), Var("n3")),
        )
        emp = RelationInstance.from_values(
            EMP, [("A", "X", 1), ("B", "X", 2), ("C", "X", 3)]
        )
        hyper = build_conflict_hypergraph(emp.rows, [constraint])
        repairs = hyper.maximal_independent_sets()
        assert len(repairs) == 3
        assert all(len(repair) == 2 for repair in repairs)

    def test_is_maximal_independent(self):
        emp = RelationInstance.from_values(EMP, [("A", "X", 1), ("B", "X", 2)])
        hyper = build_conflict_hypergraph(emp.rows, [])
        assert hyper.is_maximal_independent(set(emp.rows))
        assert not hyper.is_maximal_independent(set())


class TestFdAsDenial:
    def test_fd_translation_matches_conflict_graph(self):
        schema = RelationSchema("R", ["A:number", "B:number", "C:number"])
        fd = FunctionalDependency.parse("A -> B, C", "R")
        instance = RelationInstance.from_values(
            schema, [(1, 1, 1), (1, 1, 2), (1, 2, 1), (2, 5, 5)]
        )
        graph = build_conflict_graph(instance, [fd])
        hyper = build_conflict_hypergraph(
            instance.rows, [fd_as_denial(fd, schema)]
        )
        graph_edges = {frozenset(pair) for pair in graph.edges()}
        assert set(hyper.edges) == graph_edges

    def test_fd_translation_repairs_agree(self):
        from repro.repairs.enumerate import enumerate_repairs

        schema = RelationSchema("R", ["A:number", "B:number"])
        fd = FunctionalDependency.parse("A -> B", "R")
        instance = RelationInstance.from_values(
            schema, [(1, 1), (1, 2), (2, 1), (2, 2)]
        )
        graph = build_conflict_graph(instance, [fd])
        hyper = build_conflict_hypergraph(
            instance.rows, [fd_as_denial(fd, schema)]
        )
        assert set(hyper.maximal_independent_sets()) == set(
            enumerate_repairs(graph)
        )
