"""Property-based round-trip tests for the persistence layers."""

import sqlite3

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.csv_io import instance_to_csv_text, read_instance_csv_text
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.relational.sqlite_io import load_instance, save_instance

#: Printable names without CSV-hostile control characters; the csv
#: module handles quoting/commas/quotes itself, which the test relies on.
names = st.text(
    alphabet=st.characters(
        whitelist_categories=("L", "N", "P", "S", "Z"), max_codepoint=0x2FF
    ),
    max_size=12,
)
naturals = st.integers(min_value=0, max_value=10**9)

MIXED = RelationSchema("T", ["Label", "Amount:number", "Note"])


@st.composite
def mixed_instances(draw):
    rows = draw(
        st.lists(st.tuples(names, naturals, names), max_size=12, unique=True)
    )
    return RelationInstance.from_values(MIXED, rows)


class TestCsvRoundTrip:
    @given(mixed_instances())
    @settings(max_examples=60, deadline=None)
    def test_csv_text_round_trip(self, instance):
        text = instance_to_csv_text(instance)
        assert read_instance_csv_text(text, "T") == instance


class TestSqliteRoundTrip:
    @given(mixed_instances())
    @settings(max_examples=40, deadline=None)
    def test_sqlite_round_trip_in_memory(self, instance):
        connection = sqlite3.connect(":memory:")
        try:
            save_instance(instance, connection)
            assert load_instance(connection, "T") == instance
        finally:
            connection.close()
