"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest
from hypothesis import strategies as st

from repro.constraints.conflict_graph import ConflictGraph, build_conflict_graph
from repro.constraints.fd import FunctionalDependency
from repro.datagen.generators import GRID_FDS, GRID_SCHEMA
from repro.priorities.priority import Priority
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row, sorted_rows
from repro.relational.schema import RelationSchema

# ---------------------------------------------------------------------------
# Plain fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def kv_schema() -> RelationSchema:
    """R(A, B) with numeric attributes and key A → B."""
    return GRID_SCHEMA


@pytest.fixture
def kv_fds() -> Tuple[FunctionalDependency, ...]:
    return GRID_FDS


# ---------------------------------------------------------------------------
# Hypothesis strategies: random inconsistent instances + priorities
# ---------------------------------------------------------------------------

#: Schema used by the random two-FD strategy (Example 9's shape).
TWO_FD_SCHEMA = RelationSchema(
    "R", ["A:number", "B:number", "C:number", "D:number"]
)
TWO_FDS = (
    FunctionalDependency.parse("A -> B", "R"),
    FunctionalDependency.parse("C -> D", "R"),
)


@st.composite
def key_instances(draw, max_tuples: int = 8, key_domain: int = 3, val_domain: int = 3):
    """Random R(A,B) instances under the key A → B."""
    n = draw(st.integers(min_value=0, max_value=max_tuples))
    values = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=key_domain - 1),
                st.integers(min_value=0, max_value=val_domain - 1),
            ),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return RelationInstance.from_values(GRID_SCHEMA, values)


@st.composite
def two_fd_instances(draw, max_tuples: int = 7, domain: int = 3):
    """Random R(A,B,C,D) instances under {A → B, C → D}.

    Small domains force overlapping conflicts from both dependencies,
    the regime where L/S/G/C genuinely differ.
    """
    n = draw(st.integers(min_value=0, max_value=max_tuples))
    small = st.integers(min_value=0, max_value=domain - 1)
    values = draw(
        st.lists(
            st.tuples(small, small, small, small),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return RelationInstance.from_values(TWO_FD_SCHEMA, values)


@st.composite
def priorities_for(draw, instance_strategy, dependencies):
    """A random instance plus a random (possibly partial) priority.

    The priority orients a random subset of conflict edges consistently
    with a random linear order on tuples, which guarantees acyclicity.
    """
    instance = draw(instance_strategy)
    graph = build_conflict_graph(instance, dependencies)
    order = sorted_rows(graph.vertices)
    draw(st.randoms(use_true_random=False)).shuffle(order)
    position = {row: index for index, row in enumerate(order)}
    edges = []
    for pair in graph.edges():
        if not draw(st.booleans()):
            continue
        first, second = tuple(sorted_rows(pair))
        if position[first] < position[second]:
            edges.append((first, second))
        else:
            edges.append((second, first))
    return instance, Priority(graph, edges)


def key_priorities(**kwargs):
    """Instance+priority pairs over the key schema."""
    return priorities_for(key_instances(**kwargs), GRID_FDS)


def two_fd_priorities(**kwargs):
    """Instance+priority pairs over the two-FD schema."""
    return priorities_for(two_fd_instances(**kwargs), TWO_FDS)
