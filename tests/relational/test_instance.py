"""Unit tests for relation instances."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema

SCHEMA = RelationSchema("R", ["A:number", "B:number"])


def make(*pairs):
    return RelationInstance.from_values(SCHEMA, pairs)


class TestConstruction:
    def test_from_values(self):
        instance = make((1, 2), (3, 4))
        assert len(instance) == 2

    def test_set_semantics_dedupes(self):
        assert len(make((1, 2), (1, 2))) == 1

    def test_rejects_foreign_rows(self):
        other = RelationSchema("S", ["A:number", "B:number"])
        with pytest.raises(SchemaError):
            RelationInstance(SCHEMA, [Row(other, (1, 2))])

    def test_row_constructor_helper(self):
        instance = make()
        row = instance.row(5, 6)
        assert row["A"] == 5 and row.relation == "R"


class TestSetAlgebra:
    def test_union(self):
        assert len(make((1, 1)).union(make((2, 2)))) == 2

    def test_union_requires_same_schema(self):
        other = RelationInstance.from_values(
            RelationSchema("S", ["A:number", "B:number"]), [(1, 1)]
        )
        with pytest.raises(SchemaError):
            make((1, 1)).union(other)

    def test_with_and_without_rows(self):
        instance = make((1, 1))
        extra = instance.row(2, 2)
        grown = instance.with_rows([extra])
        assert extra in grown
        shrunk = grown.without_rows([extra])
        assert extra not in shrunk and len(shrunk) == 1

    def test_restrict(self):
        instance = make((1, 1), (2, 2))
        keep = instance.row(1, 1)
        assert set(instance.restrict({keep})) == {keep}

    def test_issubset(self):
        small = make((1, 1))
        big = make((1, 1), (2, 2))
        assert small.issubset(big)
        assert not big.issubset(small)


class TestDomainsAndOrder:
    def test_active_domain(self):
        assert make((1, 2), (2, 3)).active_domain() == {1, 2, 3}

    def test_sorted_is_deterministic(self):
        a = make((3, 1), (1, 1), (2, 2)).sorted()
        b = make((2, 2), (3, 1), (1, 1)).sorted()
        assert a == b

    def test_equality_and_hash(self):
        assert make((1, 1)) == make((1, 1))
        assert hash(make((1, 1))) == hash(make((1, 1)))
        assert make((1, 1)) != make((1, 2))
