"""Integration tests for :class:`SqlCqaEngine` and the session mirror."""

import sqlite3

import pytest

from repro.backend import SqlCqaEngine, SqliteMirror
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.answers import Verdict
from repro.cqa.engine import CqaEngine
from repro.datagen.paper_instances import mgr_scenario
from repro.exceptions import QueryError
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.relational.sqlite_io import save_database

R_SCHEMA = RelationSchema("R", ["K", "A:number", "B"])
FDS = [FunctionalDependency.parse("K -> A", "R")]

ROWS = [
    ("k1", 0, "x"),
    ("k1", 1, "x"),
    ("k2", 5, "y"),
    ("k3", 7, "w"),
]


@pytest.fixture
def db_path(tmp_path):
    path = tmp_path / "db.sqlite"
    database = Database([RelationInstance.from_values(R_SCHEMA, ROWS)])
    save_database(database, path, FDS)
    return path


@pytest.fixture
def memory_engine():
    database = Database([RelationInstance.from_values(R_SCHEMA, ROWS)])
    return CqaEngine(database, FDS)


class TestPushdown:
    def test_open_query_is_pushed_and_equivalent(self, db_path, memory_engine):
        query = "EXISTS b . R(x, y, b)"
        with SqlCqaEngine(db_path, FDS) as engine:
            pushed = engine.certain_answers(query)
            assert engine.last_route == "sqlite"
        reference = memory_engine.certain_answers(query)
        assert pushed.certain == reference.certain
        assert pushed.possible == reference.possible
        assert pushed.variables == reference.variables

    def test_closed_query_verdicts(self, db_path, memory_engine):
        cases = [
            ("EXISTS k, a, b . R(k, a, b) AND a > 6", Verdict.TRUE),
            ("EXISTS k, b . R(k, 1, b)", Verdict.UNDETERMINED),
            ("EXISTS k, b . R(k, 99, b)", Verdict.FALSE),
        ]
        with SqlCqaEngine(db_path, FDS) as engine:
            for query, expected in cases:
                assert engine.answer(query).verdict is expected
                assert engine.last_route == "sqlite"
                assert memory_engine.answer(query).verdict is expected

    def test_is_consistently_true(self, db_path):
        with SqlCqaEngine(db_path, FDS) as engine:
            assert engine.is_consistently_true("EXISTS b . R('k3', 7, b)")
            assert not engine.is_consistently_true("EXISTS b . R('k1', 0, b)")

    def test_sql_frontend(self, db_path, memory_engine):
        sql = "SELECT t.K FROM R t WHERE t.A >= 1"
        with SqlCqaEngine(db_path, FDS) as engine:
            pushed = engine.sql_certain_answers(sql)
            assert engine.last_route == "sqlite"
        assert pushed.certain == memory_engine.sql_certain_answers(sql).certain

    def test_explicit_answer_variables(self, db_path, memory_engine):
        query = "EXISTS b . R(x, y, b)"
        with SqlCqaEngine(db_path, FDS) as engine:
            pushed = engine.certain_answers(query, variables=("y",))
        assert pushed.certain == memory_engine.certain_answers(
            query, variables=("y",)
        ).certain

    def test_answer_requires_closed_formula(self, db_path):
        with SqlCqaEngine(db_path, FDS) as engine:
            with pytest.raises(QueryError):
                engine.answer("R(x, y, z)")

    def test_unknown_relation_is_loud(self, db_path):
        with SqlCqaEngine(db_path, FDS) as engine:
            with pytest.raises(QueryError):
                engine.certain_answers("EXISTS x . Nope(x)")

    def test_family_argument_honoured_without_priority(self, db_path):
        database = Database([RelationInstance.from_values(R_SCHEMA, ROWS)])
        for family in Family:
            reference = CqaEngine(database, FDS, family=family)
            with SqlCqaEngine(db_path, FDS, family=family) as engine:
                pushed = engine.certain_answers("EXISTS b . R(x, y, b)")
                assert engine.last_route == "sqlite"
            assert pushed.family is family
            assert (
                pushed.certain
                == reference.certain_answers("EXISTS b . R(x, y, b)").certain
            )

    def test_summary_reports_route(self, db_path):
        with SqlCqaEngine(db_path, FDS) as engine:
            engine.certain_answers("EXISTS b . R(x, y, b)")
            summary = engine.summary()
        assert summary["backend"] == "sqlite"
        assert summary["last_route"] == "sqlite"
        assert summary["relations"] == 1


class TestFallback:
    def test_non_conjunctive_query_falls_back(self, db_path, memory_engine):
        query = "FORALL k, a, b . R(k, a, b) IMPLIES a < 10"
        with SqlCqaEngine(db_path, FDS) as engine:
            verdict = engine.answer(query).verdict
            assert engine.last_route.startswith("fallback:")
        assert verdict is memory_engine.answer(query).verdict

    def test_priority_edges_force_fallback(self, db_path):
        database = Database([RelationInstance.from_values(R_SCHEMA, ROWS)])
        winner = RelationInstance.from_values(R_SCHEMA, ROWS).row("k1", 1, "x")
        loser = RelationInstance.from_values(R_SCHEMA, ROWS).row("k1", 0, "x")
        edges = [(winner, loser)]
        reference = CqaEngine(database, FDS, edges, Family.GLOBAL)
        with SqlCqaEngine(db_path, FDS, edges, Family.GLOBAL) as engine:
            pushed = engine.certain_answers("EXISTS b . R(x, y, b)")
            assert engine.last_route.startswith("fallback: priority")
        expected = reference.certain_answers("EXISTS b . R(x, y, b)")
        assert pushed.certain == expected.certain
        assert pushed.possible == expected.possible

    def test_differing_fd_lhs_falls_back_and_matches(self, tmp_path):
        scenario = mgr_scenario(with_priority=False)
        from repro.datagen.paper_instances import mgr_dependencies

        dependencies = mgr_dependencies()
        path = tmp_path / "mgr.sqlite"
        save_database(Database([scenario.instance]), path, dependencies)
        reference = CqaEngine(scenario.instance, dependencies)
        query = "EXISTS n, d, s, r . Mgr(n, d, s, r) AND s > 30"
        with SqlCqaEngine(path, dependencies) as engine:
            verdict = engine.answer(query).verdict
            assert engine.last_route.startswith("fallback:")
            assert "left-hand sides" in engine.last_route
        assert verdict is reference.answer(query).verdict


class TestExternalTables:
    def test_engine_over_foreign_table(self, tmp_path):
        path = tmp_path / "ext.sqlite"
        with sqlite3.connect(path) as connection:
            connection.execute(
                "CREATE TABLE T (X TEXT NOT NULL, N INTEGER NOT NULL)"
            )
            connection.executemany(
                "INSERT INTO T VALUES (?, ?)", [("a", 1), ("a", 2), ("b", 3)]
            )
        fds = [FunctionalDependency.parse("X -> N", "T")]
        with SqlCqaEngine(path, fds, relation_names=["T"]) as engine:
            # every repair keeps one N-class per X-group, so each group's
            # X value is certain ...
            projected = engine.certain_answers("EXISTS n . T(x, n)")
            assert engine.last_route == "sqlite"
            # ... but only the unconflicted (X, N) pair survives intact
            full = engine.certain_answers("T(x, n)", variables=("x", "n"))
        assert projected.certain == frozenset({("a",), ("b",)})
        assert full.certain == frozenset({("b", 3)})
        assert full.possible == frozenset({("a", 1), ("a", 2), ("b", 3)})


class TestSqliteMirror:
    def _database(self, rows):
        return Database([RelationInstance.from_values(R_SCHEMA, rows)])

    def test_refresh_cycle(self):
        with SqliteMirror(FDS) as mirror:
            engine = mirror.engine_for(self._database(ROWS))
            before = engine.certain_answers("EXISTS b . R(x, y, b)")
            assert ("k3", 7) in before.certain

            grown = ROWS + [("k3", 8, "w2")]
            # without mark_dirty the mirror serves the stale snapshot
            stale = mirror.engine_for(self._database(grown))
            assert ("k3", 7) in stale.certain_answers(
                "EXISTS b . R(x, y, b)"
            ).certain

            mirror.mark_dirty()
            fresh = mirror.engine_for(self._database(grown))
            after = fresh.certain_answers("EXISTS b . R(x, y, b)")
            assert ("k3", 7) not in after.certain  # k3 now has two classes

    def test_relation_removal_syncs(self):
        with SqliteMirror(FDS) as mirror:
            other = RelationSchema("S", ["A:number", "C"])
            both = Database(
                [
                    RelationInstance.from_values(R_SCHEMA, ROWS),
                    RelationInstance.from_values(other, [(1, "c")]),
                ]
            )
            mirror.engine_for(both)
            mirror.mark_dirty()
            engine = mirror.engine_for(self._database(ROWS))
            assert tuple(engine.schema.relation_names) == ("R",)
