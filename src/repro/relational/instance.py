"""Relation instances: finite sets of rows over one schema.

The paper's ``r`` is a finite first-order structure; here it is an
immutable set of :class:`~repro.relational.rows.Row` objects.  Instances
support set algebra (union, difference, subset tests) — repairs are
subsets of instances — plus the active-domain computation the query
evaluator needs.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, Iterator, Sequence, Set, Tuple

from repro.exceptions import SchemaError
from repro.relational.domain import Value
from repro.relational.rows import Row, sorted_rows
from repro.relational.schema import RelationSchema


class RelationInstance:
    """An immutable finite instance of one relation schema."""

    __slots__ = ("schema", "rows")

    def __init__(self, schema: RelationSchema, rows: Iterable[Row] = ()) -> None:
        rows = frozenset(rows)
        for row in rows:
            if row.relation != schema.name:
                raise SchemaError(
                    f"row {row!r} belongs to relation {row.relation!r}, "
                    f"not {schema.name!r}"
                )
        self.schema = schema
        self.rows: FrozenSet[Row] = rows

    @classmethod
    def from_values(
        cls, schema: RelationSchema, tuples: Iterable[Sequence[Value]]
    ) -> "RelationInstance":
        """Build an instance from raw value sequences."""
        return cls(schema, (Row(schema, values) for values in tuples))

    def row(self, *values: Value) -> Row:
        """Construct (not insert) a row over this instance's schema."""
        return Row(self.schema, values)

    def with_rows(self, rows: Iterable[Row]) -> "RelationInstance":
        """A new instance with ``rows`` added."""
        return RelationInstance(self.schema, self.rows | frozenset(rows))

    def without_rows(self, rows: Iterable[Row]) -> "RelationInstance":
        """A new instance with ``rows`` removed."""
        return RelationInstance(self.schema, self.rows - frozenset(rows))

    def restrict(self, rows: AbstractSet[Row]) -> "RelationInstance":
        """The subinstance containing only rows present in ``rows``."""
        return RelationInstance(self.schema, self.rows & frozenset(rows))

    def active_domain(self) -> Set[Value]:
        """All values appearing in the instance."""
        domain: Set[Value] = set()
        for row in self.rows:
            domain.update(row.values)
        return domain

    def union(self, other: "RelationInstance") -> "RelationInstance":
        """Set union of two instances over the same schema."""
        if other.schema != self.schema:
            raise SchemaError("cannot union instances over different schemas")
        return RelationInstance(self.schema, self.rows | other.rows)

    def issubset(self, other: "RelationInstance") -> bool:
        return self.rows <= other.rows

    def sorted(self) -> Tuple[Row, ...]:
        """Rows in deterministic listing order."""
        return tuple(sorted_rows(self.rows))

    def __contains__(self, row: object) -> bool:
        return row in self.rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationInstance):
            return NotImplemented
        return self.schema == other.schema and self.rows == other.rows

    def __hash__(self) -> int:
        return hash((self.schema, self.rows))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(repr(row) for row in self.sorted())
        return f"{{{body}}}"
