"""Integration tests: multi-relation databases (paper §2 remark).

The paper restricts exposition to one relation and notes the framework
"can be easily extended to handle databases with multiple relations"
along the lines of [7].  These tests exercise that extension through
the whole stack: conflicts per relation, priorities spanning relations,
preferred repairs and cross-relation conjunctive queries.
"""

import pytest

from repro.core.families import Family
from repro.cqa.answers import Verdict
from repro.cqa.engine import CqaEngine
from repro.constraints.conflict_graph import build_conflict_graph
from repro.constraints.fd import FunctionalDependency
from repro.priorities.builders import priority_from_ranking
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema

EMP = RelationSchema("Emp", ["Name", "Dept", "Level:number"])
DEPT = RelationSchema("Dept", ["Dept", "Head", "Floor:number"])

FDS = (
    FunctionalDependency.parse("Name -> Dept, Level", "Emp"),
    FunctionalDependency.parse("Dept -> Head, Floor", "Dept"),
)


def sample_db():
    emp = RelationInstance.from_values(
        EMP,
        [
            ("Mary", "R&D", 6),
            ("Mary", "IT", 5),   # conflicting report for Mary
            ("John", "PR", 4),
        ],
    )
    dept = RelationInstance.from_values(
        DEPT,
        [
            ("R&D", "Mary", 3),
            ("R&D", "John", 2),  # conflicting head for R&D
            ("PR", "Zoe", 1),
        ],
    )
    return Database([emp, dept])


class TestMultiRelationRepairs:
    def test_conflicts_stay_within_relations(self):
        db = sample_db()
        graph = build_conflict_graph(db, FDS)
        assert graph.edge_count == 2
        for pair in graph.edges():
            first, second = tuple(pair)
            assert first.relation == second.relation

    def test_repairs_combine_choices_across_relations(self):
        db = sample_db()
        engine = CqaEngine(db, FDS)
        # 2 choices for Mary × 2 choices for R&D's head.
        assert len(engine.repairs()) == 4
        for repair in engine.repairs():
            rebuilt = Database.from_rows(db.schema, repair)
            assert len(rebuilt.relation("Emp")) == 2
            assert len(rebuilt.relation("Dept")) == 2

    def test_cross_relation_priorities(self):
        db = sample_db()
        graph = build_conflict_graph(db, FDS)
        # Prefer higher Level for Emp conflicts and higher Floor for Dept.
        def rank(row):
            return row["Level"] if row.relation == "Emp" else row["Floor"]

        priority = priority_from_ranking(graph, rank)
        engine = CqaEngine(db, FDS, priority, Family.GLOBAL)
        (repair,) = engine.repairs()
        rebuilt = Database.from_rows(db.schema, repair)
        assert ("Mary", "R&D", 6) in {
            tuple(row.values) for row in rebuilt.relation("Emp")
        }
        assert ("R&D", "Mary", 3) in {
            tuple(row.values) for row in rebuilt.relation("Dept")
        }


class TestCrossRelationQueries:
    def test_join_query_under_preferences(self):
        db = sample_db()
        graph = build_conflict_graph(db, FDS)
        priority = priority_from_ranking(
            graph,
            lambda row: row["Level"] if row.relation == "Emp" else row["Floor"],
        )
        engine = CqaEngine(db, FDS, priority, Family.GLOBAL)
        # "Is Mary in a department she heads?"
        query = (
            "EXISTS d, lv, fl . Emp(Mary, d, lv) AND Dept(d, Mary, fl)"
        )
        assert engine.answer(query).verdict is Verdict.TRUE

    def test_join_query_classically_undetermined(self):
        db = sample_db()
        engine = CqaEngine(db, FDS)
        query = "EXISTS d, lv, fl . Emp(Mary, d, lv) AND Dept(d, Mary, fl)"
        assert engine.answer(query).verdict is Verdict.UNDETERMINED

    def test_sql_join_certain_answers(self):
        db = sample_db()
        graph = build_conflict_graph(db, FDS)
        priority = priority_from_ranking(
            graph,
            lambda row: row["Level"] if row.relation == "Emp" else row["Floor"],
        )
        engine = CqaEngine(db, FDS, priority, Family.GLOBAL)
        result = engine.sql_certain_answers(
            "SELECT e.Name, d.Head FROM Emp e, Dept d WHERE e.Dept = d.Dept"
        )
        assert ("Mary", "Mary") in result.certain

    def test_unconstrained_relation_passes_through(self):
        db = sample_db()
        engine = CqaEngine(db, FDS)
        assert engine.answer("Dept('PR', Zoe, 1)").verdict is Verdict.TRUE
