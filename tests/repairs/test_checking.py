"""Unit and property tests for repair checking and completion."""

import pytest
from hypothesis import given, settings

from repro.constraints.conflict_graph import build_conflict_graph
from repro.datagen.generators import GRID_FDS
from repro.datagen.paper_instances import mgr_scenario
from repro.repairs.checking import (
    complete_to_repair,
    consistent_subinstance,
    is_repair,
    is_repair_on_graph,
)
from repro.repairs.enumerate import enumerate_repairs
from tests.conftest import key_instances


class TestIsRepair:
    def test_true_repair_accepted(self):
        scenario = mgr_scenario()
        assert is_repair(
            scenario.row_set("mary_rd", "john_pr"),
            scenario.instance,
            scenario.dependencies,
        )

    def test_non_maximal_rejected(self):
        scenario = mgr_scenario()
        assert not is_repair(
            scenario.row_set("mary_rd"), scenario.instance, scenario.dependencies
        )

    def test_inconsistent_rejected(self):
        scenario = mgr_scenario()
        assert not is_repair(
            scenario.row_set("mary_rd", "john_rd"),
            scenario.instance,
            scenario.dependencies,
        )

    def test_non_subset_rejected(self):
        scenario = mgr_scenario()
        from repro.relational.rows import Row

        foreign = Row(scenario.instance.schema, ("Zoe", "HR", 1, 1))
        assert not is_repair(
            {foreign}, scenario.instance, scenario.dependencies
        )

    def test_consistent_subinstance(self):
        scenario = mgr_scenario()
        assert consistent_subinstance(
            scenario.row_set("mary_rd"), scenario.instance, scenario.dependencies
        )
        assert not consistent_subinstance(
            scenario.row_set("mary_rd", "john_rd"),
            scenario.instance,
            scenario.dependencies,
        )

    @given(key_instances())
    @settings(max_examples=50, deadline=None)
    def test_graph_check_agrees_with_definition(self, instance):
        graph = build_conflict_graph(instance, GRID_FDS)
        for repair in enumerate_repairs(graph):
            assert is_repair(repair, instance, GRID_FDS)
            assert is_repair_on_graph(repair, graph)


class TestCompleteToRepair:
    def test_completion_contains_seed(self):
        scenario = mgr_scenario()
        seed = scenario.row_set("mary_it")
        completed = complete_to_repair(seed, scenario.graph)
        assert seed <= completed
        assert scenario.graph.is_maximal_independent(completed)

    def test_completion_rejects_conflicting_seed(self):
        scenario = mgr_scenario()
        with pytest.raises(ValueError):
            complete_to_repair(
                scenario.row_set("mary_rd", "john_rd"), scenario.graph
            )

    @given(key_instances())
    @settings(max_examples=50, deadline=None)
    def test_empty_seed_always_completes(self, instance):
        graph = build_conflict_graph(instance, GRID_FDS)
        completed = complete_to_repair(frozenset(), graph)
        assert graph.is_maximal_independent(completed) or not graph.vertices
