"""Synthetic instance generators for tests and benchmarks.

The paper reports data-complexity results, so the benchmark harness
needs instance families whose size ``n`` scales while the schema,
dependencies and query stay fixed.  Each generator below produces a
structurally controlled inconsistency pattern:

* :func:`grid_instance` — Example 4's pattern generalized: ``groups``
  key-groups of ``per_group`` mutually conflicting tuples; the number
  of repairs is ``per_group ** groups``.
* :func:`chain_instance` — Example 9's pattern generalized: a path of
  conflicts alternating between two FDs; repairs are the maximal
  independent sets of a path (Fibonacci-many).
* :func:`duplicated_grid_instance` — Example 8's pattern generalized:
  each group holds ``dup`` duplicates (agreeing on the FD) plus one
  challenger, exercising the L-vs-S separation.
* :func:`random_inconsistent_instance` — random key-violating instance
  with a target conflict rate.
* :func:`integration_instance` — several individually consistent
  sources over one key, merged (Example 1's provenance structure),
  returning per-tuple source labels for reliability priorities.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.constraints.fd import FunctionalDependency
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema

GRID_SCHEMA = RelationSchema("R", ["A:number", "B:number"])
GRID_FDS = (FunctionalDependency.parse("A -> B", "R"),)

CHAIN_SCHEMA = RelationSchema("R", ["A:number", "B:number", "C:number", "D:number"])
CHAIN_FDS = (
    FunctionalDependency.parse("A -> B", "R"),
    FunctionalDependency.parse("C -> D", "R"),
)

DUP_SCHEMA = RelationSchema("R", ["A:number", "B:number", "C:number"])
DUP_FDS = (FunctionalDependency.parse("A -> B", "R"),)


def grid_instance(groups: int, per_group: int = 2) -> RelationInstance:
    """``groups`` disjoint cliques of ``per_group`` conflicting tuples.

    ``per_group=2`` is exactly Example 4's ``r_groups``; the repair
    count is ``per_group ** groups``.
    """
    return RelationInstance.from_values(
        GRID_SCHEMA,
        [(g, b) for g in range(groups) for b in range(per_group)],
    )


def chain_instance(length: int) -> RelationInstance:
    """A conflict *path* of ``length`` tuples alternating two FDs.

    Tuple ``t_i`` conflicts with ``t_{i+1}`` via ``C → D`` for even
    ``i`` and via ``A → B`` for odd ``i`` — the zigzag of Figure 4.
    Distinctness is kept by spreading the untouched attributes.
    """
    if length < 1:
        raise ValueError("chain length must be positive")
    values: List[Tuple[int, int, int, int]] = []
    for i in range(length):
        # Consecutive tuples share an A-group (even i) or a C-group
        # (odd i) and differ on the dependent attribute there.
        a_group = (i + 1) // 2
        c_group = length + 1 + i // 2
        values.append((a_group, i % 2, c_group, i % 2))
    return RelationInstance.from_values(CHAIN_SCHEMA, values)


def chain_rows(instance: RelationInstance) -> List[Row]:
    """The rows of a chain instance in path order ``t_0, t_1, ...``.

    The generator encodes the path index ``i`` as ``2*A - B`` (the
    ``A``-group advances every other step and ``B`` holds the parity),
    so the order is recoverable from the data itself.
    """
    return sorted(instance.rows, key=lambda row: 2 * row["A"] - row["B"])


def chain_priority_pairs(instance: RelationInstance) -> List[Tuple[Row, Row]]:
    """The priority chain ``t_0 ≻ t_1 ≻ ...`` for a chain instance."""
    ordered = chain_rows(instance)
    return [(ordered[i], ordered[i + 1]) for i in range(len(ordered) - 1)]


def duplicated_grid_instance(groups: int, dup: int = 2) -> RelationInstance:
    """Example 8's pattern, ``groups`` times.

    Each group ``g`` holds ``dup`` duplicates agreeing on ``A → B``
    (differing only on ``C``) plus one challenger with a different
    ``B``; the challenger conflicts with every duplicate, while the
    duplicates do not conflict with each other.
    """
    values: List[Tuple[int, int, int]] = []
    for g in range(groups):
        for d in range(dup):
            values.append((g, 0, d))
        values.append((g, 1, dup))
    return RelationInstance.from_values(DUP_SCHEMA, values)


def duplicated_grid_priority_pairs(
    instance: RelationInstance,
) -> List[Tuple[Row, Row]]:
    """Challenger ≻ every duplicate, per group (Example 8's priority)."""
    pairs: List[Tuple[Row, Row]] = []
    by_group: Dict[int, List[Row]] = {}
    for row in instance.rows:
        by_group.setdefault(row["A"], []).append(row)
    for rows in by_group.values():
        challengers = [row for row in rows if row["B"] == 1]
        duplicates = [row for row in rows if row["B"] == 0]
        for challenger in challengers:
            for duplicate in duplicates:
                pairs.append((challenger, duplicate))
    return pairs


def random_inconsistent_instance(
    n: int,
    key_domain: Optional[int] = None,
    value_domain: int = 4,
    rng: Optional[random.Random] = None,
) -> RelationInstance:
    """``n`` random tuples over R(A,B) with key ``A → B``.

    ``key_domain`` controls the conflict rate: fewer key values mean
    larger conflict cliques.  Defaults to ``max(1, n // 2)`` which
    yields a mix of consistent and conflicting tuples.
    """
    rng = rng or random.Random()
    key_domain = key_domain if key_domain is not None else max(1, n // 2)
    seen = set()
    values: List[Tuple[int, int]] = []
    while len(values) < n:
        candidate = (rng.randrange(key_domain), rng.randrange(value_domain))
        if candidate not in seen:
            seen.add(candidate)
            values.append(candidate)
        elif len(seen) >= key_domain * value_domain:
            break
    return RelationInstance.from_values(GRID_SCHEMA, values)


INTEGRATION_SCHEMA = RelationSchema(
    "Emp", ["Name", "Dept", "Salary:number"]
)
INTEGRATION_FDS = (
    FunctionalDependency.parse("Name -> Dept, Salary", "Emp"),
)


def integration_instance(
    people: int,
    sources: int,
    disagreement: float = 0.5,
    rng: Optional[random.Random] = None,
) -> Tuple[RelationInstance, Dict[Row, str]]:
    """Merge ``sources`` consistent sources reporting on ``people``.

    Each source knows a random subset of people; with probability
    ``disagreement`` it reports a divergent department/salary, creating
    key conflicts across sources.  Returns the merged instance and the
    tuple → source-name labels used by reliability priorities.
    """
    rng = rng or random.Random()
    departments = ["R&D", "IT", "PR", "HR", "Sales"]
    truth = {
        f"p{i}": (rng.choice(departments), 10 * rng.randrange(1, 10))
        for i in range(people)
    }
    labels: Dict[Row, str] = {}
    rows: List[Row] = []
    for s in range(sources):
        source_name = f"s{s}"
        for person, (dept, salary) in truth.items():
            if rng.random() < 0.4:
                continue  # this source does not know this person
            if rng.random() < disagreement:
                dept = rng.choice(departments)
                salary = 10 * rng.randrange(1, 10)
            row = Row(INTEGRATION_SCHEMA, (person, dept, salary))
            rows.append(row)
            # Identical reports from several sources collapse into one
            # tuple; keep the most reliable (lowest-index) label.
            if row not in labels:
                labels[row] = source_name
    return RelationInstance(INTEGRATION_SCHEMA, rows), labels
