"""The typed diagnostic model of the static analyzer.

Every routing decision the engines make — push a query into SQLite,
compose it with winnow survivor tables, or fall back to in-memory
repair streaming — traces back to a small set of *data-independent*
conditions on the (schema, FD theory, priority, query) quadruple.  This
module gives each condition a stable identity:

* :class:`Diagnostic` — one finding, with a code (``RA101``), a
  kebab-case name (``unsafe-variable``), a severity, the engines whose
  pushdown it blocks, a human-readable message, a fix hint, and an
  optional span into the query text;
* :data:`CATALOG` — the closed set of diagnostic codes.  The message
  *templates* are the exact reason strings the engines have always
  rendered, so ``repro_fallbacks_total{reason}`` metric labels and every
  existing test phrase stay stable while callers can now match on codes;
* :class:`RouteReport` — the analyzer's verdict: the route each engine
  would take, every diagnostic, and a fingerprint of the analyzed
  theory+query (never of the data) under which the report may be cached.

Severity semantics: ``error`` diagnostics block at least one pushed
engine; ``info`` diagnostics explain a decision without blocking
anything (the C_forest recognition, the statically-empty plan).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

#: Engine identifiers a diagnostic can block / a report can route.
SQLITE = "sqlite"
PREFSQL = "prefsql"
MEMORY = "memory"
ENGINES: Tuple[str, ...] = (SQLITE, PREFSQL, MEMORY)

#: Both pushed engines (the common blocking scope of shape diagnostics).
_PUSHED: FrozenSet[str] = frozenset({SQLITE, PREFSQL})


class Severity(Enum):
    """How a diagnostic affects routing."""

    INFO = "info"  #: explains a decision; blocks nothing
    ERROR = "error"  #: blocks the pushdown of at least one engine

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Span:
    """A half-open character range into the analyzed query text."""

    start: int
    end: int

    def to_dict(self) -> Dict[str, int]:
        return {"start": self.start, "end": self.end}


@dataclass(frozen=True)
class DiagnosticSpec:
    """One catalog entry: the identity and rendering of a code."""

    code: str  #: e.g. ``"RA201"``
    name: str  #: e.g. ``"self-join-dirty"``
    severity: Severity
    #: Engines whose pushdown the diagnostic blocks (empty for info).
    blocks: FrozenSet[str]
    #: ``str.format`` template producing the legacy reason string.
    template: str
    hint: str

    @property
    def full_code(self) -> str:
        return f"{self.code}-{self.name}"


def _spec(code, name, severity, blocks, template, hint) -> DiagnosticSpec:
    return DiagnosticSpec(code, name, severity, frozenset(blocks), template, hint)


#: The closed catalog of diagnostic codes.  Templates reproduce the
#: engines' historical reason strings verbatim — rendered text is API.
CATALOG: Dict[str, DiagnosticSpec] = {
    spec.code: spec
    for spec in (
        # --- informational (route explanations, never blocking) -----------
        _spec(
            "RA001", "pushdown-rewritable", Severity.INFO, (),
            "query is inside the rewritable fragment ({kind} plan)",
            "no action needed: certain answers run as one SQL statement",
        ),
        _spec(
            "RA002", "statically-empty", Severity.INFO, (),
            "statically unsatisfiable: {why}",
            "the conjunction can never hold under two-domain semantics; "
            "no SQL runs at all",
        ),
        _spec(
            "RA011", "rewritable-c-forest", Severity.INFO, (),
            "{explanation}",
            "C_forest key-join trees are first-order rewritable "
            "(Fuxman-Miller); the pushdown compiles them to recursive "
            "NOT EXISTS certifications — no action needed",
        ),
        # --- query-shape blockers (both pushed engines) --------------------
        _spec(
            "RA101", "unsafe-variable", Severity.ERROR, _PUSHED,
            "unsafe variable(s) {names} occur in no relational atom",
            "bind every quantified and answer variable in a relational atom",
        ),
        _spec(
            "RA102", "non-conjunctive", Severity.ERROR, _PUSHED,
            "non-conjunctive construct {construct} in the body",
            "only existential prefixes over conjunctions of atoms and "
            "comparisons are rewritable; split disjunctions, push negation "
            "into comparisons, or stream repairs",
        ),
        _spec(
            "RA103", "no-relational-atom", Severity.ERROR, _PUSHED,
            "no relational atom (pure active-domain query)",
            "add a relational atom so the query ranges over stored rows",
        ),
        _spec(
            "RA104", "shadowed-quantifier", Severity.ERROR, _PUSHED,
            "quantified variable {name!r} shadows an outer variable",
            "rename the inner quantified variable",
        ),
        # --- dirty-join blockers -------------------------------------------
        _spec(
            "RA201", "self-join-dirty", Severity.ERROR, _PUSHED,
            "more than one atom over inconsistent relation(s) "
            "{involved}; their repair choices interact",
            "C_forest key-join trees push (RA011); outside that class "
            "— join cycles, non-key correlation, dirty self-joins — "
            "keep at most one atom over an inconsistent relation or "
            "accept repair streaming",
        ),
        # --- theory blockers -----------------------------------------------
        _spec(
            "RA301", "mixed-lhs-priority", Severity.ERROR, _PUSHED,
            "relation {relation!r} has dependencies with differing "
            "left-hand sides; its repairs are not per-group class choices",
            "restate the dependencies over one shared left-hand side, or "
            "accept repair streaming",
        ),
        _spec(
            "RA302", "priority-preference-blind", Severity.ERROR,
            (SQLITE,),
            "priority edges declared: this engine's rewriting is "
            "preference-blind — use PrefSqlCqaEngine (repro.prefsql) for "
            "the winnow-aware pushdown",
            "route prioritized workloads through the preference-aware "
            "engine (--backend prefsql / the broker's prefsql pushdown)",
        ),
        _spec(
            "RA303", "duplicate-prioritized-rows", Severity.ERROR,
            (PREFSQL,),
            "prioritized relation {relation!r} stores duplicate rows; "
            "edge orientation is ambiguous, streaming repairs instead",
            "deduplicate the stored rows of the relation (priority edges "
            "bind to rowids, so each tuple must be physically unique)",
        ),
    )
}

#: Reverse lookup: full code ("RA101-unsafe-variable") -> spec.
FULL_CODES: Dict[str, DiagnosticSpec] = {
    spec.full_code: spec for spec in CATALOG.values()
}


@dataclass(frozen=True)
class Diagnostic:
    """One rendered finding of the analyzer.

    ``message`` is the legacy reason string (stable API: it feeds
    ``RewriteDecision.reason``, ``last_route`` and the
    ``repro_fallbacks_total{reason}`` metric label); ``subject`` is the
    token the finding is about (a variable, relation or keyword) used to
    locate ``span`` in the query text when one is available.
    """

    code: str
    name: str
    severity: Severity
    blocks: FrozenSet[str]
    message: str
    hint: str
    subject: Optional[str] = None
    span: Optional[Span] = None

    @property
    def full_code(self) -> str:
        return f"{self.code}-{self.name}"

    def blocks_engine(self, engine: str) -> bool:
        return engine in self.blocks

    def render(self) -> str:
        """One-line human form: ``[RA101-unsafe-variable] error: ...``."""
        return f"[{self.full_code}] {self.severity.value}: {self.message}"

    def with_span(self, span: Optional[Span]) -> "Diagnostic":
        return replace(self, span=span) if span is not None else self

    def to_dict(self) -> Dict[str, object]:
        body: Dict[str, object] = {
            "code": self.full_code,
            "severity": self.severity.value,
            "blocks": sorted(self.blocks),
            "message": self.message,
            "hint": self.hint,
        }
        if self.span is not None:
            body["span"] = self.span.to_dict()
        return body


def make_diagnostic(
    code: str, subject: Optional[str] = None, **fields: object
) -> Diagnostic:
    """Instantiate a catalog code, rendering its message template."""
    spec = CATALOG[code]
    return Diagnostic(
        code=spec.code,
        name=spec.name,
        severity=spec.severity,
        blocks=spec.blocks,
        message=spec.template.format(**fields),
        hint=spec.hint,
        subject=subject,
    )


def fallback_route(reason: str) -> str:
    """The ``last_route`` spelling of a fallback (one definition for the
    four call sites that used to inline the f-string)."""
    return f"fallback: {reason}"


@dataclass(frozen=True)
class RouteReport:
    """The analyzer's verdict for one (schema, FDs, priority, query).

    ``routes`` maps each engine to the route label its ``last_route``
    would record (``"fallback"`` is abstracted —
    :meth:`expected_last_route` renders the engine's exact string
    including the reason).  ``fingerprint`` hashes the analyzed theory
    and query only — never instance data — so reports are cacheable
    across requests until the theory changes.
    """

    query: str
    fingerprint: str
    routes: Mapping[str, str]
    diagnostics: Tuple[Diagnostic, ...]
    #: ``"clean"`` / ``"dirty"`` / ``"forest"`` / ``"empty"`` when
    #: rewritable, else None.
    plan_kind: Optional[str] = None
    #: Relations the query mentions (diagnostic convenience).
    relations: Tuple[str, ...] = ()
    #: Prioritized relations among them (drives prefsql vs sqlite label).
    prioritized: Tuple[str, ...] = ()

    def blocking(self, engine: str) -> Tuple[Diagnostic, ...]:
        """The diagnostics blocking ``engine``, in decision order."""
        return tuple(
            diagnostic
            for diagnostic in self.diagnostics
            if diagnostic.blocks_engine(engine)
        )

    def blocked(self, engine: str) -> bool:
        return any(d.blocks_engine(engine) for d in self.diagnostics)

    def route_for(self, engine: str) -> str:
        return self.routes[engine]

    def expected_last_route(self, engine: str) -> str:
        """The exact ``last_route`` string the engine would record."""
        blocking = self.blocking(engine)
        if blocking:
            return fallback_route(blocking[0].message)
        return self.routes[engine]

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.ERROR
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "query": self.query,
            "fingerprint": self.fingerprint,
            "routes": dict(self.routes),
            "plan": self.plan_kind,
            "relations": list(self.relations),
            "prioritized": list(self.prioritized),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def theory_fingerprint(payload: Mapping[str, object]) -> str:
    """A stable hex digest of a JSON-serializable description."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
