"""Incremental CQA: dynamic conflict graphs and a mutable engine.

The one-shot pipeline (:class:`repro.cqa.engine.CqaEngine`) rebuilds
conflict graph, repairs and answers from scratch per instance; this
package keeps all three alive across tuple-level updates:

* :class:`DynamicConflictGraph` — the conflict graph under
  ``insert``/``delete``, with per-FD bucket indexes and incremental
  connected components;
* :class:`ComponentRepairCache` — repair sets and per-family preferred
  fragments cached per component under content fingerprints;
* :class:`WitnessIndex` — incrementally maintained witness supports for
  safe conjunctive queries;
* :class:`IncrementalCqaEngine` — the mutable engine answering under
  all five repair families without per-update rebuilds.
"""

from repro.incremental.cache import ComponentRepairCache
from repro.incremental.dynamic_graph import DynamicConflictGraph, GraphDelta
from repro.incremental.engine import IncrementalCqaEngine
from repro.incremental.witnesses import (
    ConjunctivePlan,
    WitnessIndex,
    conjunctive_plan,
    enumerate_witnesses,
)

__all__ = [
    "ComponentRepairCache",
    "ConjunctivePlan",
    "DynamicConflictGraph",
    "GraphDelta",
    "IncrementalCqaEngine",
    "WitnessIndex",
    "conjunctive_plan",
    "enumerate_witnesses",
]
