"""Query flight recorder: sampled always-on tracing with slow capture.

A :class:`FlightRecorder` retains a bounded ring of completed
:class:`QueryRecord` objects — trace id, query text, the analysis
layer's query+theory fingerprint, serving engine/route/family, latency,
blocking diagnostics, and the full span tree of the execution — so the
``repro_query_seconds`` p99 tail is no longer anonymous: ``GET
/debug/queries`` (and ``repro top`` / ``repro trace``) answer *which*
query was slow, *which* route served it, and *where* the time went.

Recording is driven by :meth:`FlightRecorder.capture`, a context
manager the request broker opens around every executed query (and any
caller may open around a direct engine call):

* a per-query **trace id** is drawn and a thread-local tracer is
  installed, so the engines' existing ``span()`` instrumentation
  collects a real span tree for the duration of the capture;
* **sampling**: a seeded RNG keeps a record with probability
  ``sample_rate`` — the decision is drawn *before* execution so the
  span tree exists whenever the record is kept, and a fixed seed makes
  the kept/dropped sequence reproducible;
* **slow capture**: when ``slow_ms`` is set, every query is traced and
  any query at or above the threshold is retained *unconditionally*,
  landing both in the ring and in a separate slow reservoir that
  ring-buffer eviction never touches — tail queries survive arbitrarily
  long bursts of fast traffic;
* engines feed serving details in through :meth:`note` (called by
  :func:`repro.obs.observe_query`), so the record's engine/route/family
  always reflect what actually served the query.

Retained records back-fill **exemplars** onto the shared
``repro_query_seconds`` histogram: the bucket a retained query's
latency falls in remembers its trace id, so the histogram tail in
``snapshot()`` links directly to a recorded trace.

Everything is standard library and thread-safe; a disabled recorder
costs one attribute check per capture and per note.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from .registry import REGISTRY, MetricsRegistry, query_histogram
from .tracing import (
    Span,
    Tracer,
    install_tracer,
    new_trace_id,
    restore_tracer,
)

#: Sentinel distinguishing "leave unchanged" from "set to None" in
#: :meth:`FlightRecorder.configure`.
_UNSET = object()


@dataclass(frozen=True)
class QueryRecord:
    """One retained query: identity, provenance, latency, span tree."""

    trace_id: str
    query: str
    engine: str
    route: str
    family: str
    seconds: float
    #: Wall-clock (epoch) time the capture opened.
    started_at: float
    database: Optional[str] = None
    #: The analysis layer's data-independent query+theory fingerprint.
    fingerprint: Optional[str] = None
    #: Full codes of the diagnostics blocking a pushed engine
    #: (``RA201-self-join-dirty`` …) — why a query streamed repairs.
    blocking: Tuple[str, ...] = ()
    #: Retained by the sampler (vs. only by the slow threshold).
    sampled: bool = False
    #: Latency reached the ``slow_ms`` threshold.
    slow: bool = False
    #: The execution's span tree (:meth:`~repro.obs.tracing.Span.
    #: to_dict` form), None when the capture ran untraced.
    trace: Optional[Dict[str, Any]] = None

    @property
    def millis(self) -> float:
        return self.seconds * 1e3

    def span_tree(self) -> Optional[Span]:
        """The span tree rebuilt as :class:`Span` objects."""
        return Span.from_dict(self.trace) if self.trace else None

    def to_dict(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "query": self.query,
            "engine": self.engine,
            "route": self.route,
            "family": self.family,
            "seconds": round(self.seconds, 9),
            "millis": round(self.millis, 6),
            "started_at": round(self.started_at, 6),
            "database": self.database,
            "fingerprint": self.fingerprint,
            "blocking": list(self.blocking),
            "sampled": self.sampled,
            "slow": self.slow,
        }
        if self.trace is not None:
            body["trace"] = self.trace
        return body

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QueryRecord":
        return cls(
            trace_id=str(payload["trace_id"]),
            query=str(payload["query"]),
            engine=str(payload.get("engine", "?")),
            route=str(payload.get("route", "?")),
            family=str(payload.get("family", "?")),
            seconds=float(payload.get("seconds", 0.0)),
            started_at=float(payload.get("started_at", 0.0)),
            database=payload.get("database"),
            fingerprint=payload.get("fingerprint"),
            blocking=tuple(payload.get("blocking", ())),
            sampled=bool(payload.get("sampled", False)),
            slow=bool(payload.get("slow", False)),
            trace=payload.get("trace"),
        )


class _NoCapture:
    """Shared do-nothing capture for the disabled / nested fast path."""

    __slots__ = ()

    trace_id: Optional[str] = None
    recorded = False
    record: Optional[QueryRecord] = None

    def __enter__(self) -> "_NoCapture":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def note(self, **fields: object) -> None:
        return None


_NO_CAPTURE = _NoCapture()


class _Capture:
    """One in-flight recording: tracer lifetime plus the keep decision."""

    __slots__ = (
        "recorder", "trace_id", "query", "database", "report_provider",
        "keep_sampled", "engine", "route", "family",
        "_tracer", "_previous", "_started", "started_at",
        "recorded", "record",
    )

    def __init__(
        self,
        recorder: "FlightRecorder",
        query: str,
        database: Optional[str],
        report_provider: Optional[Callable[[], Any]],
        keep_sampled: bool,
        traced: bool,
    ) -> None:
        self.recorder = recorder
        self.trace_id = new_trace_id()
        self.query = query
        self.database = database
        self.report_provider = report_provider
        self.keep_sampled = keep_sampled
        self.engine = "?"
        self.route = "?"
        self.family = "?"
        self._tracer: Optional[Tracer] = Tracer("query") if traced else None
        self._previous: Optional[Tracer] = None
        self._started = 0.0
        self.started_at = 0.0
        self.recorded = False
        self.record: Optional[QueryRecord] = None

    def __enter__(self) -> "_Capture":
        self.recorder._push(self)
        if self._tracer is not None:
            self._tracer.root.attributes["trace_id"] = self.trace_id
            self._previous = install_tracer(self._tracer)
        self.started_at = time.time()
        self._started = time.perf_counter()
        return self

    def note(
        self,
        engine: Optional[str] = None,
        route: Optional[str] = None,
        family: Optional[str] = None,
        **extra: object,
    ) -> None:
        """Fill serving details in (engines via ``observe_query``, the
        broker after routing); later calls override earlier ones."""
        if engine is not None:
            self.engine = engine
        if route is not None:
            self.route = route
        if family is not None:
            self.family = family

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._started
        if self._tracer is not None:
            self._tracer.finish()
            restore_tracer(self._previous)
        self.recorder._pop(self)
        self.recorder._finish(self, elapsed, failed=exc_type is not None)


class FlightRecorder:
    """Thread-safe bounded ring of completed :class:`QueryRecord`\\ s.

    ``capacity`` bounds the main ring (FIFO eviction);
    ``slow_capacity`` bounds the slow reservoir, which evicts its
    *fastest* member when full so the retained set converges on the true
    tail.  ``sample_rate`` in ``[0, 1]`` drives the seeded sampler;
    ``slow_ms`` (None = off) arms unconditional slow capture.
    """

    def __init__(
        self,
        capacity: int = 256,
        slow_capacity: int = 64,
        sample_rate: float = 1.0,
        slow_ms: Optional[float] = None,
        seed: Optional[int] = None,
        enabled: bool = True,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1 or slow_capacity < 1:
            raise ValueError("recorder capacities must be positive")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        #: Master switch; when False capture()/note() are no-ops after
        #: one attribute check.
        self.enabled = enabled
        self.capacity = capacity
        self.slow_capacity = slow_capacity
        self.sample_rate = sample_rate
        self.slow_ms = slow_ms
        self._registry = registry
        self._lock = threading.Lock()
        self._random = random.Random(seed)  # guarded-by: _lock
        self._ring: "OrderedDict[str, QueryRecord]" = OrderedDict()  # guarded-by: _lock
        self._slow: "OrderedDict[str, QueryRecord]" = OrderedDict()  # guarded-by: _lock
        self.started = 0  # guarded-by: _lock
        self.recorded = 0  # guarded-by: _lock
        self.sampled_kept = 0  # guarded-by: _lock
        self.slow_kept = 0  # guarded-by: _lock
        self.dropped = 0  # guarded-by: _lock
        self.evicted = 0  # guarded-by: _lock
        self._active = threading.local()

    # Configuration ------------------------------------------------------------

    def configure(
        self,
        sample_rate: Optional[float] = None,
        slow_ms: object = _UNSET,
        capacity: Optional[int] = None,
        slow_capacity: Optional[int] = None,
        seed: object = _UNSET,
    ) -> None:
        """Adjust sampling/thresholds in place (``repro serve`` flags)."""
        with self._lock:
            if sample_rate is not None:
                if not 0.0 <= sample_rate <= 1.0:
                    raise ValueError(
                        f"sample_rate must be in [0, 1], got {sample_rate}"
                    )
                self.sample_rate = sample_rate
            if slow_ms is not _UNSET:
                self.slow_ms = slow_ms  # type: ignore[assignment]
            if capacity is not None:
                if capacity < 1:
                    raise ValueError("capacity must be positive")
                self.capacity = capacity
            if slow_capacity is not None:
                if slow_capacity < 1:
                    raise ValueError("slow_capacity must be positive")
                self.slow_capacity = slow_capacity
            if seed is not _UNSET:
                self._random = random.Random(seed)  # type: ignore[arg-type]

    def reset(self, seed: Optional[int] = None) -> None:
        """Drop every record and counter (test isolation)."""
        with self._lock:
            self._ring.clear()
            self._slow.clear()
            self._random = random.Random(seed)
            self.started = 0
            self.recorded = 0
            self.sampled_kept = 0
            self.slow_kept = 0
            self.dropped = 0
            self.evicted = 0

    # Capture ------------------------------------------------------------------

    def _push(self, capture: _Capture) -> None:
        self._active.capture = capture

    def _pop(self, capture: _Capture) -> None:
        self._active.capture = None

    def active_capture(self) -> Optional[_Capture]:
        """The capture open on this thread, if any."""
        return getattr(self._active, "capture", None)

    def active_trace_id(self) -> Optional[str]:
        capture = getattr(self._active, "capture", None)
        return capture.trace_id if capture is not None else None

    def capture(
        self,
        query: str,
        database: Optional[str] = None,
        report_provider: Optional[Callable[[], Any]] = None,
    ):
        """Open a recording context around one query execution.

        ``report_provider`` is an optional zero-argument callable
        returning the query's :class:`~repro.analysis.model.
        RouteReport`; it is only invoked when the record is actually
        kept, so dropped queries never pay for analysis.  Nested
        captures (an engine answering inside a broker capture) return a
        shared no-op — the outer capture owns the record.
        """
        if not self.enabled:
            return _NO_CAPTURE
        if getattr(self._active, "capture", None) is not None:
            return _NO_CAPTURE
        with self._lock:
            self.started += 1
            keep_sampled = (
                self.sample_rate > 0.0
                and self._random.random() < self.sample_rate
            )
            slow_armed = self.slow_ms is not None
        if not keep_sampled and not slow_armed:
            return _NO_CAPTURE
        return _Capture(
            self, query, database, report_provider, keep_sampled,
            traced=True,
        )

    def note(
        self,
        engine: Optional[str] = None,
        route: Optional[str] = None,
        family: Optional[str] = None,
        seconds: Optional[float] = None,
    ) -> None:
        """Forward serving details to the capture open on this thread
        (no-op otherwise) — how ``observe_query`` feeds the recorder."""
        if not self.enabled:
            return
        capture = getattr(self._active, "capture", None)
        if capture is not None:
            capture.note(engine=engine, route=route, family=family)

    def _finish(self, capture: _Capture, elapsed: float, failed: bool) -> None:
        if failed:
            with self._lock:
                self.dropped += 1
            return
        slow_ms = self.slow_ms
        slow = slow_ms is not None and elapsed * 1e3 >= slow_ms
        if not capture.keep_sampled and not slow:
            with self._lock:
                self.dropped += 1
            return
        fingerprint: Optional[str] = None
        blocking: Tuple[str, ...] = ()
        if capture.report_provider is not None:
            try:
                report = capture.report_provider()
            except Exception:
                report = None
            if report is not None:
                fingerprint = report.fingerprint
                blocking = tuple(d.full_code for d in report.errors)
        trace_dict = (
            capture._tracer.root.to_dict()
            if capture._tracer is not None
            else None
        )
        record = QueryRecord(
            trace_id=capture.trace_id,
            query=capture.query,
            engine=capture.engine,
            route=capture.route,
            family=capture.family,
            seconds=elapsed,
            started_at=capture.started_at,
            database=capture.database,
            fingerprint=fingerprint,
            blocking=blocking,
            sampled=capture.keep_sampled,
            slow=slow,
            trace=trace_dict,
        )
        self._store(record)
        capture.recorded = True
        capture.record = record
        if self._registry is not None:
            query_histogram(self._registry).labels(
                route=record.route
            ).attach_exemplar(record.seconds, record.trace_id)

    def _store(self, record: QueryRecord) -> None:
        with self._lock:
            self.recorded += 1
            if record.sampled:
                self.sampled_kept += 1
            if record.slow:
                self.slow_kept += 1
            if (
                record.trace_id not in self._ring
                and len(self._ring) >= self.capacity
            ):
                self._ring.popitem(last=False)
                self.evicted += 1
            self._ring[record.trace_id] = record
            if record.slow:
                if (
                    record.trace_id not in self._slow
                    and len(self._slow) >= self.slow_capacity
                ):
                    # Evict the *fastest* resident, so the reservoir
                    # converges on the worst tail; an incoming record
                    # slower than none of them is itself dropped.
                    fastest = min(
                        self._slow, key=lambda key: self._slow[key].seconds
                    )
                    if self._slow[fastest].seconds < record.seconds:
                        del self._slow[fastest]
                    else:
                        return
                self._slow[record.trace_id] = record

    # Read side ----------------------------------------------------------------

    def get(self, trace_id: str) -> Optional[QueryRecord]:
        """The retained record under ``trace_id``, ring or reservoir."""
        with self._lock:
            record = self._ring.get(trace_id)
            if record is None:
                record = self._slow.get(trace_id)
            return record

    def records(
        self,
        route: Optional[str] = None,
        min_ms: Optional[float] = None,
        limit: Optional[int] = None,
        slowest: bool = False,
    ) -> List[QueryRecord]:
        """Retained records, most recent first (``slowest=True``: by
        descending latency), filtered by route and minimum latency."""
        with self._lock:
            merged: Dict[str, QueryRecord] = dict(self._slow)
            merged.update(self._ring)
        selected = [
            record
            for record in merged.values()
            if (route is None or record.route == route)
            and (min_ms is None or record.millis >= min_ms)
        ]
        key = (
            (lambda record: record.seconds)
            if slowest
            else (lambda record: record.started_at)
        )
        selected.sort(key=key, reverse=True)
        if limit is not None:
            selected = selected[: max(0, limit)]
        return selected

    def summary(self) -> Dict[str, object]:
        """Counters + configuration for ``/stats`` and diagnostics."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "sample_rate": self.sample_rate,
                "slow_ms": self.slow_ms,
                "capacity": self.capacity,
                "slow_capacity": self.slow_capacity,
                "started": self.started,
                "recorded": self.recorded,
                "sampled": self.sampled_kept,
                "slow": self.slow_kept,
                "dropped": self.dropped,
                "evicted": self.evicted,
                "ring_entries": len(self._ring),
                "slow_entries": len(self._slow),
            }


#: The process-wide flight recorder the broker and CLI surfaces share.
RECORDER = FlightRecorder(registry=REGISTRY)
