"""Unit tests for NNF/DNF conversion."""

import pytest

from repro.exceptions import QueryError
from repro.query.ast import And, Atom, Comparison, Const, Exists, Not, Or, Var
from repro.query.normalize import LiteralConjunction, to_dnf, to_nnf
from repro.query.parser import parse_query


def a(i):
    return Atom("R", [Const(i)])


class TestNnf:
    def test_negated_and_becomes_or(self):
        formula = to_nnf(Not(And([a(1), a(2)])))
        assert isinstance(formula, Or)
        assert all(isinstance(p, Not) for p in formula.parts)

    def test_negated_or_becomes_and(self):
        formula = to_nnf(Not(Or([a(1), a(2)])))
        assert isinstance(formula, And)

    def test_double_negation_cancels(self):
        assert to_nnf(Not(Not(a(1)))) == a(1)

    def test_implication_eliminated(self):
        formula = to_nnf(parse_query("R(1) IMPLIES R(2)"))
        assert isinstance(formula, Or)

    def test_negated_comparison_flips_operator(self):
        formula = to_nnf(Not(Comparison("<", Const(1), Const(2))))
        assert formula == Comparison(">=", Const(1), Const(2))

    def test_quantifier_rejected(self):
        with pytest.raises(QueryError):
            to_nnf(Exists(["x"], Atom("R", [Var("x")])))

    def test_negated_true(self):
        from repro.query.ast import FalseFormula, TrueFormula

        assert to_nnf(Not(TrueFormula())) == FalseFormula()


class TestDnf:
    def test_atom_is_single_disjunct(self):
        assert to_dnf(a(1)) == [[a(1)]]

    def test_or_splits(self):
        assert len(to_dnf(Or([a(1), a(2)]))) == 2

    def test_and_over_or_distributes(self):
        formula = And([a(1), Or([a(2), a(3)])])
        disjuncts = to_dnf(formula)
        assert len(disjuncts) == 2
        assert all(len(d) == 2 for d in disjuncts)

    def test_true_disjunct_collapses(self):
        from repro.query.ast import TrueFormula

        assert to_dnf(Or([TrueFormula(), a(1)])) == [[]]

    def test_false_disjunct_dropped(self):
        from repro.query.ast import FalseFormula

        disjuncts = to_dnf(Or([FalseFormula(), a(1)]))
        assert disjuncts == [[a(1)]]

    def test_unsatisfiable_gives_empty(self):
        from repro.query.ast import FalseFormula

        assert to_dnf(FalseFormula()) == []

    def test_negated_query_example(self):
        # ¬(R(1) ∧ ¬R(2)) → ¬R(1) ∨ R(2)
        disjuncts = to_dnf(Not(And([a(1), Not(a(2))])))
        assert [Not(a(1))] in disjuncts
        assert [a(2)] in disjuncts


class TestLiteralConjunction:
    def test_split_by_kind(self):
        literals = LiteralConjunction.from_literals(
            [a(1), Not(a(2)), Comparison("<", Const(1), Const(2))]
        )
        assert literals.positive == (a(1),)
        assert literals.negative == (a(2),)
        assert len(literals.comparisons) == 1

    def test_non_literal_rejected(self):
        with pytest.raises(QueryError):
            LiteralConjunction.from_literals([And([a(1), a(2)])])

    def test_is_ground(self):
        literals = LiteralConjunction.from_literals([a(1)])
        assert literals.is_ground
        open_literals = LiteralConjunction.from_literals([Atom("R", [Var("x")])])
        assert not open_literals.is_ground
