"""Span-based query-lifecycle tracing.

A :class:`Trace` is a tree of :class:`Span` objects, each recording a
stage name, wall-clock duration, free-form attributes, and children.
Engines open spans around their lifecycle stages (parse → plan → route
decision → edges/winnow → SQL or stream execution → shard fan-out and
merge); the CLI's ``repro query --profile`` renders the finished tree.

Tracing is *opt-in per thread*: :func:`trace` installs a collector in a
``threading.local`` slot, and the :func:`span` helper used throughout
the engines checks that slot first.  When no collector is installed the
helper returns a shared no-op context manager — a single attribute read
plus a tuple-free ``with`` block, cheap enough that the bench guard
keeps the disabled path within 5% of fully uninstrumented code.
Instrumented code never imports anything but :func:`span` and
:func:`annotate`, so the instrumentation cannot change answers.

Exports: :meth:`Span.to_dict` (JSON-ready nesting) and
:func:`format_tree` (the pretty printer behind ``--profile``).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed stage: name, attributes, duration, and child spans."""

    __slots__ = ("name", "attributes", "children", "start", "duration")

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List[Span] = []
        self.start = 0.0
        self.duration = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready nested representation (durations in seconds)."""
        entry: Dict[str, Any] = {
            "name": self.name,
            "duration_s": round(self.duration, 9),
        }
        if self.attributes:
            entry["attributes"] = dict(self.attributes)
        if self.children:
            entry["children"] = [child.to_dict() for child in self.children]
        return entry


class Tracer:
    """Collects one span tree for the thread it is installed on."""

    __slots__ = ("root", "_stack")

    def __init__(self, name: str = "query") -> None:
        self.root = Span(name)
        self.root.start = time.perf_counter()
        self._stack: List[Span] = [self.root]

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        child = Span(name, attributes)
        child.start = time.perf_counter()
        self._stack[-1].children.append(child)
        self._stack.append(child)
        try:
            yield child
        finally:
            child.duration = time.perf_counter() - child.start
            self._stack.pop()

    def annotate(self, **attributes: Any) -> None:
        self._stack[-1].attributes.update(attributes)

    def finish(self) -> Span:
        self.root.duration = time.perf_counter() - self.root.start
        return self.root


class _NoopSpan:
    """Shared do-nothing context manager for the untraced fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP = _NoopSpan()
_STATE = threading.local()


def current_tracer() -> Optional[Tracer]:
    """The tracer installed on this thread, or None."""
    return getattr(_STATE, "tracer", None)


def span(name: str, **attributes: Any):
    """Open a child span if tracing is active, else a shared no-op.

    This is the only call instrumented code makes on the hot path; with
    no tracer installed it costs one ``getattr`` and returns a shared
    singleton.
    """
    tracer = getattr(_STATE, "tracer", None)
    if tracer is None:
        return _NOOP
    return tracer.span(name, **attributes)


def annotate(**attributes: Any) -> None:
    """Attach attributes to the innermost open span (no-op untraced)."""
    tracer = getattr(_STATE, "tracer", None)
    if tracer is not None:
        tracer.annotate(**attributes)


@contextmanager
def trace(name: str = "query") -> Iterator[Tracer]:
    """Install a tracer on this thread for the duration of the block.

    Nested calls stack: the previous tracer (if any) is restored on
    exit.  The yielded tracer's root span is finished on exit, so the
    caller reads ``tracer.root`` afterwards.
    """
    previous = getattr(_STATE, "tracer", None)
    tracer = Tracer(name)
    _STATE.tracer = tracer
    try:
        yield tracer
    finally:
        tracer.finish()
        _STATE.tracer = previous


def format_tree(root: Span, indent: str = "") -> str:
    """Pretty-print a span tree for terminal output.

    Durations render in the most readable unit (µs/ms/s); attributes
    append as ``key=value`` pairs after the timing.
    """
    lines: List[str] = []

    def _render(node: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        duration = node.duration
        if duration >= 1.0:
            timing = f"{duration:.3f}s"
        elif duration >= 0.001:
            timing = f"{duration * 1e3:.3f}ms"
        else:
            timing = f"{duration * 1e6:.1f}µs"
        attrs = "".join(
            f" {key}={value}" for key, value in sorted(node.attributes.items())
        )
        if is_root:
            lines.append(f"{node.name}  [{timing}]{attrs}")
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(f"{prefix}{connector}{node.name}  [{timing}]{attrs}")
            child_prefix = prefix + ("   " if is_last else "│  ")
        for position, child in enumerate(node.children):
            _render(
                child,
                child_prefix,
                position == len(node.children) - 1,
                False,
            )

    _render(root, indent, True, True)
    return "\n".join(lines)
