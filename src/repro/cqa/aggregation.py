"""Range-consistent answers to scalar aggregation queries.

The paper's future-work section points to refining its results "along
the lines of [2]" (Arenas et al., *Scalar Aggregation in Inconsistent
Databases*, TCS 2003): an aggregate query over an inconsistent database
is answered with the **range** [glb, lub] of values the aggregate takes
across the (preferred) repairs.  This module supplies:

* exact ranges by enumeration over any preferred-repair family
  (:func:`range_consistent_answer`), and
* closed-form PTIME ranges for the single-key-dependency case
  (:func:`key_range_consistent_answer`), where the conflict graph is a
  disjoint union of cliques and each aggregate decomposes per clique —
  the tractable cases identified by [2].

Supported aggregates: COUNT(*), COUNT(A), MIN(A), MAX(A), SUM(A) and
AVG(A) (exact rational).  Narrowing the repair family can only narrow
the range (property-tested): preferences sharpen aggregate answers the
same way they sharpen boolean ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import AbstractSet, Dict, Iterable, List, Optional, Sequence, Union

from repro.constraints.conflict_graph import ConflictGraph
from repro.core.families import Family, preferred_repairs
from repro.exceptions import QueryError
from repro.priorities.priority import Priority
from repro.relational.rows import Row

Number = Union[int, Fraction]


class Aggregate(enum.Enum):
    """Scalar aggregate functions of [2]."""

    COUNT_STAR = "COUNT(*)"
    COUNT = "COUNT"
    MIN = "MIN"
    MAX = "MAX"
    SUM = "SUM"
    AVG = "AVG"

    @property
    def needs_attribute(self) -> bool:
        return self is not Aggregate.COUNT_STAR


@dataclass(frozen=True)
class AggregateRange:
    """The glb/lub answer to an aggregate query.

    ``lower is None`` (and ``upper``) encode an aggregate undefined in
    some repair (MIN/MAX/AVG over an empty repair — possible only when
    the instance itself is empty, since repairs are maximal).
    """

    lower: Optional[Number]
    upper: Optional[Number]

    @property
    def is_exact(self) -> bool:
        """Whether every (preferred) repair agrees on the value."""
        return self.lower == self.upper

    def __contains__(self, value: Number) -> bool:
        if self.lower is None or self.upper is None:
            return False
        return self.lower <= value <= self.upper

    def widens(self, other: "AggregateRange") -> bool:
        """Whether this range contains ``other`` (used by monotonicity)."""
        if other.lower is None:
            return True
        if self.lower is None:
            return False
        return self.lower <= other.lower and other.upper <= self.upper


def aggregate_value(
    rows: Iterable[Row], aggregate: Aggregate, attribute: Optional[str] = None
) -> Optional[Number]:
    """The aggregate of a concrete (repaired) set of rows."""
    if aggregate.needs_attribute and attribute is None:
        raise QueryError(f"{aggregate.value} requires an attribute")
    rows = list(rows)
    if aggregate is Aggregate.COUNT_STAR:
        return len(rows)
    values = [row[attribute] for row in rows]  # type: ignore[index]
    for value in values:
        if not isinstance(value, int) and aggregate is not Aggregate.COUNT:
            raise QueryError(
                f"aggregate {aggregate.value} needs a numeric attribute, "
                f"got value {value!r}"
            )
    if aggregate is Aggregate.COUNT:
        return len(values)
    if not values:
        return None
    if aggregate is Aggregate.MIN:
        return min(values)
    if aggregate is Aggregate.MAX:
        return max(values)
    if aggregate is Aggregate.SUM:
        return sum(values)
    if aggregate is Aggregate.AVG:
        return Fraction(sum(values), len(values))
    raise QueryError(f"unknown aggregate {aggregate!r}")  # pragma: no cover


def range_consistent_answer(
    priority: Priority,
    aggregate: Aggregate,
    attribute: Optional[str] = None,
    family: Family = Family.REP,
    repairs: Optional[Sequence[AbstractSet[Row]]] = None,
) -> AggregateRange:
    """Exact [glb, lub] over the preferred repairs of ``family``.

    Enumeration-based, so exponential in the worst case — the honest
    cost of exact ranges; the closed form below covers the PTIME case.
    """
    pool = (
        list(repairs)
        if repairs is not None
        else preferred_repairs(family, priority)
    )
    if not pool:
        raise QueryError("no preferred repairs (P1 violated?)")
    values = [aggregate_value(repair, aggregate, attribute) for repair in pool]
    defined = [value for value in values if value is not None]
    if not defined:
        return AggregateRange(None, None)
    if len(defined) != len(values):
        # Mixed defined/undefined can only happen on empty instances.
        return AggregateRange(None, None)
    return AggregateRange(min(defined), max(defined))


def _clique_groups(graph: ConflictGraph) -> List[List[Row]]:
    """Connected components, verified to be cliques (one-key case)."""
    groups: List[List[Row]] = []
    for component in graph.connected_components():
        members = list(component)
        for row in members:
            if len(graph.neighbours(row) & component) != len(members) - 1:
                raise QueryError(
                    "closed-form aggregate ranges require a single key "
                    "dependency (conflict components must be cliques)"
                )
        groups.append(members)
    return groups


def key_range_consistent_answer(
    graph: ConflictGraph,
    aggregate: Aggregate,
    attribute: Optional[str] = None,
) -> AggregateRange:
    """PTIME [glb, lub] under one key dependency (classic ``Rep``).

    With a key dependency the conflict graph is a disjoint union of
    cliques and every repair picks exactly one tuple per clique, so the
    aggregates decompose:

    * COUNT(*) / COUNT(A): the number of cliques — exact.
    * SUM: [Σ clique-min, Σ clique-max].
    * AVG: SUM range divided by the (constant) count.
    * MIN: glb is the global minimum; lub is the minimum over cliques
      of the clique maximum (choose each clique's largest value).
    * MAX: dually, glb = max over cliques of the clique minimum,
      lub = global maximum.
    """
    if aggregate.needs_attribute and attribute is None:
        raise QueryError(f"{aggregate.value} requires an attribute")
    groups = _clique_groups(graph)
    if aggregate in (Aggregate.COUNT_STAR, Aggregate.COUNT):
        return AggregateRange(len(groups), len(groups))
    if not groups:
        return AggregateRange(None, None)

    per_group: List[List[int]] = []
    for group in groups:
        values = [row[attribute] for row in group]  # type: ignore[index]
        for value in values:
            if not isinstance(value, int):
                raise QueryError(
                    f"aggregate {aggregate.value} needs a numeric attribute"
                )
        per_group.append(values)

    minima = [min(values) for values in per_group]
    maxima = [max(values) for values in per_group]
    if aggregate is Aggregate.SUM:
        return AggregateRange(sum(minima), sum(maxima))
    if aggregate is Aggregate.AVG:
        count = len(groups)
        return AggregateRange(
            Fraction(sum(minima), count), Fraction(sum(maxima), count)
        )
    if aggregate is Aggregate.MIN:
        return AggregateRange(min(minima), min(maxima))
    if aggregate is Aggregate.MAX:
        return AggregateRange(max(minima), max(maxima))
    raise QueryError(f"unknown aggregate {aggregate!r}")  # pragma: no cover
