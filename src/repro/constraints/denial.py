"""Denial constraints and conflict hypergraphs (paper Section 6).

The paper's closing section points to generalizing conflict graphs to
*conflict hypergraphs* [6] in order to handle denial constraints, where
a single conflict may involve more than two tuples.  We implement that
substrate: denial constraints, hyperedge (violation-set) detection and
repair enumeration on hypergraphs.  Priorities keep their graph-only
meaning, exactly as the paper notes ("the current notion of priority
does not have a clear meaning" on hyperedges).

A denial constraint forbids a joint instantiation of some atoms
satisfying a condition::

    ¬ ∃ x̄ . R(x̄₁) ∧ ... ∧ R(x̄ₖ) ∧ φ(x̄)

For example, "no two managers of the same department" is the FD-style
constraint with two atoms; "salaries may not exceed the department
budget" joins two relations with a ``>`` condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ConstraintError
from repro.query.ast import Atom, Const, Formula, TrueFormula, Var, is_quantifier_free
from repro.query.evaluator import _compare  # shared comparison semantics
from repro.query.ast import Comparison, And, Or, Not, Implies, FalseFormula
from repro.relational.domain import Value
from repro.relational.rows import Row


@dataclass(frozen=True)
class DenialConstraint:
    """A denial constraint: atoms that must not jointly hold under a condition."""

    atoms: Tuple[Atom, ...]
    condition: Formula

    def __init__(
        self, atoms: Sequence[Atom], condition: Optional[Formula] = None
    ) -> None:
        if not atoms:
            raise ConstraintError("denial constraint needs at least one atom")
        condition = condition if condition is not None else TrueFormula()
        if not is_quantifier_free(condition):
            raise ConstraintError("denial-constraint condition must be quantifier-free")
        atom_vars = set()
        for atom in atoms:
            atom_vars |= atom.free_variables()
        dangling = condition.free_variables() - atom_vars
        if dangling:
            raise ConstraintError(
                f"condition variables {sorted(dangling)} do not occur in any atom"
            )
        object.__setattr__(self, "atoms", tuple(atoms))
        object.__setattr__(self, "condition", condition)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        atoms = " AND ".join(str(atom) for atom in self.atoms)
        return f"NOT EXISTS ({atoms} AND {self.condition})"


def _condition_holds(condition: Formula, binding: Dict[str, Value]) -> bool:
    """Evaluate a quantifier-free, atom-free condition under a binding."""
    if isinstance(condition, TrueFormula):
        return True
    if isinstance(condition, FalseFormula):
        return False
    if isinstance(condition, Comparison):
        left = condition.left.value if isinstance(condition.left, Const) else binding[condition.left.name]
        right = condition.right.value if isinstance(condition.right, Const) else binding[condition.right.name]
        return _compare(condition.op, left, right)
    if isinstance(condition, Not):
        return not _condition_holds(condition.body, binding)
    if isinstance(condition, And):
        return all(_condition_holds(part, binding) for part in condition.parts)
    if isinstance(condition, Or):
        return any(_condition_holds(part, binding) for part in condition.parts)
    if isinstance(condition, Implies):
        return not _condition_holds(condition.antecedent, binding) or _condition_holds(
            condition.consequent, binding
        )
    if isinstance(condition, Atom):
        raise ConstraintError("denial-constraint conditions may not contain atoms")
    raise TypeError(f"unexpected condition node {condition!r}")


def _match_atom(
    atom: Atom, row: Row, binding: Dict[str, Value]
) -> Optional[Dict[str, Value]]:
    """Extend ``binding`` so that ``atom`` matches ``row``, or ``None``."""
    if row.relation != atom.relation or len(row.values) != len(atom.terms):
        return None
    extension = dict(binding)
    for term, value in zip(atom.terms, row.values):
        if isinstance(term, Const):
            if term.value != value:
                return None
        else:
            bound = extension.get(term.name)
            if bound is None and term.name not in extension:
                extension[term.name] = value
            elif bound != value:
                return None
    return extension


def violation_sets(
    rows: Iterable[Row], constraint: DenialConstraint
) -> Iterator[FrozenSet[Row]]:
    """All (not necessarily distinct) violation sets of the constraint.

    A violation set is the set of rows instantiating the constraint's
    atoms under some satisfying binding.  Atoms may map to the same row.
    """
    rows = list(rows)
    by_relation: Dict[str, List[Row]] = {}
    for row in rows:
        by_relation.setdefault(row.relation, []).append(row)

    def extend(
        index: int, binding: Dict[str, Value], chosen: Tuple[Row, ...]
    ) -> Iterator[FrozenSet[Row]]:
        if index == len(constraint.atoms):
            if _condition_holds(constraint.condition, binding):
                yield frozenset(chosen)
            return
        atom = constraint.atoms[index]
        for row in by_relation.get(atom.relation, ()):
            extension = _match_atom(atom, row, binding)
            if extension is not None:
                yield from extend(index + 1, extension, chosen + (row,))

    yield from extend(0, {}, ())


class ConflictHypergraph:
    """Vertices plus minimal violation hyperedges; repairs are the
    maximal subsets containing no full hyperedge."""

    __slots__ = ("vertices", "edges")

    def __init__(self, vertices: Iterable[Row], edges: Iterable[FrozenSet[Row]]) -> None:
        self.vertices: FrozenSet[Row] = frozenset(vertices)
        minimal: List[FrozenSet[Row]] = []
        for candidate in sorted(set(edges), key=len):
            if not candidate:
                raise ConstraintError("empty hyperedge: the constraint is unsatisfiable")
            if not candidate <= self.vertices:
                raise ConstraintError("hyperedge endpoint outside the vertex set")
            if any(existing <= candidate for existing in minimal):
                continue
            minimal.append(candidate)
        self.edges: Tuple[FrozenSet[Row], ...] = tuple(minimal)

    def is_independent(self, rows: Set[Row]) -> bool:
        """No hyperedge is fully contained in ``rows``."""
        return not any(edge <= rows for edge in self.edges)

    def is_maximal_independent(self, rows: Set[Row]) -> bool:
        rows = set(rows)
        if not rows <= self.vertices or not self.is_independent(rows):
            return False
        return all(
            not self.is_independent(rows | {vertex})
            for vertex in self.vertices - rows
        )

    def maximal_independent_sets(self) -> List[FrozenSet[Row]]:
        """All repairs w.r.t. the hypergraph (hitting-set search tree).

        Exponential in the worst case, as it must be; fine at the scale
        where one can afford to enumerate repairs at all.
        """
        results: Set[FrozenSet[Row]] = set()
        seen: Set[FrozenSet[Row]] = set()

        def search(current: FrozenSet[Row]) -> None:
            if current in seen:
                return
            seen.add(current)
            violated = next(
                (edge for edge in self.edges if edge <= current), None
            )
            if violated is None:
                results.add(current)
                return
            for vertex in violated:
                search(current - {vertex})

        search(self.vertices)
        return [
            candidate
            for candidate in results
            if not any(other > candidate for other in results)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConflictHypergraph({len(self.vertices)} vertices, "
            f"{len(self.edges)} edges)"
        )


def build_conflict_hypergraph(
    rows: Iterable[Row], constraints: Sequence[DenialConstraint]
) -> ConflictHypergraph:
    """Construct the conflict hypergraph for a set of denial constraints.

    Singleton violation sets (a row inconsistent by itself) become
    singleton edges: such rows belong to no repair.
    """
    rows = frozenset(rows)
    edges: Set[FrozenSet[Row]] = set()
    for constraint in constraints:
        edges.update(violation_sets(rows, constraint))
    return ConflictHypergraph(rows, edges)


def fd_as_denial(
    fd, schema
) -> DenialConstraint:
    """Translate an FD over ``schema`` into an equivalent denial constraint.

    ``X → Y`` becomes one constraint per RHS attribute ``B``:
    ``¬∃ t1,t2 . R(t1) ∧ R(t2) ∧ t1.X = t2.X ∧ t1.B ≠ t2.B``.  For a
    multi-attribute RHS the disjunction of inequalities is used so a
    single constraint suffices.
    """
    first_vars = [Var(f"a_{attr}") for attr in schema.attribute_names]
    second_vars = [Var(f"b_{attr}") for attr in schema.attribute_names]
    index = {attr: pos for pos, attr in enumerate(schema.attribute_names)}
    agreements = [
        Comparison("=", first_vars[index[attr]], second_vars[index[attr]])
        for attr in sorted(fd.lhs)
    ]
    differences = [
        Comparison("!=", first_vars[index[attr]], second_vars[index[attr]])
        for attr in sorted(fd.rhs)
    ]
    condition_parts: List[Formula] = list(agreements)
    condition_parts.append(
        differences[0] if len(differences) == 1 else Or(differences)
    )
    condition: Formula = (
        condition_parts[0] if len(condition_parts) == 1 else And(condition_parts)
    )
    return DenialConstraint(
        (Atom(schema.name, first_vars), Atom(schema.name, second_vars)),
        condition,
    )
