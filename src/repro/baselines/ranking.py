"""Rank-based conflict resolution with fusion (Motro et al. [17]).

The related-work baseline: a ranking function on tuples resolves each
conflict by keeping only the highest-ranked tuple.  Under the
assumption that conflicting tuples never tie, this produces a unique
repair (satisfying P4).  When ties occur on tuples with numeric values,
a *fusion* value can be computed from the conflicting tuples — the
result is then no longer a repair in the sense of Definition 1 (it may
contain invented tuples), which the paper flags as potential
information loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.constraints.conflict_graph import ConflictGraph
from repro.exceptions import PriorityError
from repro.priorities.builders import priority_from_ranking
from repro.priorities.priority import Priority
from repro.relational.domain import AttributeType
from repro.relational.rows import Row, sorted_rows


def resolve_by_rank(
    graph: ConflictGraph, rank_of: Callable[[Row], float]
) -> FrozenSet[Row]:
    """The unique repair obtained by always keeping the higher rank.

    Raises :class:`PriorityError` when two conflicting tuples tie —
    the method's uniqueness assumption is then violated and the caller
    should fall back to :func:`resolve_with_fusion`.
    """
    for pair in graph.edges():
        first, second = tuple(pair)
        if rank_of(first) == rank_of(second):
            raise PriorityError(
                f"rank tie between conflicting tuples {first!r} and {second!r}"
            )
    priority = priority_from_ranking(graph, rank_of)
    # With a total priority, Algorithm 1 yields the unique repair; the
    # greedy highest-rank sweep below is the original paper's phrasing
    # and produces the same result.
    chosen: Set[Row] = set()
    for row in sorted(sorted_rows(graph.vertices), key=rank_of, reverse=True):
        if not graph.neighbours(row) & chosen:
            chosen.add(row)
    return frozenset(chosen)


@dataclass(frozen=True)
class FusionResult:
    """Result of fusion-based resolution: real rows plus fused rows."""

    kept: FrozenSet[Row]
    fused: Tuple[Row, ...]

    @property
    def all_rows(self) -> FrozenSet[Row]:
        return self.kept | frozenset(self.fused)

    @property
    def invented(self) -> Tuple[Row, ...]:
        """Fused rows that did not exist in the original instance."""
        return tuple(row for row in self.fused if row not in self.kept)


def resolve_with_fusion(
    graph: ConflictGraph,
    rank_of: Callable[[Row], float],
    numeric_fuse: Callable[[Sequence[int]], int] = lambda xs: sum(xs) // len(xs),
) -> FusionResult:
    """Rank-based resolution falling back to fusion on ties.

    Conflict-connected groups whose top rank is unique resolve to the
    top tuple.  Groups with tied top tuples *fuse*: numeric attributes
    combine through ``numeric_fuse`` (default: integer mean) and name
    attributes take the value of the first tied tuple in deterministic
    order (names cannot be averaged).
    """
    kept: Set[Row] = set()
    fused: List[Row] = []
    for component in graph.connected_components():
        members = sorted_rows(component)
        if len(members) == 1:
            kept.add(members[0])
            continue
        top_rank = max(rank_of(row) for row in members)
        top = [row for row in members if rank_of(row) == top_rank]
        if len(top) == 1:
            kept.add(top[0])
            continue
        schema = top[0].schema
        values = []
        for position, attribute in enumerate(schema.attributes):
            column = [row.values[position] for row in top]
            if attribute.type is AttributeType.NUMBER:
                values.append(numeric_fuse(column))  # type: ignore[arg-type]
            else:
                values.append(column[0])
        fused.append(Row(schema, values))
    return FusionResult(frozenset(kept), tuple(fused))
