"""Relational substrate: typed domains, schemas, rows, instances, storage."""

from repro.relational.domain import AttributeType, Value, infer_type, values_comparable
from repro.relational.schema import (
    Attribute,
    DatabaseSchema,
    RelationSchema,
    schema_from_mapping,
)
from repro.relational.rows import Row, sorted_rows
from repro.relational.instance import RelationInstance
from repro.relational.database import Database, integrate_sources
from repro.relational.csv_io import (
    instance_to_csv_text,
    read_instance_csv,
    read_instance_csv_text,
    write_instance_csv,
)
from repro.relational.sqlite_io import (
    load_database,
    load_instance,
    save_database,
    save_instance,
)

__all__ = [
    "Attribute",
    "AttributeType",
    "Database",
    "DatabaseSchema",
    "RelationInstance",
    "RelationSchema",
    "Row",
    "Value",
    "infer_type",
    "instance_to_csv_text",
    "integrate_sources",
    "load_database",
    "load_instance",
    "read_instance_csv",
    "read_instance_csv_text",
    "save_database",
    "save_instance",
    "schema_from_mapping",
    "sorted_rows",
    "values_comparable",
    "write_instance_csv",
]
