"""The paper's contribution: preferred-repair families and their theory."""

from repro.core.cleaning import (
    all_cleaning_results,
    clean,
    is_common_repair,
)
from repro.core.lifting import (
    maximal_under_preference,
    prefers,
    strictly_prefers,
)
from repro.core.optimality import (
    globally_optimal_repairs,
    is_globally_optimal,
    is_globally_optimal_by_definition,
    is_locally_optimal,
    is_semi_globally_optimal,
    optimality_profile,
)
from repro.core.families import (
    Family,
    family_chain,
    is_preferred_repair,
    preferred_repairs,
    preferred_repairs_of_instance,
)
from repro.core.properties import (
    PropertyReport,
    audit_family,
    check_p1_nonempty,
    check_p2_monotone,
    check_p2_monotone_pair,
    check_p3_nondiscrimination,
    check_p4_categorical,
)
from repro.core.trivial import example6_family, trep_family, trep_family_patched
from repro.core.cyclic import (
    CyclicPreference,
    condensed_preferred_repairs,
    is_conservative_extension,
)

__all__ = [
    "CyclicPreference",
    "Family",
    "PropertyReport",
    "condensed_preferred_repairs",
    "is_conservative_extension",
    "all_cleaning_results",
    "audit_family",
    "check_p1_nonempty",
    "check_p2_monotone",
    "check_p2_monotone_pair",
    "check_p3_nondiscrimination",
    "check_p4_categorical",
    "clean",
    "example6_family",
    "family_chain",
    "globally_optimal_repairs",
    "is_common_repair",
    "is_globally_optimal",
    "is_globally_optimal_by_definition",
    "is_locally_optimal",
    "is_preferred_repair",
    "is_semi_globally_optimal",
    "maximal_under_preference",
    "optimality_profile",
    "preferred_repairs",
    "preferred_repairs_of_instance",
    "prefers",
    "strictly_prefers",
    "trep_family",
    "trep_family_patched",
]
