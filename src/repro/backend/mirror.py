"""A lazily refreshed SQLite mirror of a mutating instance.

``repro session`` keeps one :class:`~repro.incremental.engine.
IncrementalCqaEngine` alive while a script inserts and deletes tuples.
With ``--backend sqlite`` the session additionally maintains this
mirror: an (in-memory by default) SQLite database that is re-saved from
the engine's current state the first time a query arrives after an
update, so rewritable queries run pushed down while updates stay
incremental.  Refreshes are O(instance), queries are index-backed; a
burst of updates between two queries costs one refresh.
"""

from __future__ import annotations

import sqlite3
from typing import Callable, Optional, Sequence, Union

from repro.backend.engine import SqlCqaEngine
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.relational.database import Database
from repro.relational.sqlite_io import save_database


class SqliteMirror:
    """Owns a SQLite connection kept in sync with a changing database."""

    def __init__(
        self,
        dependencies: Sequence[FunctionalDependency],
        family: Family = Family.REP,
        target: str = ":memory:",
    ) -> None:
        # The service broker refreshes and queries the mirror from
        # whichever front-end thread holds the per-database lock, so
        # access is serialized but not thread-affine.
        self._connection = sqlite3.connect(target, check_same_thread=False)
        self.dependencies = tuple(dependencies)
        self.family = family
        self._dirty = True
        self._engine: Optional[SqlCqaEngine] = None

    def mark_dirty(self) -> None:
        """Record that the source instance changed since the last refresh."""
        self._dirty = True

    @property
    def dirty(self) -> bool:
        """Whether the next :meth:`engine_for` will re-save the source."""
        return self._dirty or self._engine is None

    def engine_for(
        self, database: Union[Database, Callable[[], Database]]
    ) -> SqlCqaEngine:
        """A :class:`SqlCqaEngine` over an up-to-date mirror of ``database``.

        ``database`` may be a zero-argument callable, invoked only when
        a refresh is actually due — callers whose source snapshot is
        itself O(instance) to assemble (the broker's
        ``current_database()``) skip that cost on clean mirrors.
        """
        if self.dirty:
            if callable(database):
                database = database()
            save_database(database, self._connection, self.dependencies)
            self._engine = SqlCqaEngine(
                self._connection, self.dependencies, family=self.family
            )
            self._dirty = False
        return self._engine

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "SqliteMirror":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
