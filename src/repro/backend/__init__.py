"""SQL pushdown backend: certain answers computed inside SQLite.

The layer below (:mod:`repro.cqa`) answers by streaming repairs; this
layer compiles the safe conjunctive fragment to a single self-join SQL
rewriting (:mod:`repro.backend.rewrite`) and executes it directly on the
SQLite store the relational layer persists to, via
:class:`SqlCqaEngine` (:mod:`repro.backend.engine`).  Non-rewritable
queries transparently fall back to the in-memory engine.
"""

from repro.backend.engine import SqlCqaEngine
from repro.backend.mirror import SqliteMirror
from repro.backend.rewrite import (
    DirtyProfile,
    PlanResult,
    RewriteDecision,
    RewritePlan,
    analyze_query,
    dirty_profile,
)

__all__ = [
    "DirtyProfile",
    "PlanResult",
    "RewriteDecision",
    "RewritePlan",
    "SqlCqaEngine",
    "SqliteMirror",
    "analyze_query",
    "dirty_profile",
]
