"""Unit tests for the sharded executor (`repro.service.parallel`).

The core contract: for every repair family, the shard plan's indexed
product space enumerates exactly the serial engines' preferred repairs
(in the serial stream order for the streaming families), and the merged
shard results are bit-identical to serial evaluation — with one chunk,
with many in-process chunks, and through a real process pool.
"""

from __future__ import annotations

import pytest

from repro.core.families import Family, preferred_repairs
from repro.cqa.engine import CqaEngine
from repro.datagen.generators import (
    CHAIN_FDS,
    GRID_FDS,
    chain_instance,
    grid_instance,
)
from repro.priorities.priority import Priority
from repro.query.parser import parse_query
from repro.repairs.enumerate import enumerate_repairs, repair_sort_key
from repro.service.parallel import (
    ShardPlan,
    _chunks,
    plan_from_fragments,
    resolve_workers,
    run_closed,
    run_open,
    shard_plan,
)

from tests.conftest import TWO_FDS, TWO_FD_SCHEMA
from repro.relational.instance import RelationInstance

OPEN = parse_query(
    "EXISTS b1, b2, c1, c2, d1, d2 . "
    "R(a, b1, c1, d1) AND R(a, b2, c2, d2) AND b1 != b2"
)
CLOSED = parse_query(
    "EXISTS a, b1, b2, c1, c2, d1, d2 . "
    "R(a, b1, c1, d1) AND R(a, b2, c2, d2) AND b1 != b2"
)


def _two_fd_instance():
    values = [
        (0, 0, 0, 0),
        (0, 1, 0, 1),
        (1, 0, 0, 0),
        (1, 1, 1, 1),
        (2, 2, 1, 1),
        (2, 2, 2, 2),
    ]
    return RelationInstance.from_values(TWO_FD_SCHEMA, values)


def _priority_for(engine: CqaEngine):
    """Orient a deterministic subset of conflicts (acyclic by order)."""
    from repro.relational.rows import sorted_rows

    order = {row: i for i, row in enumerate(sorted_rows(engine.graph.vertices))}
    edges = []
    for index, pair in enumerate(engine.graph.edges()):
        if index % 2:
            continue
        first, second = tuple(sorted_rows(pair))
        edges.append(
            (first, second) if order[first] < order[second] else (second, first)
        )
    return Priority(engine.graph, edges)


class TestShardPlan:
    def test_product_space_matches_enumerate_repairs_order(self):
        instance = chain_instance(8)
        engine = CqaEngine(instance, CHAIN_FDS)
        plan = shard_plan(engine.graph, engine.priority, Family.REP)
        streamed = list(enumerate_repairs(engine.graph))
        assert plan.total == len(streamed)
        assert [plan.repair_at(i) for i in range(plan.total)] == streamed

    @pytest.mark.parametrize("family", list(Family))
    def test_fragment_product_equals_preferred_repairs(self, family):
        instance = _two_fd_instance()
        engine = CqaEngine(instance, TWO_FDS)
        priority = _priority_for(engine)
        plan = shard_plan(engine.graph, priority, family)
        assembled = sorted(
            (plan.repair_at(i) for i in range(plan.total)), key=repair_sort_key
        )
        expected = preferred_repairs(family, priority)
        assert assembled == expected

    def test_empty_graph_has_one_empty_repair(self):
        instance = RelationInstance.from_values(TWO_FD_SCHEMA, [])
        engine = CqaEngine(instance, TWO_FDS)
        plan = shard_plan(engine.graph, engine.priority, Family.REP)
        assert plan.total == 1
        assert plan.repair_at(0) == frozenset()

    def test_plan_from_fragments_pseudo_component(self):
        instance = grid_instance(2, 2)
        engine = CqaEngine(instance, GRID_FDS)
        repairs = engine.repairs(Family.REP)
        plan = plan_from_fragments([repairs])
        assert plan.total == len(repairs)
        assert [plan.repair_at(i) for i in range(plan.total)] == repairs


class TestChunking:
    def test_chunks_cover_range_exactly(self):
        for total, workers in [(1, 4), (7, 2), (16, 4), (100, 3), (5, 50)]:
            ranges = _chunks(total, workers)
            flat = [i for start, stop in ranges for i in range(start, stop)]
            assert flat == list(range(total))

    def test_chunk_count_never_exceeds_total(self):
        assert len(_chunks(3, 8)) == 3

    def test_resolve_workers(self):
        assert resolve_workers(None) is None
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestMergedExecution:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_open_merge_matches_serial(self, workers):
        instance = chain_instance(9)
        serial = CqaEngine(instance, CHAIN_FDS)
        expected = serial.certain_answers(OPEN, ("a",))
        plan = shard_plan(serial.graph, serial.priority, Family.REP)
        merged = run_open(plan, OPEN, ("a",), workers=workers)
        assert merged.certain == expected.certain
        assert merged.possible == expected.possible
        assert merged.considered == expected.repairs_considered

    @pytest.mark.parametrize("workers", [1, 3])
    def test_closed_merge_matches_serial(self, workers):
        instance = chain_instance(9)
        serial = CqaEngine(instance, CHAIN_FDS)
        expected = serial.answer(CLOSED)
        plan = shard_plan(serial.graph, serial.priority, Family.REP)
        merged = run_closed(plan, CLOSED, workers=workers)
        assert merged.considered == expected.repairs_considered
        assert merged.satisfying == expected.satisfying
        assert merged.counterexample == expected.counterexample

    def test_stop_on_false_reports_a_real_counterexample(self):
        instance = chain_instance(9)
        engine = CqaEngine(instance, CHAIN_FDS)
        formula = parse_query("EXISTS x, y, z, w . R(x, y, z, w) AND x > 100")
        plan = shard_plan(engine.graph, engine.priority, Family.REP)
        merged = run_closed(plan, formula, workers=2, stop_on_false=True)
        assert merged.counterexample is not None
        from repro.query.evaluator import evaluate

        assert not evaluate(formula, merged.counterexample)

    def test_engine_parallel_argument_round_trip(self):
        """`parallel=` on the public engine surface hits the shard path."""
        instance = _two_fd_instance()
        serial = CqaEngine(instance, TWO_FDS)
        sharded = CqaEngine(instance, TWO_FDS)
        query = "EXISTS a, b1, b2 . R(a, b1, 0, 0) AND R(a, b2, 0, 1)"
        assert serial.answer(query) == sharded.answer(query, parallel=1)
        assert serial.is_consistently_true(query) == sharded.is_consistently_true(
            query, parallel=1
        )

    def test_naive_flag_threads_through_shards(self):
        instance = chain_instance(7)
        naive = CqaEngine(instance, CHAIN_FDS, naive=True)
        result = naive.certain_answers(OPEN, ("a",), parallel=1)
        assert result.route == "naive"
        indexed = CqaEngine(instance, CHAIN_FDS).certain_answers(
            OPEN, ("a",), parallel=1
        )
        assert result.certain == indexed.certain
        assert result.possible == indexed.possible


class TestProcessPool:
    """One real pool round trip (kept tiny: this box may be 1-core)."""

    def test_pool_execution_is_identical(self):
        instance = chain_instance(8)
        serial = CqaEngine(instance, CHAIN_FDS)
        expected = serial.certain_answers(OPEN, ("a",))
        parallel = CqaEngine(instance, CHAIN_FDS)
        result = parallel.certain_answers(OPEN, ("a",), parallel=2)
        assert result == expected
        assert result.route == expected.route

    def test_rows_and_payloads_pickle(self):
        import pickle

        instance = chain_instance(4)
        engine = CqaEngine(instance, CHAIN_FDS)
        plan = shard_plan(engine.graph, engine.priority, Family.REP)
        clone: ShardPlan = pickle.loads(pickle.dumps(plan))
        assert clone.total == plan.total
        assert [clone.repair_at(i) for i in range(clone.total)] == [
            plan.repair_at(i) for i in range(plan.total)
        ]
