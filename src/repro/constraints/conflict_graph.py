"""Conflict graphs (paper Section 2.1, Figure 1).

The conflict graph of an instance ``r`` w.r.t. a set of FDs ``F`` has
the tuples of ``r`` as vertices and an edge between every conflicting
pair.  It is a compact representation of the repairs: the repairs of
``r`` are exactly the *maximal independent sets* of the conflict graph.

The graph also carries, per edge, the set of dependencies violated by
that pair — useful for diagnostics and for the priority builders that
assign preferences constraint-by-constraint.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.constraints.conflicts import ConflictEdge, edge, find_conflicts
from repro.constraints.fd import FunctionalDependency
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row, sorted_rows


class ConflictGraph:
    """An immutable undirected graph over database rows."""

    __slots__ = ("vertices", "_adjacency", "_labels")

    def __init__(
        self,
        vertices: Iterable[Row],
        edges: Union[
            Mapping[ConflictEdge, Set[FunctionalDependency]],
            Iterable[ConflictEdge],
        ],
    ) -> None:
        self.vertices: FrozenSet[Row] = frozenset(vertices)
        if isinstance(edges, Mapping):
            labels = {pair: frozenset(fds) for pair, fds in edges.items()}
        else:
            labels = {pair: frozenset() for pair in edges}
        adjacency: Dict[Row, Set[Row]] = {vertex: set() for vertex in self.vertices}
        for pair in labels:
            first, second = tuple(pair)
            if first not in adjacency or second not in adjacency:
                missing = {first, second} - self.vertices
                raise ValueError(f"edge endpoint(s) {missing} not in vertex set")
            adjacency[first].add(second)
            adjacency[second].add(first)
        self._adjacency: Dict[Row, FrozenSet[Row]] = {
            vertex: frozenset(neighbours) for vertex, neighbours in adjacency.items()
        }
        self._labels: Dict[ConflictEdge, FrozenSet[FunctionalDependency]] = labels

    # Basic accessors --------------------------------------------------------

    def neighbours(self, row: Row) -> FrozenSet[Row]:
        """The paper's ``n(t)``: all tuples conflicting with ``t``."""
        return self._adjacency[row]

    def vicinity(self, row: Row) -> FrozenSet[Row]:
        """The paper's ``v(t) = {t} ∪ n(t)``."""
        return self._adjacency[row] | {row}

    def are_conflicting(self, first: Row, second: Row) -> bool:
        """Whether the two rows are adjacent."""
        return second in self._adjacency.get(first, frozenset())

    def edges(self) -> Iterator[ConflictEdge]:
        """All undirected edges."""
        return iter(self._labels)

    def edge_labels(self, pair: ConflictEdge) -> FrozenSet[FunctionalDependency]:
        """Dependencies violated by the given conflicting pair."""
        return self._labels[pair]

    @property
    def edge_count(self) -> int:
        return len(self._labels)

    @property
    def vertex_count(self) -> int:
        return len(self.vertices)

    def isolated_vertices(self) -> FrozenSet[Row]:
        """Rows involved in no conflict (present in every repair)."""
        return frozenset(
            vertex for vertex, adj in self._adjacency.items() if not adj
        )

    def degree(self, row: Row) -> int:
        return len(self._adjacency[row])

    # Independent-set predicates ----------------------------------------------

    def is_independent(self, rows: AbstractSet[Row]) -> bool:
        """No two of the given rows conflict (i.e. the set is consistent)."""
        rows = set(rows)
        for row in rows:
            if self._adjacency.get(row, frozenset()) & rows:
                return False
        return True

    def is_maximal_independent(self, rows: AbstractSet[Row]) -> bool:
        """Independent and not extendable — i.e. a repair (Definition 1)."""
        rows = set(rows)
        if not rows <= self.vertices:
            return False
        if not self.is_independent(rows):
            return False
        for vertex in self.vertices - rows:
            if not self._adjacency[vertex] & rows:
                return False
        return True

    def __len__(self) -> int:
        return len(self.vertices)

    def __contains__(self, row: object) -> bool:
        return row in self.vertices

    # Derived graphs -----------------------------------------------------------

    def induced(self, rows: AbstractSet[Row]) -> "ConflictGraph":
        """The subgraph induced by ``rows``.

        This sits on the enumeration hot path (component factoring
        induces one subgraph per component), so it avoids the
        constructor's endpoint re-validation: adjacency is restricted
        directly, and inducing on the full vertex set returns ``self``
        (the graph is immutable, sharing is safe).
        """
        rows = frozenset(rows) & self.vertices
        if rows == self.vertices:
            return self
        subgraph = ConflictGraph.__new__(ConflictGraph)
        subgraph.vertices = rows
        subgraph._adjacency = {
            vertex: self._adjacency[vertex] & rows for vertex in rows
        }
        subgraph._labels = {
            pair: fds for pair, fds in self._labels.items() if pair <= rows
        }
        return subgraph

    def connected_components(self) -> List[FrozenSet[Row]]:
        """Connected components (conflicts decompose across components)."""
        seen: Set[Row] = set()
        components: List[FrozenSet[Row]] = []
        for start in sorted_rows(self.vertices):
            if start in seen:
                continue
            stack = [start]
            component: Set[Row] = set()
            while stack:
                vertex = stack.pop()
                if vertex in component:
                    continue
                component.add(vertex)
                stack.extend(self._adjacency[vertex] - component)
            seen.update(component)
            components.append(frozenset(component))
        return components

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConflictGraph):
            return NotImplemented
        return self.vertices == other.vertices and set(self._labels) == set(
            other._labels
        )

    def __hash__(self) -> int:
        return hash((self.vertices, frozenset(self._labels)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConflictGraph({self.vertex_count} vertices, "
            f"{self.edge_count} edges)"
        )


def build_conflict_graph(
    data: Union[RelationInstance, Database, Iterable[Row]],
    dependencies: Sequence[FunctionalDependency],
) -> ConflictGraph:
    """Construct the conflict graph of an instance/database w.r.t. FDs."""
    if isinstance(data, RelationInstance):
        rows: FrozenSet[Row] = data.rows
    elif isinstance(data, Database):
        rows = data.all_rows()
    else:
        rows = frozenset(data)
    return ConflictGraph(rows, find_conflicts(rows, dependencies))


def render_conflict_graph(
    graph: ConflictGraph,
    names: Optional[Mapping[Row, str]] = None,
    orientation: Optional[Iterable[Tuple[Row, Row]]] = None,
) -> str:
    """ASCII rendering used to reproduce the paper's Figures 1–4.

    Lists each vertex with its adjacency; when ``orientation`` (a set of
    ``(winner, loser)`` pairs) is supplied, oriented edges are drawn as
    ``winner -> loser`` and unoriented ones as ``a -- b``.
    """
    label = dict(names) if names else {}

    def name_of(row: Row) -> str:
        return label.get(row, repr(row))

    oriented = {(w, l) for w, l in orientation} if orientation else set()
    lines = [f"vertices: {', '.join(name_of(r) for r in sorted_rows(graph.vertices))}"]
    drawn: Set[ConflictEdge] = set()
    for row in sorted_rows(graph.vertices):
        for other in sorted_rows(graph.neighbours(row)):
            pair = edge(row, other)
            if pair in drawn:
                continue
            drawn.add(pair)
            if (row, other) in oriented:
                lines.append(f"  {name_of(row)} -> {name_of(other)}")
            elif (other, row) in oriented:
                lines.append(f"  {name_of(other)} -> {name_of(row)}")
            else:
                lines.append(f"  {name_of(row)} -- {name_of(other)}")
    if graph.edge_count == 0:
        lines.append("  (no conflicts)")
    return "\n".join(lines)
