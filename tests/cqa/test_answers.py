"""Unit tests for the answer types (verdicts, open answers)."""

from repro.core.families import Family
from repro.cqa.answers import ClosedAnswer, OpenAnswers, Verdict


class TestVerdict:
    def test_as_bool(self):
        assert Verdict.TRUE.as_bool is True
        assert Verdict.FALSE.as_bool is False
        assert Verdict.UNDETERMINED.as_bool is None

    def test_values_for_cli(self):
        assert {v.value for v in Verdict} == {"true", "false", "undetermined"}


class TestClosedAnswer:
    def test_is_consistent_answer_true(self):
        answer = ClosedAnswer(Family.REP, Verdict.TRUE, 3, 3)
        assert answer.is_consistent_answer_true
        assert not ClosedAnswer(
            Family.REP, Verdict.UNDETERMINED, 3, 1
        ).is_consistent_answer_true


class TestOpenAnswers:
    def test_disputed(self):
        answers = OpenAnswers(
            Family.REP,
            ("n",),
            certain=frozenset({("a",)}),
            possible=frozenset({("a",), ("b",)}),
            repairs_considered=2,
        )
        assert answers.disputed == {("b",)}

    def test_no_dispute_when_equal(self):
        answers = OpenAnswers(
            Family.GLOBAL,
            ("n",),
            certain=frozenset({("a",)}),
            possible=frozenset({("a",)}),
            repairs_considered=1,
        )
        assert answers.disputed == frozenset()
