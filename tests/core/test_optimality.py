"""Unit and property tests for local/semi-global/global optimality."""

from hypothesis import given, settings

from repro.core.lifting import prefers, strictly_prefers
from repro.core.optimality import (
    globally_optimal_repairs,
    is_globally_optimal,
    is_globally_optimal_by_definition,
    is_locally_optimal,
    is_semi_globally_optimal,
    optimality_profile,
)
from repro.datagen.paper_instances import (
    example7_scenario,
    example8_scenario,
    example9_printed,
    example9_reconstructed,
    mgr_scenario,
)
from repro.repairs.enumerate import enumerate_repairs
from tests.conftest import key_priorities, two_fd_priorities


class TestExample7Local:
    def test_only_ta_is_locally_optimal(self):
        scenario = example7_scenario()
        assert is_locally_optimal(scenario.row_set("ta"), scenario.priority)
        assert not is_locally_optimal(scenario.row_set("tb"), scenario.priority)
        assert not is_locally_optimal(scenario.row_set("tc"), scenario.priority)


class TestExample8SemiGlobal:
    def test_duplicates_defeat_local_but_not_semi_global(self):
        scenario = example8_scenario()
        duplicates = scenario.row_set("ta", "tb")
        challenger = scenario.row_set("tc")
        # Both repairs are locally optimal (paper: "All the repairs are
        # locally optimal").
        assert is_locally_optimal(duplicates, scenario.priority)
        assert is_locally_optimal(challenger, scenario.priority)
        # Semi-global optimality rejects the duplicates.
        assert not is_semi_globally_optimal(duplicates, scenario.priority)
        assert is_semi_globally_optimal(challenger, scenario.priority)


class TestExample9Global:
    def test_reconstructed_global_selects_r1(self):
        """Section 3.3: r2 is not globally optimal and r1 is."""
        scenario = example9_reconstructed()
        r1 = scenario.row_set("ta", "tc", "te")
        r2 = scenario.row_set("tb", "td")
        assert is_semi_globally_optimal(r1, scenario.priority)
        assert is_semi_globally_optimal(r2, scenario.priority)
        assert is_globally_optimal(r1, scenario.priority)
        assert not is_globally_optimal(r2, scenario.priority)

    def test_printed_values_collapse_to_r1(self):
        """Erratum record: with the printed values the S-family is {r1}."""
        scenario = example9_printed()
        r1 = scenario.row_set("ta", "tc", "te")
        r2 = scenario.row_set("tb", "td")
        assert is_semi_globally_optimal(r1, scenario.priority)
        assert not is_semi_globally_optimal(r2, scenario.priority)


class TestLifting:
    def test_preference_on_mgr(self):
        scenario = mgr_scenario()
        r1 = scenario.row_set("mary_rd", "john_pr")
        r3 = scenario.row_set("mary_it", "john_pr")
        assert strictly_prefers(scenario.priority, r3, r1)
        assert not strictly_prefers(scenario.priority, r1, r3)

    def test_prefers_is_vacuous_on_equal_sets(self):
        scenario = mgr_scenario()
        r1 = scenario.row_set("mary_rd", "john_pr")
        assert prefers(scenario.priority, r1, r1)
        assert not strictly_prefers(scenario.priority, r1, r1)

    def test_proposition5_on_reconstruction(self):
        scenario = example9_reconstructed()
        r1 = scenario.row_set("ta", "tc", "te")
        r2 = scenario.row_set("tb", "td")
        assert strictly_prefers(scenario.priority, r2, r1)
        assert not strictly_prefers(scenario.priority, r1, r2)


class TestContainments:
    @given(two_fd_priorities())
    @settings(max_examples=60, deadline=None)
    def test_global_implies_semi_global_implies_local(self, data):
        """Section 3: global ⟹ semi-global ⟹ local."""
        _, priority = data
        repairs = list(enumerate_repairs(priority.graph))
        for repair in repairs:
            profile = optimality_profile(repair, priority)
            if profile["global"]:
                assert profile["semi_global"]
            if profile["semi_global"]:
                assert profile["local"]

    @given(key_priorities(max_tuples=6))
    @settings(max_examples=40, deadline=None)
    def test_key_dependency_local_equals_semi_global(self, data):
        """Proposition 3: for one key dependency L-Rep = S-Rep."""
        _, priority = data
        for repair in enumerate_repairs(priority.graph):
            assert is_locally_optimal(repair, priority) == is_semi_globally_optimal(
                repair, priority
            )

    @given(two_fd_priorities(max_tuples=6))
    @settings(max_examples=40, deadline=None)
    def test_proposition5_definition_equivalence(self, data):
        """Global optimality: Prop 5 (≪-maximal) ≡ replacement definition."""
        _, priority = data
        repairs = list(enumerate_repairs(priority.graph))
        for repair in repairs:
            assert is_globally_optimal(
                repair, priority, repairs
            ) == is_globally_optimal_by_definition(repair, priority)

    @given(two_fd_priorities())
    @settings(max_examples=50, deadline=None)
    def test_globally_optimal_repairs_nonempty(self, data):
        """P1 for G-Rep (part of Proposition 4)."""
        _, priority = data
        repairs = list(enumerate_repairs(priority.graph))
        assert globally_optimal_repairs(priority, repairs)


class TestEmptyPriorityNeutrality:
    @given(two_fd_priorities())
    @settings(max_examples=30, deadline=None)
    def test_every_repair_optimal_without_priorities(self, data):
        from repro.priorities.priority import empty_priority

        _, priority = data
        empty = empty_priority(priority.graph)
        for repair in enumerate_repairs(priority.graph):
            profile = optimality_profile(repair, empty)
            assert profile["local"] and profile["semi_global"] and profile["global"]
