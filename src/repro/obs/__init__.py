"""repro.obs — unified metrics registry and query-lifecycle tracing.

One process-wide :data:`REGISTRY` collects counters, gauges, and latency
histograms from every layer (engines, broker, locks, shard pool, HTTP
front end); :mod:`repro.obs.tracing` adds opt-in per-thread span trees
for ``repro query --profile``.  Both are dependency-free and near-free
when disabled.

The helpers below define the metric families every layer shares, so
label vocabularies ("route", "engine", "cache") stay consistent and
exposition (``GET /metrics``) needs no per-module knowledge.
"""

from __future__ import annotations

from typing import Optional

from .recorder import FlightRecorder, QueryRecord, RECORDER
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    REGISTRY,
    query_histogram,
)
from .tracing import (
    Span,
    Tracer,
    annotate,
    current_tracer,
    format_tree,
    install_tracer,
    new_trace_id,
    restore_tracer,
    span,
    trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "QueryRecord",
    "RECORDER",
    "REGISTRY",
    "Span",
    "Tracer",
    "annotate",
    "current_tracer",
    "format_tree",
    "install_tracer",
    "new_trace_id",
    "restore_tracer",
    "span",
    "trace",
    "observe_query",
    "observe_cache",
    "query_histogram",
]


def observe_query(
    engine: str,
    route: str,
    family: str,
    seconds: float,
    registry: MetricsRegistry = REGISTRY,
) -> None:
    """Record one answered query: route counter + latency histogram.

    ``route`` is the engine's own label ("prefsql", "sqlite",
    "witness-index", "indexed", "naive", or "fallback: <reason>"); the
    fallback reason is split into its own counter so the route label set
    stays small.  The same call feeds the flight recorder's open capture
    (if any), so recorded queries carry the serving engine and route.
    """
    RECORDER.note(engine=engine, route=route, family=family, seconds=seconds)
    if not registry.enabled:
        return
    reason: Optional[str] = None
    if route.startswith("fallback"):
        _, _, detail = route.partition(":")
        reason = detail.strip() or "unspecified"
        route = "fallback"
    registry.counter(
        "repro_queries_total",
        "Queries answered, by engine, route, and repair family",
        labels=("engine", "route", "family"),
    ).labels(engine=engine, route=route, family=family).inc()
    if reason is not None:
        registry.counter(
            "repro_fallbacks_total",
            "Pushdown fallbacks to in-memory evaluation, by reason",
            labels=("reason",),
        ).labels(reason=reason).inc()
    query_histogram(registry).labels(route=route).observe(seconds)


def observe_cache(
    cache: str,
    event: str,
    amount: int = 1,
    registry: MetricsRegistry = REGISTRY,
) -> None:
    """Record a cache event: ``event`` is "hit", "miss", or "eviction".

    ``cache`` names the family: "answer" (broker result cache),
    "context" (evaluator contexts), or "component_repair" (incremental
    per-component repair sets).
    """
    if not registry.enabled:
        return
    registry.counter(
        "repro_cache_events_total",
        "Cache hits, misses, and evictions by cache family",
        labels=("cache", "event"),
    ).labels(cache=cache, event=event).inc(amount)
