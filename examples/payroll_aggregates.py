#!/usr/bin/env python3
"""Aggregate queries over an inconsistent payroll (future-work demo).

The paper's conclusions point to the scalar-aggregation line of [2]:
an aggregate over an inconsistent database is answered with the range
[glb, lub] of its values across (preferred) repairs.  This example runs
a payroll audit three ways:

* closed-form PTIME ranges under the key dependency (classic Rep),
* exact ranges by enumeration,
* *preferred* ranges — showing how priorities tighten the audit.

Run:  python examples/payroll_aggregates.py
"""

from fractions import Fraction

from repro import FunctionalDependency, RelationInstance, RelationSchema
from repro.constraints.conflict_graph import build_conflict_graph
from repro.core.families import Family
from repro.cqa.aggregation import (
    Aggregate,
    key_range_consistent_answer,
    range_consistent_answer,
)
from repro.priorities.builders import priority_from_timestamps
from repro.priorities.priority import empty_priority


def fmt(value):
    if isinstance(value, Fraction):
        return f"{float(value):.1f}"
    return str(value)


def main() -> None:
    schema = RelationSchema("Payroll", ["Employee", "Salary:number", "Day:number"])
    rows = [
        ("Ada", 120, 10), ("Ada", 140, 30),
        ("Bob", 95, 12), ("Bob", 90, 5),
        ("Cyn", 100, 7),
        ("Hana", 115, 20), ("Hana", 125, 22),
    ]
    instance = RelationInstance.from_values(schema, rows)
    fds = [FunctionalDependency.parse("Employee -> Salary, Day", "Payroll")]
    graph = build_conflict_graph(instance, fds)
    print(f"{len(instance)} payroll rows, {graph.edge_count} key conflicts\n")

    print("Closed-form ranges under the key dependency (classic Rep):")
    for aggregate, attr in (
        (Aggregate.COUNT_STAR, None),
        (Aggregate.MIN, "Salary"),
        (Aggregate.MAX, "Salary"),
        (Aggregate.SUM, "Salary"),
        (Aggregate.AVG, "Salary"),
    ):
        rng = key_range_consistent_answer(graph, aggregate, attr)
        label = aggregate.value + (f"({attr})" if attr else "")
        marker = "exact" if rng.is_exact else "range"
        print(f"  {label:14s} [{fmt(rng.lower)}, {fmt(rng.upper)}]  ({marker})")

    # Cross-check: the enumeration agrees (it must).
    exact = range_consistent_answer(
        empty_priority(graph), Aggregate.SUM, "Salary"
    )
    closed = key_range_consistent_answer(graph, Aggregate.SUM, "Salary")
    assert exact == closed
    print("\nEnumeration cross-check: SUM ranges agree ✓")

    # Preferences: trust the newest row per employee.
    timestamps = {row: float(row["Day"]) for row in graph.vertices}
    priority = priority_from_timestamps(graph, timestamps)
    print("\nPreferred ranges (newest-wins priority, G-Rep):")
    for aggregate, attr in (
        (Aggregate.SUM, "Salary"),
        (Aggregate.MIN, "Salary"),
        (Aggregate.AVG, "Salary"),
    ):
        classic = range_consistent_answer(priority, aggregate, attr, Family.REP)
        preferred = range_consistent_answer(priority, aggregate, attr, Family.GLOBAL)
        label = f"{aggregate.value}({attr})"
        print(
            f"  {label:14s} Rep [{fmt(classic.lower)}, {fmt(classic.upper)}]"
            f"  ->  G-Rep [{fmt(preferred.lower)}, {fmt(preferred.upper)}]"
        )
    print("\nWith all conflicts timestamp-resolved, the audit is exact.")


if __name__ == "__main__":
    main()
