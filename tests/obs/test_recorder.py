"""Flight recorder: sampling, slow capture, eviction, thread safety.

Covers the ISSUE 9 tentpole contracts: ring-buffer FIFO eviction with a
slow reservoir that survives wraparound, deterministic seeded sampling,
two-thread stress, the ``QueryRecord`` dict round trip, recorded span
trees containing per-shard worker spans under ``parallel=4``, and a
differential check that recording changes no answer on any of the five
engines.
"""

from __future__ import annotations

import os
import random
import sqlite3
import threading
import time

import pytest

from repro.backend import SqlCqaEngine
from repro.constraints.conflict_graph import build_conflict_graph
from repro.constraints.denial import fd_as_denial
from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.cqa.hypergraph_cqa import DenialCqaEngine
from repro.datagen.generators import GRID_FDS, GRID_SCHEMA, grid_instance
from repro.incremental import IncrementalCqaEngine
from repro.obs import RECORDER, REGISTRY, FlightRecorder, QueryRecord
from repro.obs.recorder import _NoCapture
from repro.priorities.builders import priority_from_ranking
from repro.query.parser import parse_query
from repro.relational.database import Database
from repro.relational.sqlite_io import save_database

OPEN = parse_query("EXISTS y . R(x, y)")
CLOSED = parse_query("EXISTS x, y . R(x, y)")


def _record(trace_id: str, seconds: float, slow: bool = False, route: str = "indexed"):
    return QueryRecord(
        trace_id=trace_id,
        query="q",
        engine="incremental",
        route=route,
        family="Rep",
        seconds=seconds,
        started_at=float(int(trace_id.rsplit("-", 1)[-1], 36)),
        slow=slow,
    )


class TestCaptureBasics:
    def test_capture_records_with_noted_details(self):
        recorder = FlightRecorder(seed=0)
        with recorder.capture("EXISTS y . R(x, y)", database="db") as capture:
            recorder.note(engine="sqlite", route="sqlite", family="Rep")
        assert capture.recorded
        record = recorder.get(capture.trace_id)
        assert record is not None
        assert record.engine == "sqlite"
        assert record.route == "sqlite"
        assert record.family == "Rep"
        assert record.database == "db"
        assert record.query == "EXISTS y . R(x, y)"
        assert record.seconds > 0.0
        assert record.trace is not None and record.trace["name"] == "query"
        assert record.trace["attributes"]["trace_id"] == capture.trace_id

    def test_engine_spans_and_observe_query_feed_the_capture(self):
        # observe_query feeds the process-wide RECORDER (reset by the
        # obs conftest), so the engine's own instrumentation lands in
        # whatever capture is open on this thread.
        instance = grid_instance(2, 2)
        engine = CqaEngine(instance, GRID_FDS)
        with RECORDER.capture("closed") as capture:
            engine.answer(CLOSED)
        record = RECORDER.get(capture.trace_id)
        assert record.engine == "cqa"
        assert record.route != "?"  # whatever the engine chose was noted
        names = {child["name"] for child in record.trace["children"]}
        assert "parse" in names  # the engine's own spans were collected

    def test_nested_capture_is_noop_and_outer_owns_the_record(self):
        recorder = FlightRecorder(seed=0)
        with recorder.capture("outer") as outer:
            inner = recorder.capture("inner")
            assert isinstance(inner, _NoCapture)
            with inner:
                pass
        assert recorder.summary()["recorded"] == 1
        assert recorder.get(outer.trace_id).query == "outer"

    def test_disabled_recorder_returns_shared_noop(self):
        recorder = FlightRecorder(enabled=False)
        capture = recorder.capture("q")
        assert isinstance(capture, _NoCapture)
        assert recorder.summary()["started"] == 0

    def test_exception_drops_the_record(self):
        recorder = FlightRecorder(seed=0)
        with pytest.raises(RuntimeError):
            with recorder.capture("boom"):
                raise RuntimeError("query failed")
        summary = recorder.summary()
        assert summary["recorded"] == 0
        assert summary["dropped"] == 1

    def test_report_provider_feeds_fingerprint_and_blocking(self):
        recorder = FlightRecorder(seed=0)

        class _Diag:
            full_code = "RA201-self-join-dirty"

        class _Report:
            fingerprint = "abc123"
            errors = (_Diag(),)

        with recorder.capture("q", report_provider=lambda: _Report()) as capture:
            pass
        record = recorder.get(capture.trace_id)
        assert record.fingerprint == "abc123"
        assert record.blocking == ("RA201-self-join-dirty",)


class TestSampling:
    def test_seeded_sampling_is_deterministic(self):
        kept_runs = []
        for _ in range(2):
            recorder = FlightRecorder(sample_rate=0.5, seed=42)
            kept = []
            for index in range(40):
                with recorder.capture(f"q{index}") as capture:
                    pass
                kept.append(capture.recorded)
            kept_runs.append(kept)
        assert kept_runs[0] == kept_runs[1]
        # And the keep pattern is exactly the seeded RNG's draw sequence.
        reference = random.Random(42)
        assert kept_runs[0] == [reference.random() < 0.5 for _ in range(40)]
        assert True in kept_runs[0] and False in kept_runs[0]

    def test_sample_rate_zero_without_slow_capture_records_nothing(self):
        recorder = FlightRecorder(sample_rate=0.0, seed=0)
        capture = recorder.capture("q")
        assert isinstance(capture, _NoCapture)
        assert recorder.summary()["started"] == 1

    def test_slow_threshold_overrides_a_losing_sample_draw(self):
        recorder = FlightRecorder(sample_rate=0.0, slow_ms=0.0, seed=0)
        with recorder.capture("slow query") as capture:
            time.sleep(0.001)
        record = recorder.get(capture.trace_id)
        assert record is not None
        assert record.slow and not record.sampled
        assert record.trace is not None  # slow capture always traces

    def test_configure_validates_and_reseeds(self):
        recorder = FlightRecorder()
        with pytest.raises(ValueError):
            recorder.configure(sample_rate=1.5)
        with pytest.raises(ValueError):
            recorder.configure(capacity=0)
        recorder.configure(sample_rate=0.25, slow_ms=12.5, seed=7)
        summary = recorder.summary()
        assert summary["sample_rate"] == 0.25
        assert summary["slow_ms"] == 12.5


class TestRetention:
    def test_ring_evicts_fifo_at_capacity(self):
        recorder = FlightRecorder(capacity=3, seed=0)
        ids = []
        for index in range(5):
            with recorder.capture(f"q{index}") as capture:
                pass
            ids.append(capture.trace_id)
        summary = recorder.summary()
        assert summary["ring_entries"] == 3
        assert summary["evicted"] == 2
        assert recorder.get(ids[0]) is None and recorder.get(ids[1]) is None
        assert all(recorder.get(trace_id) for trace_id in ids[2:])

    def test_slow_records_survive_ring_wraparound(self):
        recorder = FlightRecorder(capacity=2, slow_capacity=4, seed=0)
        slow = _record("slow-1", seconds=2.0, slow=True)
        recorder._store(slow)
        for index in range(10):
            recorder._store(_record(f"fast-{index}", seconds=0.001))
        assert recorder.summary()["ring_entries"] == 2
        retained = recorder.get("slow-1")
        assert retained is not None and retained.seconds == 2.0
        assert retained in recorder.records(min_ms=1000.0)

    def test_slow_reservoir_keeps_the_slowest_when_full(self):
        recorder = FlightRecorder(slow_capacity=2, seed=0)
        recorder._store(_record("s-1", seconds=1.0, slow=True))
        recorder._store(_record("s-2", seconds=3.0, slow=True))
        # Slower than the fastest resident: evicts it.
        recorder._store(_record("s-3", seconds=2.0, slow=True))
        # Faster than every resident: dropped from the reservoir (but
        # still rides the ring until wraparound).
        recorder._store(_record("s-4", seconds=0.5, slow=True))
        assert recorder.summary()["slow_entries"] == 2
        for index in range(recorder.capacity):
            recorder._store(_record(f"f-{index}", seconds=0.001))
        assert recorder.get("s-1") is None
        assert recorder.get("s-4") is None
        assert recorder.get("s-2").seconds == 3.0
        assert recorder.get("s-3").seconds == 2.0

    def test_records_filters_and_orders(self):
        recorder = FlightRecorder(seed=0)
        recorder._store(_record("a-1", seconds=0.010, route="sqlite"))
        recorder._store(_record("a-2", seconds=0.050, route="indexed"))
        recorder._store(_record("a-3", seconds=0.002, route="indexed"))
        assert [r.trace_id for r in recorder.records()] == ["a-3", "a-2", "a-1"]
        assert [r.trace_id for r in recorder.records(slowest=True)] == [
            "a-2", "a-1", "a-3",
        ]
        assert [r.trace_id for r in recorder.records(route="indexed")] == [
            "a-3", "a-2",
        ]
        assert [r.trace_id for r in recorder.records(min_ms=5.0)] == [
            "a-2", "a-1",
        ]
        assert len(recorder.records(limit=2)) == 2

    def test_reset_clears_everything(self):
        recorder = FlightRecorder(seed=0)
        with recorder.capture("q"):
            pass
        recorder.reset()
        summary = recorder.summary()
        assert summary["recorded"] == 0 and summary["ring_entries"] == 0


class TestRoundTrip:
    def test_query_record_dict_round_trip(self):
        original = QueryRecord(
            trace_id="t-1",
            query="EXISTS y . R(x, y)",
            engine="incremental",
            route="witness-index",
            family="G",
            seconds=0.25,
            started_at=1700000000.5,
            database="grid",
            fingerprint="deadbeef",
            blocking=("RA201-self-join-dirty",),
            sampled=True,
            slow=True,
            trace={"name": "query", "span_id": "x-1", "duration_s": 0.25},
        )
        rebuilt = QueryRecord.from_dict(original.to_dict())
        assert rebuilt == original
        assert rebuilt.span_tree().span_id == "x-1"

    def test_record_without_trace_round_trips(self):
        original = _record("t-2", seconds=0.01)
        rebuilt = QueryRecord.from_dict(original.to_dict())
        assert rebuilt == original
        assert rebuilt.span_tree() is None


class TestExemplars:
    def test_kept_record_attaches_exemplar_to_latency_bucket(self):
        recorder = FlightRecorder(seed=0, registry=REGISTRY)
        with recorder.capture("q") as capture:
            recorder.note(engine="cqa", route="indexed", family="Rep")
        snapshot = REGISTRY.snapshot()
        series = snapshot["repro_query_seconds"]["values"]["indexed"]
        assert any(
            entry["trace_id"] == capture.trace_id
            for entry in series["exemplars"].values()
        )

    def test_dropped_record_attaches_no_exemplar(self):
        recorder = FlightRecorder(sample_rate=0.0, seed=0, registry=REGISTRY)
        capture = recorder.capture("q")
        with capture:
            recorder.note(engine="cqa", route="indexed", family="Rep")
        assert "repro_query_seconds" not in REGISTRY.snapshot()


class TestThreadSafety:
    def test_two_thread_stress_keeps_counters_consistent(self):
        recorder = FlightRecorder(capacity=8, sample_rate=0.7, slow_ms=None, seed=3)
        iterations = 200
        errors = []

        def worker(name: str) -> None:
            try:
                for index in range(iterations):
                    with recorder.capture(f"{name}-{index}"):
                        recorder.note(engine="cqa", route="indexed")
                    recorder.records(limit=4)
                    recorder.records(slowest=True)
                    recorder.summary()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"t{n}",)) for n in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        summary = recorder.summary()
        assert summary["started"] == 2 * iterations
        assert summary["dropped"] == 0
        assert 0 < summary["recorded"] <= 2 * iterations
        assert summary["recorded"] == summary["sampled"]
        assert summary["ring_entries"] <= 8
        assert summary["recorded"] == summary["ring_entries"] + summary["evicted"]

    def test_captures_are_thread_local(self):
        recorder = FlightRecorder(seed=0)
        seen = {}

        def other_thread() -> None:
            seen["active"] = recorder.active_trace_id()

        with recorder.capture("q"):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
            assert recorder.active_trace_id() is not None
        assert seen["active"] is None


class TestParallelSpanPropagation:
    def test_recorded_trace_contains_worker_shard_spans(self):
        from tests.conftest import TWO_FDS, TWO_FD_SCHEMA
        from repro.relational.instance import RelationInstance

        values = [
            (a, b, c, d)
            for a in range(2) for b in range(2)
            for c in range(2) for d in range(2)
        ]
        instance = RelationInstance.from_values(TWO_FD_SCHEMA, values)
        engine = CqaEngine(instance, TWO_FDS)
        query = parse_query("EXISTS a, b, c, d . R(a, b, c, d) AND b = 0")
        recorder = FlightRecorder(seed=0)
        with recorder.capture("parallel closed") as capture:
            engine.answer(query, parallel=4)
        record = recorder.get(capture.trace_id)

        def find(span, name):
            if span["name"] == name:
                return span
            for child in span.get("children", ()):
                found = find(child, name)
                if found is not None:
                    return found
            return None

        fan_out = find(record.trace, "shard-fan-out")
        assert fan_out is not None
        shards = [
            child for child in fan_out["children"] if child["name"] == "shard"
        ]
        assert len(shards) >= 2
        # The spans were shipped home from pool worker processes.
        worker_pids = {shard["attributes"]["pid"] for shard in shards}
        assert worker_pids and os.getpid() not in worker_pids
        # Shard ranges tile the repair space in order.
        starts = sorted(shard["attributes"]["start"] for shard in shards)
        assert starts[0] == 0
        assert all(shard["duration_s"] >= 0.0 for shard in shards)
        assert all(shard["span_id"] for shard in shards)


class TestDifferential:
    def test_recorded_and_unrecorded_answers_identical_on_all_engines(self):
        instance = grid_instance(3, 2)
        graph_priority = priority_from_ranking(
            build_conflict_graph(instance, GRID_FDS), lambda row: row["B"]
        )

        def run_all():
            collected = []
            for family in (Family.REP, Family.GLOBAL):
                engine = CqaEngine(instance, GRID_FDS, graph_priority, family)
                with RECORDER.capture(f"closed[{family}]"):
                    answer = engine.answer(CLOSED)
                with RECORDER.capture(f"open[{family}]"):
                    result = engine.certain_answers(OPEN)
                collected.append(
                    (str(family), answer.verdict.value,
                     sorted(result.certain), sorted(result.possible))
                )
            incremental = IncrementalCqaEngine(
                instance, GRID_FDS, graph_priority.edges, Family.GLOBAL
            )
            with RECORDER.capture("open[incremental]"):
                result = incremental.certain_answers(OPEN)
            collected.append(("incremental", sorted(result.certain)))
            connection = sqlite3.connect(":memory:")
            save_database(Database.single(instance), connection, GRID_FDS)
            with SqlCqaEngine(connection, GRID_FDS) as engine:
                with RECORDER.capture("open[sql]"):
                    result = engine.certain_answers(OPEN)
                collected.append(("sql", sorted(result.certain)))
            connection = sqlite3.connect(":memory:")
            save_database(Database.single(instance), connection, GRID_FDS)
            from repro.prefsql import PrefSqlCqaEngine

            with PrefSqlCqaEngine(
                connection, GRID_FDS, graph_priority.dominance_rows(),
                Family.GLOBAL,
            ) as engine:
                with RECORDER.capture("open[prefsql]"):
                    result = engine.certain_answers(OPEN)
                collected.append(("prefsql", sorted(result.certain)))
            denials = [fd_as_denial(fd, GRID_SCHEMA) for fd in GRID_FDS]
            with RECORDER.capture("closed[denial]"):
                answer = DenialCqaEngine(instance, denials).answer(CLOSED)
            collected.append(("denial", answer.verdict.value))
            return collected

        RECORDER.enabled = False
        unrecorded = run_all()
        assert RECORDER.summary()["recorded"] == 0

        RECORDER.reset(seed=0)
        RECORDER.enabled = True
        RECORDER.configure(sample_rate=1.0)
        recorded = run_all()
        assert recorded == unrecorded
        assert RECORDER.summary()["recorded"] == 8
        for record in RECORDER.records():
            assert record.engine in {"cqa", "incremental", "sql", "prefsql", "denial"}
