"""Unit tests for CSV and SQLite persistence."""

import sqlite3

import pytest

from repro.exceptions import SchemaError, UnknownRelationError
from repro.relational.csv_io import (
    instance_to_csv_text,
    read_instance_csv,
    read_instance_csv_text,
    write_instance_csv,
)
from repro.relational.database import Database
from repro.relational.domain import AttributeType
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.constraints.fd import FunctionalDependency
from repro.relational.sqlite_io import (
    ensure_fd_indexes,
    load_database,
    load_instance,
    load_schema,
    save_database,
    save_instance,
)

SCHEMA = RelationSchema("Mgr", ["Name", "Dept", "Salary:number"])


def sample_instance():
    return RelationInstance.from_values(
        SCHEMA, [("Mary", "R&D", 40), ("John", "PR", 30)]
    )


class TestCsv:
    def test_round_trip_text(self):
        instance = sample_instance()
        text = instance_to_csv_text(instance)
        again = read_instance_csv_text(text, "Mgr")
        assert again == instance

    def test_round_trip_file(self, tmp_path):
        instance = sample_instance()
        path = tmp_path / "mgr.csv"
        write_instance_csv(instance, path)
        assert read_instance_csv(path, "Mgr") == instance

    def test_relation_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "Mgr.csv"
        write_instance_csv(sample_instance(), path)
        assert read_instance_csv(path).schema.name == "Mgr"

    def test_type_inference_without_suffix(self):
        text = "Name,Salary\nMary,40\nJohn,30\n"
        instance = read_instance_csv_text(text, "Emp")
        assert instance.schema.type_of("Salary") is AttributeType.NUMBER
        assert instance.schema.type_of("Name") is AttributeType.NAME

    def test_mixed_column_stays_name(self):
        text = "A\n1\nx\n"
        instance = read_instance_csv_text(text, "R")
        assert instance.schema.type_of("A") is AttributeType.NAME

    def test_explicit_schema_header_check(self):
        with pytest.raises(SchemaError):
            read_instance_csv_text("X,Y\n1,2\n", "Mgr", SCHEMA)

    def test_empty_input_rejected(self):
        with pytest.raises(SchemaError):
            read_instance_csv_text("", "R")

    def test_bad_record_arity(self):
        with pytest.raises(SchemaError):
            read_instance_csv_text("A,B\n1\n", "R")


class TestSqlite:
    def test_round_trip_file(self, tmp_path):
        instance = sample_instance()
        path = tmp_path / "db.sqlite"
        save_instance(instance, path)
        assert load_instance(path, "Mgr") == instance

    def test_round_trip_preserves_types_when_empty(self, tmp_path):
        empty = RelationInstance(SCHEMA)
        path = tmp_path / "db.sqlite"
        save_instance(empty, path)
        loaded = load_instance(path, "Mgr")
        assert loaded.schema == SCHEMA

    def test_unknown_relation(self, tmp_path):
        path = tmp_path / "db.sqlite"
        save_instance(sample_instance(), path)
        with pytest.raises(UnknownRelationError):
            load_instance(path, "Nope")

    def test_database_round_trip(self, tmp_path):
        other = RelationSchema("Dept", ["Dept", "Budget:number"])
        db = Database(
            [
                sample_instance(),
                RelationInstance.from_values(other, [("R&D", 100)]),
            ]
        )
        path = tmp_path / "db.sqlite"
        save_database(db, path)
        assert load_database(path) == db

    def test_load_foreign_table_via_pragma(self, tmp_path):
        path = tmp_path / "db.sqlite"
        with sqlite3.connect(path) as connection:
            connection.execute("CREATE TABLE T (X TEXT NOT NULL, N INTEGER NOT NULL)")
            connection.execute("INSERT INTO T VALUES ('a', 1)")
        instance = load_instance(str(path), "T")
        assert instance.schema.type_of("N") is AttributeType.NUMBER
        assert len(instance) == 1

    def test_save_replaces_existing_table(self, tmp_path):
        path = tmp_path / "db.sqlite"
        save_instance(sample_instance(), path)
        smaller = RelationInstance.from_values(SCHEMA, [("Solo", "IT", 1)])
        save_instance(smaller, path)
        assert load_instance(path, "Mgr") == smaller


def _dept_instance():
    schema = RelationSchema("Dept", ["Dept", "Budget:number"])
    return RelationInstance.from_values(schema, [("R&D", 100)])


class TestSqliteSchemaSync:
    def test_resave_drops_removed_relations(self, tmp_path):
        """save -> delete relation -> save -> load loads cleanly."""
        path = tmp_path / "db.sqlite"
        save_database(Database([sample_instance(), _dept_instance()]), path)
        shrunk = Database([sample_instance()])
        save_database(shrunk, path)
        assert load_database(path) == shrunk

    def test_resave_purges_stale_table_and_metadata(self, tmp_path):
        path = tmp_path / "db.sqlite"
        save_database(Database([sample_instance(), _dept_instance()]), path)
        save_database(Database([sample_instance()]), path)
        with pytest.raises(UnknownRelationError):
            load_instance(path, "Dept")
        with sqlite3.connect(path) as connection:
            cursor = connection.execute(
                "SELECT 1 FROM sqlite_master WHERE name = 'Dept'"
            )
            assert cursor.fetchone() is None

    def test_recorded_relation_with_missing_table(self, tmp_path):
        """Stale metadata surfaces as UnknownRelationError, not a raw
        sqlite3.OperationalError."""
        path = tmp_path / "db.sqlite"
        save_instance(sample_instance(), path)
        with sqlite3.connect(path) as connection:
            connection.execute('DROP TABLE "Mgr"')
        with pytest.raises(UnknownRelationError):
            load_instance(path, "Mgr")

    def test_load_schema_lists_recorded_relations(self, tmp_path):
        path = tmp_path / "db.sqlite"
        db = Database([sample_instance(), _dept_instance()])
        save_database(db, path)
        schema = load_schema(path)
        assert set(schema.relation_names) == {"Mgr", "Dept"}
        assert schema.relation("Mgr") == SCHEMA

    def test_load_schema_can_include_foreign_tables(self, tmp_path):
        path = tmp_path / "db.sqlite"
        with sqlite3.connect(path) as connection:
            connection.execute("CREATE TABLE T (X TEXT NOT NULL, N INTEGER NOT NULL)")
        schema = load_schema(path, ["T"])
        assert schema.relation("T").type_of("N") is AttributeType.NUMBER


class TestSqliteCatalogTypes:
    def _external(self, path, declaration):
        with sqlite3.connect(path) as connection:
            connection.execute(f"CREATE TABLE T (X TEXT NOT NULL, Y {declaration})")
        return path

    def test_numeric_affinity_loads_as_number(self, tmp_path):
        path = self._external(tmp_path / "db.sqlite", "NUMERIC NOT NULL")
        with sqlite3.connect(path) as connection:
            connection.execute("INSERT INTO T VALUES ('a', 3)")
        instance = load_instance(path, "T")
        assert instance.schema.type_of("Y") is AttributeType.NUMBER
        assert len(instance) == 1

    def test_varchar_loads_as_name(self, tmp_path):
        path = self._external(tmp_path / "db.sqlite", "VARCHAR(30) NOT NULL")
        assert load_instance(path, "T").schema.type_of("Y") is AttributeType.NAME

    def test_real_column_rejected(self, tmp_path):
        path = self._external(tmp_path / "db.sqlite", "REAL NOT NULL")
        with pytest.raises(SchemaError, match="floating-point"):
            load_instance(path, "T")

    def test_blob_column_rejected(self, tmp_path):
        path = self._external(tmp_path / "db.sqlite", "BLOB")
        with pytest.raises(SchemaError, match="BLOB"):
            load_instance(path, "T")

    def test_typeless_column_rejected(self, tmp_path):
        path = tmp_path / "db.sqlite"
        with sqlite3.connect(path) as connection:
            connection.execute("CREATE TABLE T (X TEXT NOT NULL, Y)")
        with pytest.raises(SchemaError, match="no declared"):
            load_instance(path, "T")


class TestFdIndexes:
    FDS = [FunctionalDependency.parse("Name -> Dept, Salary", "Mgr")]

    def _index_names(self, path):
        with sqlite3.connect(path) as connection:
            cursor = connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index'"
            )
            return {record[0] for record in cursor.fetchall()}

    def test_save_instance_creates_covering_index(self, tmp_path):
        path = tmp_path / "db.sqlite"
        save_instance(sample_instance(), path, self.FDS)
        assert "_repro_idx_Mgr_Name_Dept_Salary" in self._index_names(path)

    def test_save_database_creates_indexes(self, tmp_path):
        path = tmp_path / "db.sqlite"
        save_database(Database([sample_instance()]), path, self.FDS)
        assert any(
            name.startswith("_repro_idx_Mgr") for name in self._index_names(path)
        )

    def test_ensure_fd_indexes_is_idempotent(self, tmp_path):
        path = tmp_path / "db.sqlite"
        save_instance(sample_instance(), path)
        schema = load_schema(path)
        first = ensure_fd_indexes(path, schema, self.FDS)
        second = ensure_fd_indexes(path, schema, self.FDS)
        assert first == second
        assert "_repro_idx_Mgr_Name_Dept_Salary" in self._index_names(path)

    def test_indexes_skip_inapplicable_dependencies(self, tmp_path):
        path = tmp_path / "db.sqlite"
        other = [FunctionalDependency.parse("Dept -> Budget", "Dept")]
        save_instance(sample_instance(), path, other)
        assert not {
            name
            for name in self._index_names(path)
            if name.startswith("_repro_idx_")
        }
