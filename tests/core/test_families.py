"""Unit and property tests for the L/S/G/C families and their checkers."""

import pytest
from hypothesis import given, settings

from repro.core.families import (
    Family,
    family_chain,
    is_preferred_repair,
    preferred_repairs,
    preferred_repairs_of_instance,
)
from repro.datagen.paper_instances import (
    example7_scenario,
    example8_scenario,
    example9_reconstructed,
    mgr_scenario,
)
from repro.repairs.enumerate import enumerate_repairs
from tests.conftest import two_fd_priorities


class TestPaperFamilies:
    def test_example7(self):
        scenario = example7_scenario()
        chain = family_chain(scenario.priority)
        only_ta = [scenario.row_set("ta")]
        assert chain[Family.LOCAL] == only_ta
        assert chain[Family.SEMI_GLOBAL] == only_ta
        assert chain[Family.GLOBAL] == only_ta
        assert chain[Family.COMMON] == only_ta
        assert len(chain[Family.REP]) == 3

    def test_example8(self):
        scenario = example8_scenario()
        chain = family_chain(scenario.priority)
        assert set(chain[Family.LOCAL]) == {
            scenario.row_set("ta", "tb"),
            scenario.row_set("tc"),
        }
        assert chain[Family.SEMI_GLOBAL] == [scenario.row_set("tc")]
        assert chain[Family.GLOBAL] == [scenario.row_set("tc")]
        assert chain[Family.COMMON] == [scenario.row_set("tc")]

    def test_example9_reconstructed(self):
        scenario = example9_reconstructed()
        chain = family_chain(scenario.priority)
        r1 = scenario.row_set("ta", "tc", "te")
        r2 = scenario.row_set("tb", "td")
        assert set(chain[Family.REP]) == {r1, r2}
        assert set(chain[Family.SEMI_GLOBAL]) == {r1, r2}  # non-categorical
        assert chain[Family.GLOBAL] == [r1]
        assert chain[Family.COMMON] == [r1]

    def test_mgr_preferred_repairs(self):
        scenario = mgr_scenario()
        expected = {
            scenario.row_set("mary_rd", "john_pr"),
            scenario.row_set("john_rd", "mary_it"),
        }
        for family in (Family.LOCAL, Family.SEMI_GLOBAL, Family.GLOBAL, Family.COMMON):
            assert set(preferred_repairs(family, scenario.priority)) == expected


class TestContainmentChain:
    @given(two_fd_priorities())
    @settings(max_examples=60, deadline=None)
    def test_c_subset_g_subset_s_subset_l_subset_rep(self, data):
        """Propositions 3, 4, 6: C ⊆ G ⊆ S ⊆ L ⊆ Rep."""
        _, priority = data
        chain = family_chain(priority)
        c = set(chain[Family.COMMON])
        g = set(chain[Family.GLOBAL])
        s = set(chain[Family.SEMI_GLOBAL])
        l = set(chain[Family.LOCAL])
        rep = set(chain[Family.REP])
        assert c <= g <= s <= l <= rep

    @given(two_fd_priorities())
    @settings(max_examples=60, deadline=None)
    def test_all_families_nonempty(self, data):
        """P1 for every family (C-Rep nonempty ⟹ all supersets too)."""
        _, priority = data
        chain = family_chain(priority)
        for family, repairs in chain.items():
            assert repairs, f"{family} empty"


class TestMembershipCheckers:
    @given(two_fd_priorities(max_tuples=6))
    @settings(max_examples=40, deadline=None)
    def test_checkers_agree_with_enumerators(self, data):
        """X-repair checking (Section 4.1) matches X-Rep membership."""
        _, priority = data
        pool = list(enumerate_repairs(priority.graph))
        chain = family_chain(priority, pool)
        for family in Family:
            selected = set(chain[family])
            for repair in pool:
                assert is_preferred_repair(family, repair, priority, pool) == (
                    repair in selected
                ), f"{family} disagreed"

    def test_checkers_reject_non_repairs(self):
        scenario = mgr_scenario()
        not_a_repair = scenario.row_set("mary_rd")
        for family in Family:
            assert not is_preferred_repair(family, not_a_repair, scenario.priority)


class TestConvenienceApi:
    def test_preferred_repairs_of_instance(self):
        scenario = mgr_scenario()
        repairs = preferred_repairs_of_instance(
            Family.GLOBAL,
            scenario.instance,
            scenario.dependencies,
            list(scenario.priority.edges),
        )
        assert set(repairs) == {
            scenario.row_set("mary_rd", "john_pr"),
            scenario.row_set("john_rd", "mary_it"),
        }

    def test_family_str(self):
        assert str(Family.GLOBAL) == "G-Rep"
        assert str(Family.REP) == "Rep"
