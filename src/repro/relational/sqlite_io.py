"""SQLite persistence for relation instances and databases.

Uses only the standard-library :mod:`sqlite3` driver.  Each relation is
stored as a table whose columns mirror the schema (NAME attributes become
``TEXT``, NUMBER attributes become ``INTEGER``), plus a companion
``_repro_schema`` table recording declared attribute types so that
round-trips preserve domains exactly even for empty instances.

:func:`save_database` keeps the companion table *synchronized*: relations
that were dropped from the :class:`Database` since the last save have
their tables and schema records removed, so a later
:func:`load_database` never chases a stale entry.  Passing the
functional-dependency set to the save functions additionally creates
covering indexes on each dependency's attributes — the access paths the
SQL certain-answer backend (:mod:`repro.backend`) relies on.

Connections are always used through context managers and queries are
parameterized — never string-interpolated — per standard database-code
hygiene.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.constraints.fd import FunctionalDependency
from repro.exceptions import SchemaError, UnknownRelationError
from repro.relational.domain import AttributeType
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema

_SCHEMA_TABLE = "_repro_schema"

_SQL_TYPES = {
    AttributeType.NAME: "TEXT",
    AttributeType.NUMBER: "INTEGER",
}

#: Declared-type fragments mapping to SQLite affinities we can load.
#: Mirrors the affinity rules of the SQLite datatype documentation:
#: INT* -> INTEGER, CHAR/CLOB/TEXT -> TEXT, REAL/FLOA/DOUB -> REAL.
_TEXT_AFFINITY_MARKS = ("CHAR", "CLOB", "TEXT")
_REAL_AFFINITY_MARKS = ("REAL", "FLOA", "DOUB")


def quote_identifier(name: str) -> str:
    """Quote an identifier; names are validated by the schema layer."""
    return '"' + name.replace('"', '""') + '"'


# Backwards-compatible private alias used throughout this module.
_quote_ident = quote_identifier


def _ensure_schema_table(connection: sqlite3.Connection) -> None:
    connection.execute(
        f"CREATE TABLE IF NOT EXISTS {_SCHEMA_TABLE} ("
        "relation TEXT NOT NULL, position INTEGER NOT NULL, "
        "attribute TEXT NOT NULL, type TEXT NOT NULL, "
        "PRIMARY KEY (relation, position))"
    )


def _table_exists(connection: sqlite3.Connection, name: str) -> bool:
    cursor = connection.execute(
        "SELECT 1 FROM sqlite_master WHERE type IN ('table', 'view') AND name = ?",
        (name,),
    )
    return cursor.fetchone() is not None


def _recorded_relations(connection: sqlite3.Connection) -> List[str]:
    cursor = connection.execute(
        f"SELECT DISTINCT relation FROM {_SCHEMA_TABLE} ORDER BY relation"
    )
    return [record[0] for record in cursor.fetchall()]


def save_instance(
    instance: RelationInstance,
    target: Union[str, Path, sqlite3.Connection],
    dependencies: Sequence[FunctionalDependency] = (),
) -> None:
    """Store ``instance`` into a SQLite database file or open connection.

    Any existing table of the same name is replaced.  When
    ``dependencies`` are given, covering indexes are created for each
    dependency applying to this relation (see :func:`ensure_fd_indexes`).
    """
    own = not isinstance(target, sqlite3.Connection)
    connection = sqlite3.connect(target) if own else target
    try:
        with connection:
            _ensure_schema_table(connection)
            name = instance.schema.name
            connection.execute(f"DROP TABLE IF EXISTS {_quote_ident(name)}")
            columns = ", ".join(
                f"{_quote_ident(attr.name)} {_SQL_TYPES[attr.type]} NOT NULL"
                for attr in instance.schema.attributes
            )
            connection.execute(f"CREATE TABLE {_quote_ident(name)} ({columns})")
            connection.execute(
                f"DELETE FROM {_SCHEMA_TABLE} WHERE relation = ?", (name,)
            )
            connection.executemany(
                f"INSERT INTO {_SCHEMA_TABLE} VALUES (?, ?, ?, ?)",
                [
                    (name, pos, attr.name, attr.type.value)
                    for pos, attr in enumerate(instance.schema.attributes)
                ],
            )
            placeholders = ", ".join("?" for _ in instance.schema.attributes)
            connection.executemany(
                f"INSERT INTO {_quote_ident(name)} VALUES ({placeholders})",
                [row.values for row in instance.sorted()],
            )
        if dependencies:
            ensure_fd_indexes(
                connection, DatabaseSchema([instance.schema]), dependencies
            )
    finally:
        if own:
            connection.close()


def load_instance(
    source: Union[str, Path, sqlite3.Connection], relation_name: str
) -> RelationInstance:
    """Load one relation instance from a SQLite database."""
    own = not isinstance(source, sqlite3.Connection)
    connection = sqlite3.connect(source) if own else source
    try:
        schema = _load_schema(connection, relation_name)
        if not _table_exists(connection, relation_name):
            raise UnknownRelationError(
                f"relation {relation_name!r} is recorded in {_SCHEMA_TABLE} "
                "but its table is missing; re-save the database to repair "
                "the metadata"
            )
        cursor = connection.execute(f"SELECT * FROM {_quote_ident(relation_name)}")
        loaded_columns = [description[0] for description in cursor.description]
        if tuple(loaded_columns) != schema.attribute_names:
            raise SchemaError(
                f"table columns {loaded_columns} do not match recorded schema "
                f"{schema.attribute_names}"
            )
        return RelationInstance.from_values(schema, cursor.fetchall())
    finally:
        if own:
            connection.close()


def _attribute_type_from_declared(
    declared: str, relation_name: str, attribute: str
) -> AttributeType:
    """Map a declared SQLite column type to a repro attribute domain.

    Follows SQLite's affinity rules: INTEGER affinity and NUMERIC
    affinity (which stores integers losslessly) load as NUMBER, TEXT
    affinity loads as NAME.  REAL affinity, BLOB, and typeless columns
    have no counterpart in the paper's name/natural domains and are
    rejected loudly instead of mis-loading as names.
    """
    upper = declared.strip().upper()
    if not upper:
        raise SchemaError(
            f"column {attribute!r} of table {relation_name!r} has no declared "
            "type (BLOB affinity); declare TEXT or INTEGER to load it"
        )
    if "INT" in upper:
        return AttributeType.NUMBER
    if any(mark in upper for mark in _TEXT_AFFINITY_MARKS):
        return AttributeType.NAME
    if "BLOB" in upper:
        raise SchemaError(
            f"column {attribute!r} of table {relation_name!r} is declared "
            f"{declared!r}; BLOB columns are unsupported"
        )
    if any(mark in upper for mark in _REAL_AFFINITY_MARKS):
        raise SchemaError(
            f"column {attribute!r} of table {relation_name!r} is declared "
            f"{declared!r}; floating-point columns have no natural-number "
            "counterpart"
        )
    # Remaining declarations (NUMERIC, DECIMAL, BOOLEAN, ...) carry
    # NUMERIC affinity: integers round-trip exactly, and non-integer
    # contents fail value validation with a targeted error at load.
    return AttributeType.NUMBER


def _load_schema(connection: sqlite3.Connection, relation_name: str) -> RelationSchema:
    _ensure_schema_table(connection)
    cursor = connection.execute(
        f"SELECT attribute, type FROM {_SCHEMA_TABLE} "
        "WHERE relation = ? ORDER BY position",
        (relation_name,),
    )
    records = cursor.fetchall()
    if records:
        return RelationSchema(
            relation_name,
            [Attribute(attr, AttributeType(type_text)) for attr, type_text in records],
        )
    # Fall back to SQLite's own catalog for tables created outside repro.
    cursor = connection.execute(
        "SELECT name, type FROM pragma_table_info(?) ORDER BY cid", (relation_name,)
    )
    records = cursor.fetchall()
    if not records:
        raise UnknownRelationError(
            f"no table {relation_name!r} in the SQLite database"
        )
    attributes = [
        Attribute(attr, _attribute_type_from_declared(sql_type, relation_name, attr))
        for attr, sql_type in records
    ]
    return RelationSchema(relation_name, attributes)


def load_schema(
    source: Union[str, Path, sqlite3.Connection],
    relation_names: Optional[Iterable[str]] = None,
) -> DatabaseSchema:
    """The :class:`DatabaseSchema` stored in a SQLite database.

    Without ``relation_names``, covers every relation recorded in the
    companion schema table; pass names explicitly to include tables
    created outside repro (their schemas come from the SQLite catalog).
    """
    own = not isinstance(source, sqlite3.Connection)
    connection = sqlite3.connect(source) if own else source
    try:
        if relation_names is None:
            _ensure_schema_table(connection)
            relation_names = _recorded_relations(connection)
        return DatabaseSchema(
            _load_schema(connection, name) for name in relation_names
        )
    finally:
        if own:
            connection.close()


def save_database(
    database: Database,
    target: Union[str, Path, sqlite3.Connection],
    dependencies: Sequence[FunctionalDependency] = (),
) -> None:
    """Store every relation of ``database`` (see :func:`save_instance`).

    The companion schema table is synchronized: relations recorded by a
    previous save but no longer present in ``database`` are dropped
    together with their metadata, so the file always mirrors exactly the
    database that was last saved.
    """
    own = not isinstance(target, sqlite3.Connection)
    connection = sqlite3.connect(target) if own else target
    try:
        kept = {instance.schema.name for instance in database}
        with connection:
            _ensure_schema_table(connection)
            for stale in _recorded_relations(connection):
                if stale not in kept:
                    connection.execute(
                        f"DROP TABLE IF EXISTS {_quote_ident(stale)}"
                    )
                    connection.execute(
                        f"DELETE FROM {_SCHEMA_TABLE} WHERE relation = ?", (stale,)
                    )
        for instance in database:
            save_instance(instance, connection, dependencies)
    finally:
        if own:
            connection.close()


def load_database(
    source: Union[str, Path, sqlite3.Connection],
    relation_names: Optional[Iterable[str]] = None,
) -> Database:
    """Load several relations into a :class:`Database`.

    Without ``relation_names``, loads every relation recorded in the
    companion schema table.
    """
    own = not isinstance(source, sqlite3.Connection)
    connection = sqlite3.connect(source) if own else source
    try:
        if relation_names is None:
            _ensure_schema_table(connection)
            relation_names = _recorded_relations(connection)
        instances: List[RelationInstance] = [
            load_instance(connection, name) for name in relation_names
        ]
        return Database(instances)
    finally:
        if own:
            connection.close()


def ensure_fd_indexes(
    target: Union[str, Path, sqlite3.Connection],
    schema: DatabaseSchema,
    dependencies: Sequence[FunctionalDependency],
) -> List[str]:
    """Create one covering index per functional dependency and relation.

    Each index spans the dependency's left-hand side followed by its
    effective right-hand side, so both the group lookup (``LHS``) and
    the class lookup (``LHS`` + ``RHS``) of the certain-answer rewriting
    are index-only scans.  Returns the index names that now exist.
    """
    own = not isinstance(target, sqlite3.Connection)
    connection = sqlite3.connect(target) if own else target
    created: List[str] = []
    try:
        with connection:
            for relation in schema:
                if not _table_exists(connection, relation.name):
                    continue
                for dependency in dependencies:
                    if not dependency.applies_to(relation.name):
                        continue
                    if not all(
                        relation.has_attribute(attr)
                        for attr in dependency.lhs | dependency.rhs
                    ):
                        continue
                    columns = sorted(dependency.lhs) + sorted(
                        dependency.rhs - dependency.lhs
                    )
                    index_name = "_repro_idx_{}_{}".format(
                        relation.name, "_".join(columns)
                    )
                    column_list = ", ".join(
                        _quote_ident(column) for column in columns
                    )
                    connection.execute(
                        f"CREATE INDEX IF NOT EXISTS {_quote_ident(index_name)} "
                        f"ON {_quote_ident(relation.name)} ({column_list})"
                    )
                    created.append(index_name)
        return created
    finally:
        if own:
            connection.close()
