"""Benchmark: indexed index-nested-loop evaluation vs the naive scanner.

Workload (the Fig. 5 "conjunctive queries" column): the paper's
existential self-join

    EXISTS a, b1, b2, c1, c2, d1, d2 .
        R(a, b1, c1, d1) AND R(a, b2, c2, d2) AND b1 != b2

over Figure-4 conflict chains, in three measurements per size:

* **open** — the answer set of the free-``a`` variant (no early exit:
  the full join is enumerated).  Naive evaluation rescans the relation
  per candidate (quadratic); the indexed path probes per-(relation,
  column) hash indexes in the planner's selectivity order.  This is the
  measurement the >=10x acceptance criterion is asserted on.
* **closed** — the boolean query above (early exit allowed on both
  routes).
* **cqa** — end-to-end ``CqaEngine.certain_answers`` on a small chain
  workload, naive vs indexed engine, with the per-repair context cache
  sharing indexes across the streamed repairs.

Answers are asserted identical between the routes at every size.

Run directly (``python benchmarks/bench_evaluator.py``); ``--smoke``
runs a seconds-long correctness-focused configuration for CI, and
``--seed`` shuffles the instance's row order (hash indexes must be
order-insensitive).
"""

from __future__ import annotations

import random
import statistics
import sys
import time
from typing import List

if not __package__:
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks._cli import apply_seed, bench_parser, emit_result

from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.datagen.generators import CHAIN_FDS, chain_instance
from repro.query.evaluator import answers, evaluate
from repro.query.parser import parse_query
from repro.relational.instance import RelationInstance

#: Fig. 5's conjunctive self-join: two tuples share an A-group.
CLOSED = parse_query(
    "EXISTS a, b1, b2, c1, c2, d1, d2 . "
    "R(a, b1, c1, d1) AND R(a, b2, c2, d2) AND b1 != b2"
)

#: Open variant: which A-groups witness the self-join?
OPEN = parse_query(
    "EXISTS b1, b2, c1, c2, d1, d2 . "
    "R(a, b1, c1, d1) AND R(a, b2, c2, d2) AND b1 != b2"
)


def build_instance(length: int, seed: int) -> RelationInstance:
    """A Figure-4 chain with its rows re-inserted in a seeded order."""
    rows = list(chain_instance(length).rows)
    random.Random(seed).shuffle(rows)
    return RelationInstance(rows[0].schema, rows)


def _timed(fn, repeats: int):
    samples, result = [], None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), result


def measure_open(instance, repeats: int):
    naive_s, naive_result = _timed(
        lambda: answers(OPEN, instance, ("a",), naive=True), 1
    )
    indexed_s, indexed_result = _timed(
        lambda: answers(OPEN, instance, ("a",)), repeats
    )
    assert naive_result == indexed_result, "open answers diverged"
    return naive_s, indexed_s, len(indexed_result)


def measure_closed(instance, repeats: int):
    naive_s, naive_result = _timed(
        lambda: evaluate(CLOSED, instance, naive=True), repeats
    )
    indexed_s, indexed_result = _timed(
        lambda: evaluate(CLOSED, instance), repeats
    )
    assert naive_result == indexed_result, "closed verdicts diverged"
    return naive_s, indexed_s, indexed_result


def measure_cqa(length: int):
    """End-to-end certain answers across streamed repairs, both engines."""
    instance = chain_instance(length)
    naive_engine = CqaEngine(instance, CHAIN_FDS, family=Family.REP, naive=True)
    indexed_engine = CqaEngine(instance, CHAIN_FDS, family=Family.REP)
    naive_s, naive_result = _timed(
        lambda: naive_engine.certain_answers(OPEN, ("a",)), 1
    )
    indexed_s, indexed_result = _timed(
        lambda: indexed_engine.certain_answers(OPEN, ("a",)), 1
    )
    assert naive_result.certain == indexed_result.certain
    assert naive_result.possible == indexed_result.possible
    assert naive_result.route == "naive" and indexed_result.route == "indexed"
    return naive_s, indexed_s, indexed_result.repairs_considered


def main(argv=None) -> int:
    parser = bench_parser(__doc__)
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[200, 400, 800],
        help="chain lengths for the single-evaluation sweeps",
    )
    parser.add_argument(
        "--cqa-size",
        type=int,
        default=12,
        help="chain length for the repair-streaming CQA measurement "
        "(0 disables)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="indexed-path timing repeats (median reported)",
    )
    parser.add_argument(
        "--no-assert",
        action="store_true",
        help="report without enforcing the >=10x criterion",
    )
    args = parser.parse_args(argv)
    seed = apply_seed(args)

    if args.smoke:
        args.sizes, args.cqa_size, args.repeats = [80, 160], 8, 2

    print(
        "Fig. 5 conjunctive self-join over Figure-4 chains "
        f"(seed {seed}); naive = scan-based reference evaluator"
    )
    speedups: List[float] = []
    measurements: List[dict] = []
    for length in args.sizes:
        instance = build_instance(length, seed)
        naive_open, indexed_open, answer_count = measure_open(
            instance, args.repeats
        )
        naive_closed, indexed_closed, verdict = measure_closed(
            instance, args.repeats
        )
        speedup = naive_open / indexed_open
        speedups.append(speedup)
        measurements.append(
            {
                "rows": length,
                "naive_open_s": round(naive_open, 6),
                "indexed_open_s": round(indexed_open, 6),
                "speedup": round(speedup, 2),
            }
        )
        print(
            f"[{length:>5} rows] open: naive {naive_open * 1000:8.1f} ms | "
            f"indexed {indexed_open * 1000:6.2f} ms | speedup {speedup:6.1f}x | "
            f"{answer_count} answers || closed: naive "
            f"{naive_closed * 1000:6.2f} ms | indexed {indexed_closed * 1000:5.2f} ms"
        )

    if args.cqa_size:
        naive_s, indexed_s, repairs = measure_cqa(args.cqa_size)
        print(
            f"[cqa, {repairs} repairs] certain answers: naive "
            f"{naive_s * 1000:8.1f} ms | indexed {indexed_s * 1000:6.2f} ms | "
            f"speedup {naive_s / indexed_s:5.1f}x"
        )

    emit_result(
        __file__,
        {
            "measurements": measurements,
            "best_speedup": round(max(speedups), 2) if speedups else None,
        },
    )
    if not args.no_assert and not args.smoke:
        best = max(speedups)
        assert best >= 10, (
            f"best indexed speedup {best:.1f}x below the 10x criterion"
        )
        print(
            f"criterion met: >={best:.0f}x indexed-over-naive speedup on the "
            "Fig. 5 conjunctive workload"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
