"""A thread-safe, near-zero-overhead metrics registry.

The registry holds three metric kinds, each optionally split into a
*labeled family* of children (Prometheus style):

* :class:`Counter` — monotonically increasing totals (queries served,
  cache hits, fallbacks by reason);
* :class:`Gauge` — a value that goes up and down (last fan-out skew,
  live cache entries);
* :class:`Histogram` — fixed-bucket latency distributions with
  cumulative bucket counts and p50/p95/p99 estimates.

Everything is standard library.  All mutation happens under a per-metric
lock, so engines, broker threads, and the HTTP front end record into one
shared registry safely.  When a registry is disabled
(``registry.enabled = False``) every ``inc``/``set``/``observe`` returns
after a single attribute check, so instrumented hot paths pay one branch
— the "near zero when off" guarantee the bench guard
(``benchmarks/bench_obs.py``) pins below 5%.

Exposition: :meth:`MetricsRegistry.render` emits the Prometheus text
format (``text/plain; version=0.0.4``) served by ``GET /metrics``;
:meth:`MetricsRegistry.snapshot` returns the same data as nested dicts
for ``GET /stats`` and the benchmark result files.

The process-wide default registry is :data:`REGISTRY`; engines reach it
through the helpers in :mod:`repro.obs` so isolated registries remain
possible in tests.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 100µs .. 10s, roughly log-spaced.
#: Chosen so the sub-millisecond pushed routes and the multi-second
#: enumeration fallbacks both land in resolvable buckets.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _format_number(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing total (one child of a counter family)."""

    __slots__ = ("_registry", "_lock", "_value")

    def __init__(self, registry: "MetricsRegistry") -> None:
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        # Exposition snapshot: a torn read is impossible for a float
        # attribute swap and staleness is acceptable.
        return self._value  # lint: unguarded-ok


class Gauge:
    """A value that can go up and down (one child of a gauge family)."""

    __slots__ = ("_registry", "_lock", "_value")

    def __init__(self, registry: "MetricsRegistry") -> None:
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        # Same snapshot-read contract as Counter.value.
        return self._value  # lint: unguarded-ok


class Histogram:
    """Fixed-bucket distribution with percentile estimates.

    ``bounds`` are the inclusive upper edges of the finite buckets; an
    implicit ``+Inf`` bucket catches the overflow.  Percentiles are
    estimated by linear interpolation inside the bucket holding the
    requested rank (the Prometheus ``histogram_quantile`` estimator),
    which is exact at bucket edges and bounded by the bucket width in
    between — plenty for latency reporting.
    """

    __slots__ = (
        "_registry", "_lock", "bounds", "_counts", "_sum", "_count",
        "_exemplars",
    )

    def __init__(
        self,
        registry: "MetricsRegistry",
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        ordered = tuple(sorted(float(bound) for bound in bounds))
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        self._registry = registry
        self._lock = threading.Lock()
        self.bounds = ordered
        # +1 below: the +Inf overflow bucket.
        self._counts = [0] * (len(ordered) + 1)  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        #: bucket position -> (trace_id, value): the last recorded trace
        #: whose observation landed in that bucket, so histogram tails
        #: link directly to a retained flight-recorder trace.
        self._exemplars: Dict[int, Tuple[str, float]] = {}  # guarded-by: _lock

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        if not self._registry.enabled:
            return
        position = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[position] += 1
            self._sum += value
            self._count += 1
            if exemplar is not None:
                self._exemplars[position] = (exemplar, value)

    def attach_exemplar(self, value: float, trace_id: str) -> None:
        """Link ``trace_id`` to the bucket ``value`` falls in, without
        counting a new observation (the observation already happened —
        this back-fills the exemplar once a trace is known to be
        retained)."""
        if not self._registry.enabled:
            return
        position = bisect_left(self.bounds, value)
        with self._lock:
            self._exemplars[position] = (trace_id, value)

    def exemplars(self) -> Dict[str, Dict[str, object]]:
        """Per-bucket last-trace exemplars keyed by the bucket's upper
        bound (``"+Inf"`` for the overflow bucket)."""
        with self._lock:
            taken = dict(self._exemplars)
        bounds = self.bounds + (math.inf,)
        return {
            _format_number(bounds[position]): {
                "trace_id": trace_id,
                "value": round(value, 9),
            }
            for position, (trace_id, value) in sorted(taken.items())
        }

    @property
    def count(self) -> int:
        # Snapshot read for exposition; pairs of (count, sum) read this
        # way may be momentarily inconsistent, which render() accepts.
        return self._count  # lint: unguarded-ok

    @property
    def sum(self) -> float:
        return self._sum  # lint: unguarded-ok

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        cumulative = 0
        pairs: List[Tuple[float, int]] = []
        for bound, count in zip(self.bounds + (math.inf,), counts):
            cumulative += count
            pairs.append((bound, cumulative))
        return pairs

    def percentile(self, quantile: float) -> float:
        """Estimated value at ``quantile`` in ``[0, 1]`` (0 when empty).

        Ranks inside a finite bucket interpolate linearly between its
        edges; ranks in the overflow bucket report the largest finite
        bound (there is no upper edge to interpolate toward).
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = quantile * total
        cumulative = 0
        for position, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count:
                if position >= len(self.bounds):
                    return self.bounds[-1]
                upper = self.bounds[position]
                lower = self.bounds[position - 1] if position else 0.0
                fraction = (rank - previous) / count
                return lower + (upper - lower) * fraction
        return self.bounds[-1]  # pragma: no cover - rank <= total always hits


#: What a family constructs per distinct label-value combination.
_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric plus its labeled children.

    With no label names the family has exactly one (anonymous) child and
    the family object itself proxies ``inc``/``set``/``observe`` to it,
    so unlabeled metrics read naturally:
    ``registry.counter("x", "...").inc()``.
    """

    __slots__ = (
        "name", "help", "kind", "label_names", "_registry", "_children",
        "_lock", "_buckets",
    )

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        kind: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = label_names
        self._registry = registry
        self._children: Dict[Tuple[str, ...], object] = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self._buckets = tuple(buckets) if buckets else DEFAULT_LATENCY_BUCKETS

    def labels(self, **labels: object) -> object:
        """The child metric for one label-value combination (created lazily)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        # Double-checked fast path: dict.get on a never-shrinking dict
        # is atomic under the GIL; creation re-checks under the lock.
        child = self._children.get(key)  # lint: unguarded-ok
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if self.kind == "histogram":
                        child = Histogram(self._registry, self._buckets)
                    else:
                        child = _KINDS[self.kind](self._registry)
                    self._children[key] = child
        return child

    def _solo(self) -> object:
        if self.label_names:
            raise ValueError(f"{self.name} is labeled; call .labels() first")
        return self.labels()

    # Unlabeled conveniences -------------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        self._solo().observe(value, exemplar)

    @property
    def value(self) -> float:
        return self._solo().value

    def children(self) -> Mapping[Tuple[str, ...], object]:
        with self._lock:
            return dict(self._children)


class MetricsRegistry:
    """A named collection of metric families with one exposition surface."""

    def __init__(self, enabled: bool = True) -> None:
        #: Master switch: when False every record call is a no-op after
        #: one attribute check.  Flip freely at runtime.
        self.enabled = enabled
        self._families: "Dict[str, MetricFamily]" = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    # Declaration -------------------------------------------------------------

    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        # Double-checked fast path, same contract as MetricFamily.labels.
        family = self._families.get(name)  # lint: unguarded-ok
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(
                        self, name, help_text, kind, tuple(labels), buckets
                    )
                    self._families[name] = family
        if family.kind != kind or family.label_names != tuple(labels):
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} "
                f"with labels {family.label_names}"
            )
        return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, help_text, "counter", labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, help_text, "gauge", labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, help_text, "histogram", labels, buckets)

    def reset(self) -> None:
        """Drop every family (test isolation; exposition starts empty)."""
        with self._lock:
            self._families.clear()

    # Exposition --------------------------------------------------------------

    def render(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            children = sorted(family.children().items())
            if not children:
                continue
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, child in children:
                label_text = _labels_text(family.label_names, key)
                if family.kind == "histogram":
                    assert isinstance(child, Histogram)
                    for bound, cumulative in child.bucket_counts():
                        bucket_labels = _labels_text(
                            family.label_names + ("le",),
                            key + (_format_number(bound),),
                        )
                        lines.append(
                            f"{name}_bucket{bucket_labels} {cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{label_text} "
                        f"{_format_number(child.sum)}"
                    )
                    lines.append(f"{name}_count{label_text} {child.count}")
                else:
                    lines.append(
                        f"{name}{label_text} {_format_number(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, object]:
        """The registry as nested dicts (for ``/stats`` and bench files).

        Counter/gauge children map label tuples (joined with ``,``) to
        values; histogram children map to ``{count, sum, p50, p95,
        p99}``.  Unlabeled metrics use the empty-string key.
        """
        result: Dict[str, object] = {}
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            values: Dict[str, object] = {}
            for key, child in sorted(family.children().items()):
                label = ",".join(key)
                if isinstance(child, Histogram):
                    entry: Dict[str, object] = {
                        "count": child.count,
                        "sum": round(child.sum, 9),
                        "p50": round(child.percentile(0.50), 9),
                        "p95": round(child.percentile(0.95), 9),
                        "p99": round(child.percentile(0.99), 9),
                    }
                    exemplars = child.exemplars()
                    if exemplars:
                        entry["exemplars"] = exemplars
                    values[label] = entry
                else:
                    values[label] = child.value
            if values:
                result[name] = {"type": family.kind, "values": values}
        return result


#: The process-wide default registry every layer records into.
REGISTRY = MetricsRegistry()


def query_histogram(registry: MetricsRegistry = REGISTRY) -> MetricFamily:
    """The shared per-route query latency histogram family.

    Lives here (not in the package ``__init__``) so the flight recorder
    can back-fill exemplars without importing the package facade.
    """
    return registry.histogram(
        "repro_query_seconds",
        "Query latency by chosen route",
        labels=("route",),
    )
