"""Adversarial check: the optimized evaluator vs naive semantics.

The evaluator narrows existential candidates through positive conjuncts
(an index-nested-loop style optimization).  Soundness and completeness
of that narrowing is the kind of property a subtle bug would silently
break, so we cross-check against a brute-force evaluator that expands
every quantifier over the full active domain.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.ast import (
    And,
    Atom,
    Comparison,
    Const,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Var,
    constants_of,
)
from repro.query.evaluator import EvaluationContext, evaluate
from tests.conftest import key_instances

VARS = ("x", "y", "z")


def brute_force(formula: Formula, rows, binding=None):
    """Reference semantics: full active-domain expansion."""
    context = EvaluationContext(rows, constants_of(formula))
    adom = sorted(context.adom, key=repr)
    binding = dict(binding or {})

    def ev(node, env):
        if isinstance(node, Atom):
            values = tuple(
                term.value if isinstance(term, Const) else env[term.name]
                for term in node.terms
            )
            return values in context.tuples_of(node.relation)
        if isinstance(node, Comparison):
            from repro.query.evaluator import _compare, _resolve

            return _compare(
                node.op, _resolve(node.left, env), _resolve(node.right, env)
            )
        if isinstance(node, Not):
            return not ev(node.body, env)
        if isinstance(node, And):
            return all(ev(p, env) for p in node.parts)
        if isinstance(node, Or):
            return any(ev(p, env) for p in node.parts)
        if isinstance(node, Exists):
            def expand(names, env2):
                if not names:
                    return ev(node.body, env2)
                return any(
                    expand(names[1:], {**env2, names[0]: value})
                    for value in adom
                )

            return expand(list(node.variables), env)
        if isinstance(node, Forall):
            def expand(names, env2):
                if not names:
                    return ev(node.body, env2)
                return all(
                    expand(names[1:], {**env2, names[0]: value})
                    for value in adom
                )

            return expand(list(node.variables), env)
        raise TypeError(node)

    return ev(formula, binding)


@st.composite
def quantified_formulas(draw):
    """Small closed formulas with one or two quantifier blocks."""
    def term(allowed_vars):
        return draw(
            st.one_of(
                st.sampled_from([Var(v) for v in allowed_vars]),
                st.builds(Const, st.integers(min_value=0, max_value=2)),
            )
        )

    used = list(draw(st.sets(st.sampled_from(VARS), min_size=1, max_size=2)))
    leaves = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        if draw(st.booleans()):
            leaves.append(Atom("R", [term(used), term(used)]))
        else:
            leaves.append(
                Comparison(
                    draw(st.sampled_from(["=", "!=", "<", ">"])),
                    term(used),
                    term(used),
                )
            )
    body: Formula = leaves[0]
    for leaf in leaves[1:]:
        connective = draw(st.sampled_from(["and", "or"]))
        body = And([body, leaf]) if connective == "and" else Or([body, leaf])
    if draw(st.booleans()):
        body = Not(body)
    quantifier = draw(st.sampled_from([Exists, Forall]))
    return quantifier(used, body)


class TestEvaluatorAgainstBruteForce:
    @given(key_instances(max_tuples=5), quantified_formulas())
    @settings(max_examples=150, deadline=None)
    def test_closed_formulas_agree(self, instance, formula):
        assert evaluate(formula, instance) == brute_force(formula, instance)

    @given(key_instances(max_tuples=5), quantified_formulas())
    @settings(max_examples=100, deadline=None)
    def test_negated_formulas_agree(self, instance, formula):
        negated = Not(formula)
        assert evaluate(negated, instance) == brute_force(negated, instance)

    @given(key_instances(max_tuples=5), quantified_formulas(), quantified_formulas())
    @settings(max_examples=80, deadline=None)
    def test_conjunctions_of_quantified_blocks_agree(self, instance, f1, f2):
        combined = And([f1, f2])
        assert evaluate(combined, instance) == brute_force(combined, instance)
