"""SQL winnow passes, the Algorithm 1 fixpoint, and survivor tables.

Each construct is pinned against its in-memory counterpart: ω≻ against
:func:`repro.priorities.winnow.winnow`, the staged fixpoint's clean
fragment against the intersection of ``C-Rep``, and each family's
survivor table against the rows kept by the family's preferred repairs.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.backend.rewrite import dirty_profile
from repro.constraints.conflict_graph import build_conflict_graph
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family, preferred_repairs
from repro.prefsql.edges import (
    ensure_side_tables,
    materialize_conflicts,
    materialize_edges,
)
from repro.prefsql.winnow import (
    build_survivor_table,
    has_unresolved_group,
    iterate_winnow,
    winnow_pass,
)
from repro.priorities.priority import Priority
from repro.priorities.winnow import winnow
from repro.relational.database import Database
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row
from repro.relational.schema import RelationSchema
from repro.relational.sqlite_io import load_schema, save_database

SCHEMA = RelationSchema("R", ["K", "A:number", "B"])
FDS = [FunctionalDependency.parse("K -> A", "R")]

ROWS = [
    # group k0: three singleton classes, chain priority 1 > 0 > 2
    ("k0", 0, "x"),
    ("k0", 1, "y"),
    ("k0", 2, "z"),
    # group k1: two classes, one of size two, partially oriented
    ("k1", 0, "x"),
    ("k1", 0, "y"),
    ("k1", 5, "w"),
    # clean filler
    ("c0", 9, "q"),
]


def _row(*values) -> Row:
    return Row(SCHEMA, values)


#: (winner, loser) pairs: k0 chain is total, k1 edge is partial —
#: (k1,5,w) beats (k1,0,x) but leaves (k1,0,y) unoriented.
PRIORITY = [
    (_row("k0", 1, "y"), _row("k0", 0, "x")),
    (_row("k0", 0, "x"), _row("k0", 2, "z")),
    (_row("k1", 5, "w"), _row("k1", 0, "x")),
]


def _setup(rows=ROWS, priority=PRIORITY):
    database = Database([RelationInstance.from_values(SCHEMA, rows)])
    connection = sqlite3.connect(":memory:")
    save_database(database, connection, FDS)
    ensure_side_tables(connection)
    profile = dirty_profile(SCHEMA, FDS)
    materialize_conflicts(connection, profile)
    materialize_edges(
        connection, load_schema(connection), FDS, {"R": profile}, priority
    )
    return connection, profile, database


def _rows_of(connection, table):
    sql = (
        'SELECT r."K", r."A", r."B" FROM "R" r '
        f'WHERE r.rowid IN (SELECT row_id FROM "{table}")'
    )
    return {Row(SCHEMA, values) for values in connection.execute(sql)}


class TestWinnowPass:
    def test_matches_in_memory_winnow(self):
        connection, profile, database = _setup()
        table = winnow_pass(connection, profile)
        graph = build_conflict_graph(database, FDS)
        priority = Priority(graph, PRIORITY)
        expected = winnow(priority, graph.vertices)
        assert _rows_of(connection, table) == set(expected)

    def test_pass_over_a_remaining_subset(self):
        connection, profile, _ = _setup()
        connection.execute(
            "CREATE TEMP TABLE _pool AS SELECT rowid AS row_id "
            "FROM \"R\" WHERE \"K\" = 'k0' AND \"A\" != 1"
        )
        # With the dominator (k0,1,y) outside the pool, (k0,0,x) is
        # undominated again and dominates (k0,2,z).
        table = winnow_pass(connection, profile, source="_pool")
        assert _rows_of(connection, table) == {_row("k0", 0, "x")}


class TestIterateWinnow:
    def test_clean_fragment_is_the_intersection_of_common_repairs(self):
        connection, profile, database = _setup()
        fixpoint = iterate_winnow(connection, profile)
        graph = build_conflict_graph(database, FDS)
        priority = Priority(graph, PRIORITY)
        common = preferred_repairs(Family.COMMON, priority)
        certain_core = frozenset.intersection(*common)
        assert _rows_of(connection, fixpoint.committed_table) == set(certain_core)
        # k1 keeps two surviving classes: the fixpoint must report them.
        assert fixpoint.remaining > 0
        assert fixpoint.stages >= 2
        assert len(fixpoint.stage_tables) == fixpoint.stages

    def test_total_priority_resolves_to_the_unique_repair(self):
        total = PRIORITY + [
            (_row("k1", 5, "w"), _row("k1", 0, "y")),
        ]
        connection, profile, database = _setup(priority=total)
        fixpoint = iterate_winnow(connection, profile)
        assert fixpoint.remaining == 0
        graph = build_conflict_graph(database, FDS)
        priority = Priority(graph, total)
        (unique,) = preferred_repairs(Family.COMMON, priority)
        assert _rows_of(connection, fixpoint.committed_table) == set(unique)


class TestSurvivorTables:
    @pytest.mark.parametrize(
        "family",
        [Family.LOCAL, Family.SEMI_GLOBAL, Family.GLOBAL, Family.COMMON],
        ids=lambda family: family.name,
    )
    def test_survivors_are_the_union_of_preferred_repairs(self, family):
        connection, profile, database = _setup()
        graph = build_conflict_graph(database, FDS)
        priority = Priority(graph, PRIORITY)
        expected = frozenset().union(
            *preferred_repairs(family, priority)
        )
        table = build_survivor_table(connection, profile, family)
        assert _rows_of(connection, table) == set(expected)

    def test_unresolved_group_detection(self):
        connection, profile, _ = _setup()
        table = build_survivor_table(connection, profile, Family.COMMON)
        # k1 keeps both classes under the partial priority.
        assert has_unresolved_group(connection, profile, table)
        total = PRIORITY + [(_row("k1", 5, "w"), _row("k1", 0, "y"))]
        connection, profile, _ = _setup(priority=total)
        table = build_survivor_table(connection, profile, Family.COMMON)
        assert not has_unresolved_group(connection, profile, table)

    def test_rep_needs_no_survivor_table(self):
        connection, profile, _ = _setup()
        with pytest.raises(Exception):
            build_survivor_table(connection, profile, Family.REP)
