"""Metrics registry tests: kinds, labels, exposition, thread safety."""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs.registry import DEFAULT_LATENCY_BUCKETS, MetricsRegistry


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCountersAndGauges:
    def test_counter_accumulates(self, registry):
        counter = registry.counter("hits_total", "hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self, registry):
        counter = registry.counter("hits_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 5.0

    def test_labeled_children_are_independent(self, registry):
        family = registry.counter("q_total", "", labels=("route",))
        family.labels(route="sqlite").inc(3)
        family.labels(route="fallback").inc()
        assert family.labels(route="sqlite").value == 3
        assert family.labels(route="fallback").value == 1

    def test_same_name_returns_same_family(self, registry):
        first = registry.counter("q_total", "", labels=("route",))
        second = registry.counter("q_total", "", labels=("route",))
        assert first is second

    def test_label_set_mismatch_raises(self, registry):
        family = registry.counter("q_total", "", labels=("route",))
        with pytest.raises(ValueError):
            family.labels(engine="x")

    def test_kind_mismatch_raises(self, registry):
        registry.counter("thing", "")
        with pytest.raises(ValueError):
            registry.gauge("thing", "")

    def test_unlabeled_proxy_requires_unlabeled_family(self, registry):
        family = registry.counter("q_total", "", labels=("route",))
        with pytest.raises(ValueError):
            family.inc()


class TestDisabledRegistry:
    def test_all_mutations_are_noops(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc()
        registry.gauge("g").set(9)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        assert registry.counter("c").value == 0
        assert registry.gauge("g").value == 0
        assert registry.histogram("h").labels().count == 0

    def test_flip_at_runtime(self, registry):
        counter = registry.counter("c")
        registry.enabled = False
        counter.inc()
        registry.enabled = True
        counter.inc()
        assert counter.value == 1


class TestHistogram:
    def test_bucket_counts_are_cumulative(self, registry):
        histogram = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (1.0, 1.5, 3.0, 10.0):
            histogram.observe(value)
        child = histogram.labels()
        assert child.bucket_counts() == [
            (1.0, 1),
            (2.0, 2),
            (4.0, 3),
            (math.inf, 4),
        ]
        assert child.count == 4
        assert child.sum == 15.5

    def test_percentiles_interpolate_and_clamp(self, registry):
        histogram = registry.histogram("lat", buckets=(1.0, 2.0, 4.0)).labels()
        for value in (1.0, 1.5, 3.0, 10.0):
            histogram.observe(value)
        assert histogram.percentile(0.25) == 1.0
        assert histogram.percentile(0.50) == 2.0
        assert histogram.percentile(0.75) == 4.0
        # Overflow ranks report the largest finite bound.
        assert histogram.percentile(1.0) == 4.0

    def test_midbucket_interpolation(self, registry):
        histogram = registry.histogram("lat", buckets=(10.0,)).labels()
        for _ in range(4):
            histogram.observe(5.0)
        assert histogram.percentile(0.5) == 5.0

    def test_empty_percentile_is_zero(self, registry):
        histogram = registry.histogram("lat").labels()
        assert histogram.percentile(0.99) == 0.0

    def test_quantile_domain_checked(self, registry):
        histogram = registry.histogram("lat").labels()
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_default_buckets_cover_latency_range(self, registry):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(0.0001)
        assert DEFAULT_LATENCY_BUCKETS[-1] == 10.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestExposition:
    def test_render_golden(self, registry):
        registry.counter(
            "repro_queries_total", "Queries answered", labels=("route",)
        ).labels(route="sqlite").inc(3)
        histogram = registry.histogram(
            "repro_query_seconds", "Latency", buckets=(0.25, 1.0)
        )
        histogram.observe(0.25)
        histogram.observe(0.5)
        assert registry.render() == (
            "# HELP repro_queries_total Queries answered\n"
            "# TYPE repro_queries_total counter\n"
            'repro_queries_total{route="sqlite"} 3\n'
            "# HELP repro_query_seconds Latency\n"
            "# TYPE repro_query_seconds histogram\n"
            'repro_query_seconds_bucket{le="0.25"} 1\n'
            'repro_query_seconds_bucket{le="1"} 2\n'
            'repro_query_seconds_bucket{le="+Inf"} 2\n'
            "repro_query_seconds_sum 0.75\n"
            "repro_query_seconds_count 2\n"
        )

    def test_render_empty_registry(self, registry):
        assert registry.render() == ""
        # Declared but never recorded families stay out of exposition.
        registry.counter("quiet_total", "never incremented", labels=("x",))
        assert registry.render() == ""

    def test_label_values_escaped(self, registry):
        registry.counter("c", "", labels=("reason",)).labels(
            reason='say "hi"\nplease'
        ).inc()
        assert 'reason="say \\"hi\\"\\nplease"' in registry.render()

    def test_snapshot_shapes(self, registry):
        registry.counter("c_total", "", labels=("route",)).labels(
            route="sqlite"
        ).inc(2)
        registry.histogram("h_seconds", "", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["c_total"] == {
            "type": "counter",
            "values": {"sqlite": 2.0},
        }
        histogram = snapshot["h_seconds"]["values"][""]
        assert histogram["count"] == 1
        assert histogram["sum"] == 0.5
        assert histogram["p50"] == 0.5

    def test_reset_drops_families(self, registry):
        registry.counter("c").inc()
        registry.reset()
        assert registry.render() == ""
        assert registry.snapshot() == {}


class TestThreadSafety:
    def test_two_thread_stress(self, registry):
        """Rendezvous two writer threads on one family; totals stay exact."""
        counter = registry.counter("c_total", "", labels=("side",))
        histogram = registry.histogram("h_seconds", "", buckets=(1.0,))
        rounds = 5000
        barrier = threading.Barrier(2, timeout=5)
        errors = []

        def hammer(side: str) -> None:
            try:
                barrier.wait()
                child = counter.labels(side=side)
                for _ in range(rounds):
                    child.inc()
                    histogram.observe(0.5)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(side,))
            for side in ("left", "right")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert counter.labels(side="left").value == rounds
        assert counter.labels(side="right").value == rounds
        assert histogram.labels().count == 2 * rounds
        assert histogram.labels().bucket_counts()[-1] == (math.inf, 2 * rounds)

    def test_concurrent_child_creation(self, registry):
        """Two threads racing to create distinct children lose no updates."""
        family = registry.counter("c_total", "", labels=("k",))
        barrier = threading.Barrier(2, timeout=5)

        def create(start: int) -> None:
            barrier.wait()
            for index in range(start, start + 200):
                family.labels(k=index % 20).inc()

        threads = [
            threading.Thread(target=create, args=(base,)) for base in (0, 200)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        total = sum(child.value for child in family.children().values())
        assert total == 400
        assert len(family.children()) == 20
