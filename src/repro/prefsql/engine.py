"""The preference-aware SQLite-pushed certain-answer engine.

:class:`PrefSqlCqaEngine` answers queries over a *prioritized*
SQLite-persisted database with the same surface as
:class:`~repro.backend.engine.SqlCqaEngine` — ``answer()``,
``certain_answers()``, ``sql_certain_answers()``, ``explain()``,
``last_route`` — but does not fall back just because a priority is
declared.  Instead it materializes the oriented dominance edges into
side tables (:mod:`repro.prefsql.edges`), derives the per-family
survivor tables of the winnow selection (:mod:`repro.prefsql.winnow`),
and composes them with the backend's NOT-EXISTS rewriting: an answer
is certain iff some preferred witness row's group is certified by
*every preferred class*, and possible iff some preferred class holds a
witness.  Both conditions are single SQL statements.

Routing of the last call, via :attr:`last_route`:

``"prefsql"``
    The query mentioned a prioritized relation and was pushed with the
    preference-aware plan (for ``Family.REP`` the preferences are
    ignored by definition — winnow over the repair family keeps
    everything — and the plain plan runs under the same label).
``"sqlite"``
    The query was pushed but mentioned no prioritized relation, so the
    preference-blind plan sufficed (clean relations, or dirty
    relations whose conflicts carry no orientation).
``"fallback: <reason>"``
    Outside the pushdown fragment.  The shapes that still stream
    repairs in memory: non-conjunctive bodies (disjunction, negation,
    universal quantification), unsafe variables, self-joins of or
    joins between dirty relations, relations whose FDs have differing
    left-hand sides (no per-group class structure — this includes any
    priority declared over such a relation), and prioritized relations
    stored with duplicate physical rows.

Cyclic declared priorities and edges over non-conflicting or absent
tuples raise at construction, exactly like the in-memory engine.

Pushed answers report ``repairs_considered`` as 0 — no repair is ever
materialized, which is the point.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple, Union

from repro.analysis.model import make_diagnostic
from repro.backend.rewrite import (
    DirtyProfile,
    NotRewritable,
    RewriteDecision,
    analyze_query,
    dirty_profile,
)
from repro.constraints.fd import FunctionalDependency
from repro.core.families import Family
from repro.cqa.answers import ClosedAnswer, OpenAnswers, Verdict
from repro.cqa.engine import CqaEngine
from repro.exceptions import CyclicPriorityError, QueryError
from repro.obs import annotate, observe_query
from repro.obs import span as obs_span
from repro.prefsql.edges import materialize_conflicts, materialize_edges
from repro.prefsql.winnow import (
    build_survivor_table,
    has_unresolved_group,
    iterate_winnow,
)
from repro.priorities.priority import (
    Priority,
    PriorityEdge,
    digraph_has_cycle,
)
from repro.query.ast import Formula, relations_of
from repro.query.parser import parse_query
from repro.query.sql import sql_to_formula
from repro.query.validate import check_against_schema
from repro.relational.sqlite_io import load_database, load_schema


class PrefSqlCqaEngine:
    """Certain-answer engine over a prioritized SQLite database.

    ``source`` is a database file path or an open connection;
    ``priority`` accepts ``(winner, loser)`` row pairs or a
    :class:`~repro.priorities.priority.Priority` (whose dominator index
    is exported through ``dominance_rows()``).  ``relation_names``
    widens the visible schema like :class:`SqlCqaEngine` does.
    """

    def __init__(
        self,
        source: Union[str, Path, sqlite3.Connection],
        dependencies: Sequence[FunctionalDependency],
        priority: Union[Priority, Iterable[PriorityEdge], None] = (),
        family: Family = Family.REP,
        relation_names: Optional[Iterable[str]] = None,
    ) -> None:
        self._own = not isinstance(source, sqlite3.Connection)
        self._connection = sqlite3.connect(source) if self._own else source
        self.dependencies = tuple(dependencies)
        self.family = family
        if isinstance(priority, Priority):
            self.priority_edges: Tuple[PriorityEdge, ...] = (
                priority.dominance_rows()
            )
        else:
            self.priority_edges = tuple(priority or ())
        self._relation_names = tuple(relation_names) if relation_names else None
        self.schema = load_schema(self._connection, self._relation_names)
        self._profiles: Dict[str, DirtyProfile] = {}
        for relation in self.schema:
            try:
                profile = dirty_profile(relation, self.dependencies)
            except NotRewritable:
                continue  # differing FD LHSs: analyze_query rejects uses
            if profile is not None:
                self._profiles[relation.name] = profile
        # Validation happens eagerly (like CqaEngine's Priority
        # construction); only edges over profiled relations are
        # materialized — the rest cannot be pushed anyway.
        if self.priority_edges:
            self._edge_counts = materialize_edges(
                self._connection,
                self.schema,
                self.dependencies,
                self._profiles,
                self.priority_edges,
            )
        else:
            self._edge_counts = {}
        self._blocked: Dict[str, str] = {}
        for name in self._edge_counts:
            reason = self._duplicate_rows_reason(name)
            if reason is not None:
                self._blocked[name] = reason
        #: (relation, family) -> (survivor table, fully resolved).
        self._survivors: Dict[Tuple[str, Family], Tuple[str, bool]] = {}
        self._conflicts_materialized: Set[str] = set()
        # Bounded LRU: the broker keeps one engine alive per database
        # for the process lifetime, so an unbounded per-query decision
        # memo would grow with client traffic.
        self._decisions: "OrderedDict[Tuple[Formula, Optional[Tuple[str, ...]], Family], RewriteDecision]" = (
            OrderedDict()
        )
        self._max_decisions = 1024
        self._fallback_engine: Optional[CqaEngine] = None
        # The broker serves read-only queries concurrently; survivor
        # and decision construction is the only mutating stage.
        self._lock = threading.RLock()
        #: Routing of the most recent call: ``"prefsql"``, ``"sqlite"``
        #: or ``"fallback: <reason>"``.
        self.last_route: Optional[str] = None

    # Lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Close the connection (no-op when one was passed in)."""
        if self._own:
            self._connection.close()

    def __enter__(self) -> "PrefSqlCqaEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # Priority maintenance ----------------------------------------------------

    def extend_priority(
        self, additional: Iterable[PriorityEdge]
    ) -> None:
        """Incrementally orient further conflict edges (``Φ ⊆ Ψ``).

        The incremental-maintenance path for a long-lived mirror: newly
        declared edges are validated against the *combined* digraph
        (acyclicity) and appended to the ``_repro_edges`` side table
        row by row — no re-derivation of the existing orientation.
        Survivor tables and cached decisions are preference-dependent,
        so they are dropped; conflict materializations depend on the
        data only and survive.
        """
        extra = tuple(additional)
        if not extra:
            return
        with self._lock:
            combined = self.priority_edges + extra
            if digraph_has_cycle(combined):
                raise CyclicPriorityError(
                    "extending the priority creates a cycle"
                )
            counts = materialize_edges(
                self._connection,
                self.schema,
                self.dependencies,
                self._profiles,
                extra,
                append=True,
            )
            self.priority_edges = combined
            for name, count in counts.items():
                self._edge_counts[name] = (
                    self._edge_counts.get(name, 0) + count
                )
                if name not in self._blocked:
                    reason = self._duplicate_rows_reason(name)
                    if reason is not None:
                        self._blocked[name] = reason
            self._survivors.clear()
            self._decisions.clear()
            self._fallback_engine = None

    # Survivor management -----------------------------------------------------

    def _duplicate_rows_reason(self, relation: str) -> Optional[str]:
        """Priority edges bind to rowids; duplicate physical rows would
        leave one copy unaccounted for, so such relations fall back."""
        from repro.relational.sqlite_io import quote_identifier

        table = quote_identifier(relation)
        total = self._connection.execute(
            f"SELECT COUNT(*) FROM {table}"
        ).fetchone()[0]
        distinct = self._connection.execute(
            f"SELECT COUNT(*) FROM (SELECT DISTINCT * FROM {table})"
        ).fetchone()[0]
        if total != distinct:
            # Rendered through the diagnostic catalog so the reason
            # string (a metric label) has exactly one definition.
            return make_diagnostic("RA303", relation=relation).message
        return None

    def _survivors_for(self, relation: str, family: Family) -> Tuple[str, bool]:
        key = (relation, family)
        cached = self._survivors.get(key)
        if cached is not None:
            return cached
        profile = self._profiles[relation]
        if family is Family.COMMON:
            # The staged Algorithm 1 fixpoint doubles as the survivor
            # computation when it fully resolves the relation: the
            # committed clean fragment *is* the unique common repair.
            if relation not in self._conflicts_materialized:
                materialize_conflicts(self._connection, profile)
                self._conflicts_materialized.add(relation)
            fixpoint = iterate_winnow(self._connection, profile)
            if fixpoint.remaining == 0:
                result = (fixpoint.committed_table, True)
            else:
                table = build_survivor_table(self._connection, profile, family)
                result = (table, False)
        else:
            table = build_survivor_table(self._connection, profile, family)
            result = (
                table,
                not has_unresolved_group(self._connection, profile, table),
            )
        self._survivors[key] = result
        return result

    # Routing -----------------------------------------------------------------

    def _to_formula(self, query: Union[str, Formula]) -> Formula:
        with obs_span("parse"):
            formula = parse_query(query) if isinstance(query, str) else query
            return check_against_schema(formula, self.schema)

    def explain(
        self,
        query: Union[str, Formula],
        variables: Optional[Sequence[str]] = None,
        family: Optional[Family] = None,
    ) -> RewriteDecision:
        """The routing decision for ``query``, without executing it."""
        formula = self._to_formula(query)
        return self._decide(formula, variables, family or self.family)

    def _decide(
        self,
        formula: Formula,
        variables: Optional[Sequence[str]],
        family: Family,
    ) -> RewriteDecision:
        key = (
            formula,
            tuple(variables) if variables is not None else None,
            family,
        )
        with self._lock:
            decision = self._decisions.get(key)
            if decision is None:
                decision = self._analyze(formula, variables, family)
                if len(self._decisions) >= self._max_decisions:
                    self._decisions.popitem(last=False)
                self._decisions[key] = decision
            else:
                self._decisions.move_to_end(key)
            return decision

    def _analyze(
        self,
        formula: Formula,
        variables: Optional[Sequence[str]],
        family: Family,
    ) -> RewriteDecision:
        mentioned = relations_of(formula)
        blocked = min(mentioned & self._blocked.keys(), default=None)
        if blocked is not None:
            return RewriteDecision(
                None,
                self._blocked[blocked],
                diagnostics=(
                    make_diagnostic("RA303", subject=blocked, relation=blocked),
                ),
            )
        prioritized = sorted(mentioned & self._edge_counts.keys())
        survivors: Optional[Dict[str, str]] = None
        resolved: Set[str] = set()
        if prioritized and family is not Family.REP:
            survivors = {}
            for name in prioritized:
                table, is_resolved = self._survivors_for(name, family)
                survivors[name] = table
                if is_resolved:
                    resolved.add(name)
        decision = analyze_query(
            formula,
            self.schema,
            self.dependencies,
            variables,
            survivors=survivors,
            resolved=resolved,
        )
        if decision.pushed:
            route = "prefsql" if prioritized else "sqlite"
            decision = replace(decision, route=route)
        return decision

    def _fallback(self) -> CqaEngine:
        if self._fallback_engine is None:
            database = load_database(self._connection, self._relation_names)
            self._fallback_engine = CqaEngine(
                database, self.dependencies, self.priority_edges, self.family
            )
        return self._fallback_engine

    # Closed queries ----------------------------------------------------------

    def answer(
        self, query: Union[str, Formula], family: Optional[Family] = None
    ) -> ClosedAnswer:
        """Three-valued verdict of a closed query (Definition 3)."""
        started = time.perf_counter()
        family = family or self.family
        formula = self._to_formula(query)
        if not formula.is_closed:
            raise QueryError("answer() requires a closed formula")
        with obs_span("route-decision"):
            decision = self._decide(formula, (), family)
        if decision.plan is None:
            self.last_route = decision.fallback_route
            annotate(route="fallback", reason=decision.reason)
            answer = self._fallback().answer(formula, family)
            observe_query(
                "prefsql", self.last_route, str(family),
                time.perf_counter() - started,
            )
            return answer
        self.last_route = decision.route
        annotate(route=decision.route)
        with obs_span("winnow-execute", route=decision.route):
            result = decision.plan.run(self._connection)
        if result.certain:
            verdict = Verdict.TRUE  # true in every preferred repair
        elif result.possible:
            verdict = Verdict.UNDETERMINED  # true in some, false in some
        else:
            verdict = Verdict.FALSE  # true in no preferred repair
        observe_query(
            "prefsql", decision.route, str(family),
            time.perf_counter() - started,
        )
        return ClosedAnswer(family, verdict, 0, 0, None, route=decision.route)

    def is_consistently_true(
        self, query: Union[str, Formula], family: Optional[Family] = None
    ) -> bool:
        """Whether the closed query holds in every preferred repair."""
        return self.answer(query, family).verdict is Verdict.TRUE

    # Open queries ------------------------------------------------------------

    def certain_answers(
        self,
        query: Union[str, Formula],
        variables: Optional[Tuple[str, ...]] = None,
        family: Optional[Family] = None,
    ) -> OpenAnswers:
        """Certain/possible answer sets of an open query."""
        started = time.perf_counter()
        family = family or self.family
        formula = self._to_formula(query)
        if variables is None:
            variables = tuple(sorted(formula.free_variables()))
        with obs_span("route-decision"):
            decision = self._decide(formula, variables, family)
        if decision.plan is None:
            self.last_route = decision.fallback_route
            annotate(route="fallback", reason=decision.reason)
            answers = self._fallback().certain_answers(
                formula, variables, family
            )
            observe_query(
                "prefsql", self.last_route, str(family),
                time.perf_counter() - started,
            )
            return answers
        self.last_route = decision.route
        annotate(route=decision.route)
        with obs_span("winnow-execute", route=decision.route):
            result = decision.plan.run(self._connection)
        observe_query(
            "prefsql", decision.route, str(family),
            time.perf_counter() - started,
        )
        return OpenAnswers(
            family,
            tuple(variables),
            result.certain,
            result.possible,
            0,
            route=decision.route,
        )

    def sql_certain_answers(
        self, sql: str, family: Optional[Family] = None
    ) -> OpenAnswers:
        """Certain answers for a conjunctive SQL query."""
        formula, variables = sql_to_formula(sql, self.schema)
        return self.certain_answers(formula, variables, family)

    # Diagnostics -------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Snapshot of the engine's configuration and last routing."""
        return {
            "backend": "prefsql",
            "relations": len(self.schema),
            "dependencies": len(self.dependencies),
            "priority_edges": len(self.priority_edges),
            "prioritized_relations": sorted(self._edge_counts),
            "survivor_tables": len(self._survivors),
            "family": str(self.family),
            "last_route": self.last_route,
        }
