"""Benchmark: the serving subsystem — parallel sharding + batch brokering.

Two measurements, both on the Fig. 5 conjunctive self-join over
Figure-4 conflict chains (the workload of ``bench_evaluator``):

* **parallel speedup** — ``CqaEngine.certain_answers(..., parallel=N)``
  shards the repair space across a process pool versus the serial
  stream.  Answers are asserted bit-identical at every size; the >=2x
  wall-clock criterion is asserted on full (non ``--smoke``) runs when
  the hardware actually has >=2 cores (a 1-core container cannot
  physically exhibit parallel speedup, so there the measured ratio is
  only reported).
* **batch throughput** — a burst of requests with heavy duplication
  served through :class:`~repro.service.broker.RequestBroker` (dedup +
  routing + answer memoization) versus the same burst answered one by
  one on a plain :class:`CqaEngine`.  The >=2x criterion is asserted on
  full runs regardless of core count — deduplication is algorithmic,
  not hardware, leverage.  A repeat of the same batch measures the
  answer-cache hit path.
* **route-decision latency** — ``RequestBroker.analyze`` cold (first
  sight of a query: parse + static analysis, a cache miss in the
  broker's RouteReport cache) versus cached (every later sight: one
  dict lookup under the report lock).  This is the per-request routing
  overhead serving pays before any answer work starts.

Results land in ``BENCH_service.json`` (see ``benchmarks/_cli.py``).
"""

from __future__ import annotations

import os
import statistics
import sys
import time
from typing import List

if not __package__:
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks._cli import apply_seed, bench_parser, emit_result

from repro.cqa.engine import CqaEngine
from repro.datagen.generators import CHAIN_FDS, chain_instance
from repro.query.parser import parse_query

#: Fig. 5's conjunctive self-join, open in the shared A-group.
OPEN = parse_query(
    "EXISTS b1, b2, c1, c2, d1, d2 . "
    "R(a, b1, c1, d1) AND R(a, b2, c2, d2) AND b1 != b2"
)


def warm_pool(workers: int) -> None:
    """Pay the one-time pool startup (forkserver + child imports) before
    timing: a deployed service keeps its pool alive across requests."""
    engine = CqaEngine(chain_instance(4), CHAIN_FDS)
    engine.certain_answers(OPEN, ("a",), parallel=workers)


def measure_parallel(length: int, workers: int):
    """Serial vs sharded certain answers on one chain instance."""
    instance = chain_instance(length)
    serial_engine = CqaEngine(instance, CHAIN_FDS)
    start = time.perf_counter()
    serial = serial_engine.certain_answers(OPEN, ("a",))
    serial_s = time.perf_counter() - start
    parallel_engine = CqaEngine(instance, CHAIN_FDS)
    start = time.perf_counter()
    parallel = parallel_engine.certain_answers(OPEN, ("a",), parallel=workers)
    parallel_s = time.perf_counter() - start
    assert parallel == serial, f"parallel answers diverged at length {length}"
    assert parallel.repairs_considered == serial.repairs_considered
    return serial_s, parallel_s, serial.repairs_considered


def _batch_queries(distinct: int) -> List[str]:
    """Distinct closed self-join probes (one per threshold)."""
    return [
        "EXISTS a, b1, b2, c1, c2, d1, d2 . "
        "R(a, b1, c1, d1) AND R(a, b2, c2, d2) AND b1 != b2 "
        f"AND a >= {threshold}"
        for threshold in range(distinct)
    ]


def measure_broker(length: int, requests: int, distinct: int, repeats: int):
    """Broker batch (dedup + memo) vs a per-request serial loop."""
    from repro.service.broker import Request, RequestBroker

    instance = chain_instance(length)
    queries = _batch_queries(distinct)
    batch = [Request(queries[index % distinct]) for index in range(requests)]

    loop_samples = []
    for _ in range(repeats):
        reference_engine = CqaEngine(instance, CHAIN_FDS)
        start = time.perf_counter()
        reference = [
            reference_engine.answer(request.query) for request in batch
        ]
        loop_samples.append(time.perf_counter() - start)

    broker = RequestBroker()
    broker.register("chain", instance, CHAIN_FDS)
    start = time.perf_counter()
    served = broker.submit(batch)
    first_batch_s = time.perf_counter() - start
    start = time.perf_counter()
    revisited = broker.submit(batch)
    cached_batch_s = time.perf_counter() - start
    broker.close()

    for theirs, mine in zip(reference, served):
        assert theirs.verdict == mine.outcome.verdict, (
            f"broker verdict diverged on {mine.request.query!r}"
        )
    assert all(result.cached or result.shared for result in revisited)
    return statistics.median(loop_samples), first_batch_s, cached_batch_s


def measure_route_decisions(length: int, distinct: int, warm_repeats: int):
    """Broker route-decision time, cold (analysis) vs cached (lookup).

    Every distinct query is analyzed once on a fresh broker (cold: full
    parse + static analysis, a RouteReport-cache miss) and then
    ``warm_repeats`` more times (cached: the fingerprint lookup the
    serving path performs on every request once the report exists).
    """
    from repro.service.broker import RequestBroker

    broker = RequestBroker()
    broker.register("chain", chain_instance(length), CHAIN_FDS)
    queries = _batch_queries(distinct)

    cold_samples = []
    for query in queries:
        start = time.perf_counter()
        broker.analyze(query)
        cold_samples.append(time.perf_counter() - start)

    warm_samples = []
    for _ in range(warm_repeats):
        for query in queries:
            start = time.perf_counter()
            broker.analyze(query)
            warm_samples.append(time.perf_counter() - start)

    stats = broker.stats()["route_reports"]
    assert stats["misses"] == distinct, "every distinct query misses once"
    assert stats["hits"] == distinct * warm_repeats, "repeats all hit"
    broker.close()
    return statistics.median(cold_samples), statistics.median(warm_samples)


def main(argv=None) -> int:
    parser = bench_parser(__doc__)
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[28, 32],
        help="chain lengths for the parallel-speedup sweep",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="process-pool width"
    )
    parser.add_argument(
        "--batch-size", type=int, default=40, help="requests per broker batch"
    )
    parser.add_argument(
        "--distinct", type=int, default=5, help="distinct queries in the batch"
    )
    parser.add_argument(
        "--batch-length", type=int, default=16,
        help="chain length behind the broker batch",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="baseline-loop timing repeats (median reported)",
    )
    parser.add_argument(
        "--no-assert",
        action="store_true",
        help="report without enforcing the >=2x criteria",
    )
    args = parser.parse_args(argv)
    seed = apply_seed(args)

    if args.smoke:
        args.sizes = [16, 20]
        args.batch_size, args.batch_length, args.repeats = 12, 10, 2

    cores = os.cpu_count() or 1
    print(
        f"service layer on the Fig. 5 conjunctive workload "
        f"(seed {seed}, {cores} cores, {args.workers} workers)"
    )

    warm_pool(args.workers)
    parallel_measurements: List[dict] = []
    parallel_speedups: List[float] = []
    for length in args.sizes:
        serial_s, parallel_s, repairs = measure_parallel(length, args.workers)
        speedup = serial_s / parallel_s
        parallel_speedups.append(speedup)
        parallel_measurements.append(
            {
                "chain": length,
                "repairs": repairs,
                "serial_s": round(serial_s, 6),
                "parallel_s": round(parallel_s, 6),
                "speedup": round(speedup, 2),
            }
        )
        print(
            f"[chain {length:>3}, {repairs:>6} repairs] serial "
            f"{serial_s * 1000:9.1f} ms | parallel({args.workers}) "
            f"{parallel_s * 1000:9.1f} ms | speedup {speedup:5.2f}x "
            "(answers identical)"
        )

    loop_s, batch_s, cached_s = measure_broker(
        args.batch_length, args.batch_size, args.distinct, args.repeats
    )
    batch_speedup = loop_s / batch_s
    cached_speedup = loop_s / cached_s if cached_s else float("inf")
    print(
        f"[batch {args.batch_size} reqs, {args.distinct} distinct] "
        f"per-request loop {loop_s * 1000:9.1f} ms | broker batch "
        f"{batch_s * 1000:9.1f} ms ({batch_speedup:5.2f}x) | repeat batch "
        f"{cached_s * 1000:7.2f} ms ({cached_speedup:,.0f}x, all cache hits)"
    )

    cold_s, warm_s = measure_route_decisions(
        args.batch_length, args.distinct, warm_repeats=max(args.repeats, 2)
    )
    route_speedup = cold_s / warm_s if warm_s else float("inf")
    print(
        f"[route decision, {args.distinct} distinct] cold analyze "
        f"{cold_s * 1e6:8.1f} us | cached {warm_s * 1e6:8.1f} us "
        f"({route_speedup:,.0f}x, RouteReport cache)"
    )

    emit_result(
        __file__,
        {
            "cores": cores,
            "workers": args.workers,
            "parallel": parallel_measurements,
            "batch": {
                "requests": args.batch_size,
                "distinct": args.distinct,
                "loop_s": round(loop_s, 6),
                "batch_s": round(batch_s, 6),
                "cached_batch_s": round(cached_s, 6),
                "speedup": round(batch_speedup, 2),
                "cached_speedup": round(cached_speedup, 2),
            },
            "route_decision": {
                "distinct": args.distinct,
                "cold_s": round(cold_s, 9),
                "cached_s": round(warm_s, 9),
                "speedup": round(route_speedup, 2),
            },
        },
    )

    if not args.no_assert and not args.smoke:
        assert batch_speedup >= 2, (
            f"broker batch speedup {batch_speedup:.2f}x below the 2x criterion"
        )
        best = max(parallel_speedups)
        if cores >= 2:
            assert best >= 2, (
                f"parallel speedup {best:.2f}x below the 2x criterion "
                f"on {cores} cores"
            )
            print(
                f"criteria met: >={best:.1f}x parallel and "
                f">={batch_speedup:.1f}x batch speedup"
            )
        else:
            print(
                f"batch criterion met ({batch_speedup:.1f}x); parallel "
                f"criterion skipped: 1 core cannot exhibit wall-clock "
                f"parallel speedup (measured {best:.2f}x)"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
