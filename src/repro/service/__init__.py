"""Serving subsystem: sharded parallel execution plus request brokering.

The repair semantics of the paper decompose over conflict-graph
components, which makes certain/possible-answer computation
embarrassingly parallel.  This package is the layer between the fast
single-process engines and a production deployment:

* :mod:`repro.service.parallel` — shard the repair space (the product
  of per-component repair fragments) into index ranges executed by a
  process pool, with a deterministic merge that is bit-identical to
  serial evaluation;
* :mod:`repro.service.broker` — batch, deduplicate, route and memoize
  query requests over registered (mutable) databases, choosing the
  cheapest capable engine per query;
* :mod:`repro.service.server` — a stdlib-only JSON-over-HTTP and
  JSON-lines front end (``repro serve``) with health/stats endpoints.
"""

from repro.service.broker import AnswerCache, BrokerResult, Request, RequestBroker
from repro.service.parallel import ShardPlan, shard_plan

__all__ = [
    "AnswerCache",
    "BrokerResult",
    "Request",
    "RequestBroker",
    "ShardPlan",
    "shard_plan",
]
