"""Unit tests for the guarded-by concurrency lint (tools/lint)."""

import sys
import textwrap
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(ROOT / "tools" / "lint"))

import guarded_by  # noqa: E402


def _lint(code: str):
    source = textwrap.dedent(code)
    return guarded_by.lint_source(Path("probe.py"), source)


class TestGuardedByPass:
    def test_access_under_lock_is_clean(self):
        violations, _, guarded = _lint(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: _lock

                def add(self, x):
                    with self._lock:
                        self._items.append(x)
            """
        )
        assert guarded == 1
        assert violations == []

    def test_unguarded_access_is_flagged(self):
        violations, _, _ = _lint(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: _lock

                def bad(self):
                    return len(self._items)
            """
        )
        assert len(violations) == 1
        assert "Box._items" in violations[0].message
        assert "_lock" in violations[0].message

    def test_wrong_lock_is_flagged(self):
        violations, _, _ = _lint(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._other = threading.Lock()
                    self._items = []  # guarded-by: _lock

                def bad(self):
                    with self._other:
                        return len(self._items)
            """
        )
        assert len(violations) == 1

    def test_suppression_comment_is_honoured(self):
        violations, _, _ = _lint(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: _lock

                def snapshot(self):
                    return len(self._items)  # lint: unguarded-ok
            """
        )
        assert violations == []

    def test_init_is_exempt(self):
        violations, _, _ = _lint(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: _lock
                    self._items.append(0)
            """
        )
        assert violations == []

    def test_access_after_with_block_is_flagged(self):
        violations, _, _ = _lint(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: _lock

                def leaky(self):
                    with self._lock:
                        pass
                    return self._items
            """
        )
        assert len(violations) == 1

    def test_nested_control_flow_under_lock_is_clean(self):
        violations, _, _ = _lint(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: _lock

                def churn(self):
                    with self._lock:
                        for x in list(self._items):
                            try:
                                if x:
                                    self._items.remove(x)
                            except ValueError:
                                self._items.clear()
            """
        )
        assert violations == []

    def test_nested_function_does_not_inherit_lock(self):
        violations, _, _ = _lint(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: _lock

                def escape(self):
                    with self._lock:
                        def later():
                            return self._items
                        return later
            """
        )
        assert len(violations) == 1

    def test_rwlock_style_context_counts_as_held(self):
        violations, _, _ = _lint(
            """
            class Box:
                def __init__(self, rw):
                    self.rw = rw
                    self._items = []  # guarded-by: rw

                def read_all(self):
                    with self.rw.read():
                        return list(self._items)
            """
        )
        assert violations == []


class TestLockOrderPass:
    def test_consistent_order_is_acyclic(self):
        _, edges, _ = _lint(
            """
            class Safe:
                def one(self):
                    with self.a_lock:
                        with self.b_lock:
                            pass

                def two(self):
                    with self.a_lock:
                        with self.b_lock:
                            pass
            """
        )
        assert guarded_by._find_cycle(edges) is None
        assert len(edges) >= 1

    def test_inverted_order_is_a_cycle(self):
        _, edges, _ = _lint(
            """
            class Deadlock:
                def one(self):
                    with self.a_lock:
                        with self.b_lock:
                            pass

                def two(self):
                    with self.b_lock:
                        with self.a_lock:
                            pass
            """
        )
        cycle = guarded_by._find_cycle(edges)
        assert cycle is not None
        assert cycle[0] == cycle[-1]

    def test_non_lock_contexts_are_ignored(self):
        _, edges, _ = _lint(
            """
            class Files:
                def copy(self):
                    with self.reader:
                        with self.writer:
                            pass
            """
        )
        assert edges == set()

    def test_rw_read_call_produces_edge(self):
        _, edges, _ = _lint(
            """
            class Broker:
                def serve(self, entry):
                    with entry.rw.read():
                        with entry.compute_lock:
                            pass
            """
        )
        assert ("entry.rw", "entry.compute_lock") in {
            (held, acquired) for held, acquired, _ in edges
        }


class TestDefaultModules:
    def test_threaded_repro_modules_are_clean(self):
        status = guarded_by.run(
            [guarded_by.ROOT / name for name in guarded_by.DEFAULT_FILES]
        )
        assert status == 0

    def test_default_files_exist(self):
        for name in guarded_by.DEFAULT_FILES:
            assert (guarded_by.ROOT / name).is_file(), name

    def test_cli_flags_missing_file(self):
        assert guarded_by.main(["/nonexistent/nope.py"]) == 2
