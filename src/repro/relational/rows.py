"""Immutable database tuples (rows).

A :class:`Row` is the paper's tuple ``t``: it belongs to a relation and
holds one value per attribute.  Rows are immutable and hashable so they
can serve as vertices of conflict graphs, members of repairs (frozensets)
and endpoints of priority edges.

Equality is by relation name and values — two rows loaded from different
schema objects with the same relation name and the same values are the
same tuple, mirroring the paper's set semantics.  Attribute access
``row["Salary"]`` (the paper's ``t.A``) goes through the carried schema.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.relational.domain import Value
from repro.relational.schema import RelationSchema


class Row:
    """An immutable tuple of a relation instance."""

    __slots__ = ("schema", "values", "_hash")

    def __init__(self, schema: RelationSchema, values: Sequence[Value]) -> None:
        object.__setattr__(self, "schema", schema)
        object.__setattr__(self, "values", schema.validate_values(values))
        object.__setattr__(self, "_hash", hash((schema.name, self.values)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Row is immutable")

    @property
    def relation(self) -> str:
        """Name of the relation this row belongs to."""
        return self.schema.name

    def __getitem__(self, attribute: str) -> Value:
        """Value of ``attribute`` (the paper's ``t.A``)."""
        return self.values[self.schema.index_of(attribute)]

    def project(self, attributes: Sequence[str]) -> Tuple[Value, ...]:
        """Values of the given attributes, in the given order."""
        return tuple(self[attribute] for attribute in attributes)

    def agrees_with(self, other: "Row", attributes: Sequence[str]) -> bool:
        """Whether both rows share values on all ``attributes``."""
        return all(self[attr] == other[attr] for attr in attributes)

    def replace(self, **updates: Value) -> "Row":
        """A copy of this row with some attribute values replaced."""
        values = list(self.values)
        for attribute, value in updates.items():
            values[self.schema.index_of(attribute)] = value
        return Row(self.schema, values)

    def __reduce__(self):
        # Rows block ``__setattr__`` (immutability), which breaks the
        # default slot-state pickling; reconstructing through __init__
        # keeps them picklable for process-pool shard payloads.
        return (Row, (self.schema, self.values))

    def __iter__(self) -> Iterator[Value]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self.relation == other.relation and self.values == other.values

    def __lt__(self, other: "Row") -> bool:
        """Deterministic (arbitrary) order used for stable output listings."""
        if not isinstance(other, Row):
            return NotImplemented
        return (self.relation, _sort_key(self.values)) < (
            other.relation,
            _sort_key(other.values),
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(repr(value) for value in self.values)
        return f"{self.relation}({inner})"


def _sort_key(values: Sequence[Value]) -> Tuple[Tuple[int, str], ...]:
    """Mixed str/int sort key (ints before strs, each naturally ordered)."""
    return tuple(
        (0, f"{value:020d}") if isinstance(value, int) else (1, value)
        for value in values
    )


def sorted_rows(rows) -> list:
    """Rows in the deterministic listing order used across the library."""
    return sorted(rows)
