"""Equivalence and behaviour tests for the incremental CQA engine.

The load-bearing property: whatever update sequence the engine absorbs,
its answers for every repair family are identical to a fresh
:class:`CqaEngine` built from scratch over the final rows (with the
declared priority edges filtered to currently-conflicting pairs, which
is the incremental engine's re-validation semantics).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.conflict_graph import build_conflict_graph
from repro.core.families import Family
from repro.cqa.answers import Verdict
from repro.cqa.engine import CqaEngine
from repro.datagen.generators import GRID_FDS, GRID_SCHEMA
from repro.datagen.paper_instances import (
    Q1_TEXT,
    all_scenarios,
    example4_scenario,
    mgr_scenario,
)
from repro.exceptions import CyclicPriorityError, QueryError, UpdateError
from repro.incremental import IncrementalCqaEngine
from repro.query.evaluator import evaluate
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row

from tests.conftest import TWO_FDS, TWO_FD_SCHEMA

FAMILIES = list(Family)

#: Query mix covering the conjunctive fast path (atoms, joins,
#: comparisons) and the enumeration fallback (negation, universal).
KV_QUERIES = [
    "EXISTS x . R(x, 0)",
    "EXISTS x, y . R(x, y) AND y > 0",
    "EXISTS x, y, z . R(x, y) AND R(y, z)",
    "FORALL x, y . R(x, y) IMPLIES y < 2",
    "NOT (EXISTS x . R(x, 1))",
]


def kv(a, b):
    return Row(GRID_SCHEMA, (a, b))


def quad(a, b, c, d):
    return Row(TWO_FD_SCHEMA, (a, b, c, d))


def fresh_twin(engine: IncrementalCqaEngine, dependencies, family):
    """A from-scratch engine over the incremental engine's current state."""
    return CqaEngine(
        engine.current_database(),
        dependencies,
        list(engine.active_priority_edges()),
        family,
    )


def assert_closed_match(incremental, fresh, query, family):
    mine = incremental.answer(query, family)
    theirs = fresh.answer(query)
    assert (mine.verdict, mine.repairs_considered, mine.satisfying) == (
        theirs.verdict,
        theirs.repairs_considered,
        theirs.satisfying,
    ), (family, query)
    assert incremental.is_consistently_true(query, family) == (
        theirs.verdict is Verdict.TRUE
    )


def assert_open_match(incremental, fresh, query, family, variables=None):
    mine = incremental.certain_answers(query, variables, family)
    theirs = fresh.certain_answers(query, variables)
    assert (mine.certain, mine.possible, mine.repairs_considered) == (
        theirs.certain,
        theirs.possible,
        theirs.repairs_considered,
    ), (family, query)


class TestPaperScenarioEquivalence:
    @pytest.mark.parametrize("family", FAMILIES, ids=str)
    def test_repair_sets_match_on_every_scenario(self, family):
        """Figure 1-4 instances: products of per-component preferred
        fragments equal the batch engine's preferred repairs."""
        for scenario in all_scenarios():
            fresh = CqaEngine(
                scenario.instance, scenario.dependencies, scenario.priority, family
            )
            incremental = IncrementalCqaEngine(
                scenario.instance,
                scenario.dependencies,
                scenario.priority.edges,
                family,
            )
            assert set(incremental.repairs()) == set(fresh.repairs()), scenario.name
            assert incremental.count_repairs() == len(fresh.repairs())

    @pytest.mark.parametrize("family", FAMILIES, ids=str)
    def test_mgr_answers_match(self, family):
        scenario = mgr_scenario()
        fresh = CqaEngine(
            scenario.instance, scenario.dependencies, scenario.priority, family
        )
        incremental = IncrementalCqaEngine(
            scenario.instance, scenario.dependencies, scenario.priority.edges, family
        )
        mine = incremental.answer(Q1_TEXT)
        theirs = fresh.answer(Q1_TEXT)
        assert (mine.verdict, mine.repairs_considered, mine.satisfying) == (
            theirs.verdict,
            theirs.repairs_considered,
            theirs.satisfying,
        )
        assert_open_match(
            incremental, fresh, "EXISTS d, s . Mgr(n, d, s, r)", family, ("n", "r")
        )

    @pytest.mark.parametrize("family", FAMILIES, ids=str)
    def test_example4_after_updates(self, family):
        """Figure 1's grid stays equivalent while a key group churns."""
        scenario = example4_scenario(3)
        incremental = IncrementalCqaEngine(
            scenario.instance, scenario.dependencies, family=family
        )
        script = [
            ("insert", kv(0, 2)),   # grow group 0 into a triangle
            ("insert", kv(5, 0)),   # fresh singleton component
            ("delete", kv(0, 0)),   # shrink the triangle back
            ("insert", kv(5, 1)),   # turn the singleton into a pair
            ("delete", kv(1, 1)),   # dissolve group 1's conflict
        ]
        for action, row in script:
            getattr(incremental, action)(row)
            fresh = fresh_twin(incremental, scenario.dependencies, family)
            for query in KV_QUERIES:
                assert_closed_match(incremental, fresh, query, family)
            assert_open_match(incremental, fresh, "R(u, v)", family)


class TestMergeAndSplitEquivalence:
    """Updates that merge and split components, under every family."""

    LEFT, RIGHT, BRIDGE = quad(0, 0, 0, 0), quad(1, 1, 1, 1), quad(0, 1, 1, 0)
    QUERIES = [
        "EXISTS a, b, c, d . R(a, b, c, d) AND b = 0",
        "EXISTS a, b, c, d, e, f . R(a, b, c, d) AND R(e, f, c, b)",
        "FORALL a, b, c, d . R(a, b, c, d) IMPLIES a < 2",
    ]

    @pytest.mark.parametrize("family", FAMILIES, ids=str)
    def test_merge_then_split(self, family):
        declared = [(self.LEFT, self.BRIDGE), (self.BRIDGE, self.RIGHT)]
        incremental = IncrementalCqaEngine(
            [self.LEFT, self.RIGHT], TWO_FDS, declared, family
        )
        assert incremental.graph.component_count == 2

        incremental.insert(self.BRIDGE)  # merge into one component
        assert incremental.graph.component_count == 1
        fresh = fresh_twin(incremental, TWO_FDS, family)
        for query in self.QUERIES:
            assert_closed_match(incremental, fresh, query, family)

        incremental.delete(self.BRIDGE)  # split back apart
        assert incremental.graph.component_count == 2
        fresh = fresh_twin(incremental, TWO_FDS, family)
        for query in self.QUERIES:
            assert_closed_match(incremental, fresh, query, family)
        assert_open_match(incremental, fresh, "R(a, b, c, d)", family)


@st.composite
def update_scripts(draw):
    """A start instance plus a short random update script."""
    universe = [kv(a, b) for a in range(4) for b in range(3)]
    initial = draw(st.sets(st.sampled_from(universe), max_size=6))
    steps = draw(
        st.lists(
            st.tuples(st.sampled_from(universe), st.booleans()),
            min_size=1,
            max_size=8,
        )
    )
    return initial, steps


class TestRandomisedEquivalence:
    @given(update_scripts())
    @settings(max_examples=40, deadline=None)
    def test_all_families_match_fresh_after_random_updates(self, case):
        initial, steps = case
        declared = [(kv(a, 0), kv(a, 1)) for a in range(4)]
        incremental = IncrementalCqaEngine(
            set(initial), GRID_FDS, declared, Family.REP
        )
        present = set(initial)
        for row, is_delete in steps:
            if is_delete and row in present:
                incremental.delete(row)
                present.discard(row)
            elif not is_delete and row not in present:
                incremental.insert(row)
                present.add(row)
        assert incremental.current_rows() == frozenset(present)
        for family in FAMILIES:
            fresh = fresh_twin(incremental, GRID_FDS, family)
            for query in ("EXISTS x . R(x, 1)", "EXISTS x, y . R(x, y) AND R(y, x)"):
                assert_closed_match(incremental, fresh, query, family)
            assert_open_match(incremental, fresh, "R(u, v)", family)


class TestPriorityRevalidation:
    def test_declared_edge_deactivates_and_reactivates(self):
        winner, loser = kv(0, 1), kv(0, 0)
        engine = IncrementalCqaEngine(
            [winner, loser], GRID_FDS, [(winner, loser)], Family.LOCAL
        )
        assert engine.active_priority_edges() == {(winner, loser)}
        engine.delete(loser)
        # The conflict is gone: the edge goes dormant instead of the
        # engine raising, and answers keep flowing.
        assert engine.active_priority_edges() == frozenset()
        assert engine.answer("EXISTS x . R(x, 1)").verdict is Verdict.TRUE
        engine.insert(loser)
        assert engine.active_priority_edges() == {(winner, loser)}
        assert engine.repairs() == [frozenset({winner})]

    def test_declared_cycle_rejected_upfront(self):
        first, second = kv(0, 0), kv(0, 1)
        with pytest.raises(CyclicPriorityError):
            IncrementalCqaEngine(
                [first, second], GRID_FDS, [(first, second), (second, first)]
            )

    def test_prefer_rejects_cycles_and_extends(self):
        first, second = kv(0, 0), kv(0, 1)
        engine = IncrementalCqaEngine([first, second], GRID_FDS, family=Family.LOCAL)
        engine.prefer(first, second)
        assert engine.active_priority_edges() == {(first, second)}
        with pytest.raises(CyclicPriorityError):
            engine.prefer(second, first)
        assert engine.repairs() == [frozenset({first})]

    def test_dormant_edge_may_target_future_rows(self):
        """Priorities may mention tuples not inserted yet."""
        winner, loser = kv(0, 1), kv(0, 0)
        engine = IncrementalCqaEngine([loser], GRID_FDS, [(winner, loser)])
        assert engine.active_priority_edges() == frozenset()
        engine.insert(winner)
        assert engine.active_priority_edges() == {(winner, loser)}


class TestEngineMechanics:
    def test_counterexample_is_a_falsifying_preferred_repair(self):
        engine = IncrementalCqaEngine(
            [kv(0, 0), kv(0, 1), kv(1, 0)], GRID_FDS, family=Family.REP
        )
        query = "EXISTS x . R(x, 1)"
        answer = engine.answer(query)
        assert answer.verdict is Verdict.UNDETERMINED
        assert answer.counterexample in set(engine.repairs())
        assert not evaluate(engine._to_formula(query), answer.counterexample)

    def test_batch_update_applies_deletes_then_inserts(self):
        engine = IncrementalCqaEngine([kv(0, 0), kv(0, 1)], GRID_FDS)
        deltas = engine.batch_update(
            inserts=[kv(1, 0), kv(1, 1)], deletes=[kv(0, 1)]
        )
        assert len(deltas) == 3
        assert engine.current_rows() == {kv(0, 0), kv(1, 0), kv(1, 1)}
        assert engine.updates_applied == 3

    def test_delete_unknown_row_raises(self):
        engine = IncrementalCqaEngine([kv(0, 0)], GRID_FDS)
        with pytest.raises(UpdateError):
            engine.delete(kv(7, 7))

    def test_open_query_rejected_by_closed_api(self):
        engine = IncrementalCqaEngine([kv(0, 0)], GRID_FDS)
        with pytest.raises(QueryError):
            engine.answer("R(x, y)")

    def test_untouched_components_hit_the_cache(self):
        engine = IncrementalCqaEngine(
            [kv(a, b) for a in range(6) for b in (0, 1)], GRID_FDS
        )
        query = "EXISTS x . R(x, 1)"
        engine.answer(query)
        misses_before = engine._cache.stats()["misses"]
        engine.insert(kv(0, 2))  # touches component 0 only
        engine.answer(query)
        stats = engine._cache.stats()
        # One new component fingerprint (the grown component 0) missing
        # at both layers (fragment + preferred); the other five
        # components are served from cache.
        assert stats["misses"] == misses_before + 2
        assert stats["hits"] > 0

    def test_summary_reports_incremental_state(self):
        engine = IncrementalCqaEngine(
            [kv(0, 0), kv(0, 1), kv(1, 0)], GRID_FDS, [(kv(0, 0), kv(0, 1))]
        )
        engine.insert(kv(2, 0))
        summary = engine.summary()
        assert summary["tuples"] == 4
        assert summary["conflicts"] == 1
        assert summary["oriented"] == 1
        assert summary["components"] == 3
        assert summary["conflict_components"] == 1
        assert summary["updates_applied"] == 1
        assert "cache" in summary

    def test_current_database_roundtrip(self):
        scenario = mgr_scenario()
        engine = IncrementalCqaEngine(scenario.instance, scenario.dependencies)
        database = engine.current_database()
        assert database.all_rows() == scenario.instance.rows

    def test_sql_certain_answers(self):
        scenario = mgr_scenario()
        engine = IncrementalCqaEngine(
            scenario.instance, scenario.dependencies, scenario.priority.edges
        )
        fresh = CqaEngine(
            scenario.instance, scenario.dependencies, scenario.priority
        )
        sql = "SELECT m.Name FROM Mgr m WHERE m.Salary > 15"
        mine = engine.sql_certain_answers(sql)
        theirs = fresh.sql_certain_answers(sql)
        assert mine.certain == theirs.certain
        assert mine.possible == theirs.possible

    def test_empty_engine_answers_like_empty_instance(self):
        engine = IncrementalCqaEngine([], GRID_FDS)
        engine.insert(kv(0, 0))
        engine.delete(kv(0, 0))
        # No rows: the single (empty) repair falsifies any existential.
        assert engine.count_repairs() == 1
