"""Property tests: sharded execution is deterministic and serial-identical.

The satellite contract of the service PR: for random instances and
priorities across all five repair families, ``parallel=1`` (shard path
in-process), ``parallel=4`` (process pool) and the plain serial engines
agree on certain/possible answers and closed verdicts — and broker
cache hits reproduce the original result bit for bit, including the
``route`` provenance.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.incremental.engine import IncrementalCqaEngine
from repro.query.parser import parse_query

from tests.conftest import TWO_FDS, two_fd_priorities

#: Small but join-heavy: a dirty self-join plus a disjunctive tail, so
#: both the witness path and the enumeration fallback get exercised.
OPEN_QUERY = parse_query(
    "EXISTS b, c, d . R(a, b, c, d) AND (b = 0 OR c = d)"
)
CLOSED_QUERY = parse_query(
    "EXISTS a, b1, b2, c1, c2, d1, d2 . "
    "R(a, b1, c1, d1) AND R(a, b2, c2, d2) AND b1 != b2"
)

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(setting=two_fd_priorities(max_tuples=6), family=st.sampled_from(Family))
@_SETTINGS
def test_parallel_one_and_four_match_serial_open(setting, family):
    instance, priority = setting
    serial = CqaEngine(instance, TWO_FDS, priority, family)
    sharded = CqaEngine(instance, TWO_FDS, priority, family)
    expected = serial.certain_answers(OPEN_QUERY, ("a",))
    one = sharded.certain_answers(OPEN_QUERY, ("a",), parallel=1)
    four = sharded.certain_answers(OPEN_QUERY, ("a",), parallel=4)
    assert one == expected
    assert four == expected
    assert one.repairs_considered == expected.repairs_considered
    assert four.repairs_considered == expected.repairs_considered


@given(setting=two_fd_priorities(max_tuples=6), family=st.sampled_from(Family))
@_SETTINGS
def test_parallel_one_and_four_match_serial_closed(setting, family):
    instance, priority = setting
    serial = CqaEngine(instance, TWO_FDS, priority, family)
    sharded = CqaEngine(instance, TWO_FDS, priority, family)
    expected = serial.answer(CLOSED_QUERY)
    one = sharded.answer(CLOSED_QUERY, parallel=1)
    four = sharded.answer(CLOSED_QUERY, parallel=4)
    for merged in (one, four):
        assert merged.verdict == expected.verdict
        assert merged.repairs_considered == expected.repairs_considered
        assert merged.satisfying == expected.satisfying
    if family in (Family.REP, Family.LOCAL, Family.SEMI_GLOBAL):
        # Streaming families keep the serial stream order exactly.
        assert one.counterexample == expected.counterexample
        assert four.counterexample == expected.counterexample
    elif expected.counterexample is not None:
        from repro.query.evaluator import evaluate

        assert not evaluate(CLOSED_QUERY, four.counterexample)


@given(setting=two_fd_priorities(max_tuples=6), family=st.sampled_from(Family))
@_SETTINGS
def test_incremental_enumeration_fallback_parallel_matches(setting, family):
    """The incremental engine's sharded fallback (non-conjunctive query)."""
    instance, priority = setting
    query = parse_query(
        "EXISTS b, c, d . R(a, b, c, d) AND (b = 0 OR c = d)"
    )
    serial = IncrementalCqaEngine(instance, TWO_FDS, priority.edges, family)
    sharded = IncrementalCqaEngine(instance, TWO_FDS, priority.edges, family)
    expected = serial.certain_answers(query, ("a",))
    four = sharded.certain_answers(query, ("a",), parallel=4)
    assert four.certain == expected.certain
    assert four.possible == expected.possible
    assert four.repairs_considered == expected.repairs_considered


@given(setting=two_fd_priorities(max_tuples=5))
@_SETTINGS
def test_broker_cache_hits_return_the_same_route(setting):
    from repro.service.broker import RequestBroker

    instance, priority = setting
    broker = RequestBroker()
    broker.register("db", instance, TWO_FDS, priority.edges)
    try:
        for query in (
            "EXISTS b, c, d . R(a, b, c, d)",
            "EXISTS a, b, c, d . R(a, b, c, d) AND (b = 0 OR c = d)",
        ):
            first = broker.query(query)
            again = broker.query(query)
            assert again.cached
            assert again.route == first.route
            assert again.engine == first.engine
            assert again.outcome == first.outcome
    finally:
        broker.close()
