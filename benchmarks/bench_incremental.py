"""Benchmark: incremental re-answering vs fresh-engine rebuilds.

Scenario (the serving workload the incremental subsystem targets): a
relation ``R(A, B)`` with key ``A -> B`` holding many singleton tuples
plus ``pairs`` two-tuple conflict components, a total "newer value wins"
priority, and a cached conjunctive query that is re-answered after every
single-tuple update.

Three measurements:

* **incremental** — one :class:`IncrementalCqaEngine` absorbs each
  update and re-answers; only the touched component's repairs are
  recomputed and the witness index is maintained semi-naively.
* **fresh (exact)** — at a reduced component count where the one-shot
  engine can finish, rebuild a :class:`CqaEngine` per update and
  re-answer, asserting answers agree with the incremental engine.
* **fresh (budgeted)** — at the full scale (>= 200 tuples, >= 20
  conflict components, i.e. >= 2^20 repairs) the one-shot engine cannot
  finish; its per-repair stream is driven against a wall-clock budget,
  yielding a *lower bound* on the rebuild cost and hence on the speedup.

Run directly (``python benchmarks/bench_incremental.py``); ``--smoke``
runs a seconds-long correctness-focused configuration for CI.
"""

from __future__ import annotations

import random
import statistics
import sys
import time
from typing import List, Tuple

if not __package__:
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks._cli import apply_seed, bench_parser, bench_seed, emit_result

from repro.core.families import Family
from repro.cqa.engine import CqaEngine
from repro.datagen.generators import GRID_FDS, GRID_SCHEMA
from repro.incremental import IncrementalCqaEngine
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query
from repro.relational.instance import RelationInstance
from repro.relational.rows import Row

QUERY = "EXISTS x, y . R(x, y) AND y > 0"
FAMILY = Family.REP


def build_workload(pairs: int, singles: int):
    """``pairs`` two-tuple conflict components plus consistent filler.

    The insertion order is shuffled under the uniform ``--seed`` so the
    dynamic graph's bucket build order varies between runs.
    """
    values = [(key, b) for key in range(pairs) for b in (0, 1)]
    values += [(pairs + i, 0) for i in range(singles)]
    random.Random(bench_seed()).shuffle(values)
    instance = RelationInstance.from_values(GRID_SCHEMA, values)
    priority = [
        (Row(GRID_SCHEMA, (key, 1)), Row(GRID_SCHEMA, (key, 0)))
        for key in range(pairs)
    ]
    return instance, priority


def probe_row() -> Row:
    """The churned tuple: a third value for key 0 (conflicts with both)."""
    return Row(GRID_SCHEMA, (0, 2))


def toggle(engine: IncrementalCqaEngine, row: Row) -> None:
    if row in engine.graph:
        engine.delete(row)
    else:
        engine.insert(row)


def time_incremental(pairs: int, singles: int, iterations: int) -> Tuple[float, List[frozenset]]:
    instance, priority = build_workload(pairs, singles)
    engine = IncrementalCqaEngine(instance, GRID_FDS, priority, FAMILY)
    engine.answer(QUERY)  # warm component caches + witness index
    row = probe_row()
    samples: List[float] = []
    rows_after: List[frozenset] = []
    for _ in range(iterations):
        start = time.perf_counter()
        toggle(engine, row)
        engine.answer(QUERY)
        samples.append(time.perf_counter() - start)
        rows_after.append(engine.current_rows())
    return statistics.median(samples), rows_after


def fresh_answer(rows: frozenset, priority, budget: float):
    """Rebuild a one-shot engine and answer, stopping at ``budget`` seconds.

    Mirrors ``CqaEngine.answer``'s repair stream exactly; returns
    ``(seconds, finished, verdict)``.
    """
    formula = parse_query(QUERY)
    deadline = time.perf_counter() + budget
    start = time.perf_counter()
    engine = CqaEngine(RelationInstance(GRID_SCHEMA, rows), GRID_FDS, priority, FAMILY)
    satisfying = 0
    considered = 0
    for repair in engine._stream_repairs(FAMILY):
        considered += 1
        if evaluate(formula, repair):
            satisfying += 1
        if time.perf_counter() > deadline:
            return time.perf_counter() - start, False, None
    verdict = "true" if satisfying == considered else (
        "false" if satisfying == 0 else "undetermined"
    )
    return time.perf_counter() - start, True, verdict


def time_fresh_exact(pairs: int, singles: int, iterations: int, budget: float):
    """Per-update fresh rebuilds at a scale the one-shot engine can finish,
    cross-checked against the incremental engine's answers."""
    instance, priority = build_workload(pairs, singles)
    engine = IncrementalCqaEngine(instance, GRID_FDS, priority, FAMILY)
    engine.answer(QUERY)
    row = probe_row()
    fresh_samples: List[float] = []
    incremental_samples: List[float] = []
    for _ in range(iterations):
        start = time.perf_counter()
        toggle(engine, row)
        mine = engine.answer(QUERY)
        incremental_samples.append(time.perf_counter() - start)
        active = list(engine.active_priority_edges())
        rows = engine.current_rows()
        start = time.perf_counter()
        fresh = CqaEngine(RelationInstance(GRID_SCHEMA, rows), GRID_FDS, active, FAMILY)
        theirs = fresh.answer(QUERY)
        fresh_samples.append(time.perf_counter() - start)
        assert (theirs.verdict, theirs.repairs_considered, theirs.satisfying) == (
            mine.verdict,
            mine.repairs_considered,
            mine.satisfying,
        ), f"incremental answer diverged: {mine} vs {theirs}"
    return statistics.median(fresh_samples), statistics.median(incremental_samples)


def main(argv=None) -> int:
    parser = bench_parser(__doc__)
    parser.add_argument("--pairs", type=int, default=40, help="conflict components")
    parser.add_argument("--singles", type=int, default=160, help="consistent tuples")
    parser.add_argument("--exact-pairs", type=int, default=8,
                        help="component count for the exact fresh baseline")
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument("--budget", type=float, default=20.0,
                        help="wall-clock budget (s) for the full-scale fresh attempt")
    parser.add_argument("--no-assert", action="store_true",
                        help="report without enforcing the >=10x criterion")
    args = parser.parse_args(argv)
    apply_seed(args)

    if args.smoke:
        args.pairs, args.singles, args.exact_pairs = 20, 180, 5
        args.iterations, args.budget = 4, 3.0

    tuples = args.pairs * 2 + args.singles
    print(f"instance: {tuples} tuples, {args.pairs} conflict components, "
          f"family={FAMILY}, query={QUERY!r}")

    # Exact comparison where the one-shot engine can finish.
    exact_tuples = args.exact_pairs * 2 + (tuples - args.exact_pairs * 2)
    fresh_exact, incr_at_exact = time_fresh_exact(
        args.exact_pairs, tuples - args.exact_pairs * 2,
        max(2, min(args.iterations, 5)), args.budget,
    )
    exact_speedup = fresh_exact / incr_at_exact
    print(f"[exact   @ {args.exact_pairs:>3} components, {exact_tuples} tuples] "
          f"fresh rebuild+answer: {fresh_exact * 1000:9.2f} ms | "
          f"incremental update+answer: {incr_at_exact * 1000:7.3f} ms | "
          f"speedup: {exact_speedup:,.0f}x")

    # Full scale: incremental measured, fresh bounded by budget.
    incr_full, rows_after = time_incremental(args.pairs, args.singles, args.iterations)
    _, priority = build_workload(args.pairs, args.singles)
    spent, finished, _ = fresh_answer(rows_after[-1], priority, args.budget)
    if finished:
        full_speedup = spent / incr_full
        bound = ""
    else:
        full_speedup = spent / incr_full
        bound = ">="
    print(f"[full    @ {args.pairs:>3} components, {tuples} tuples] "
          f"fresh rebuild+answer: {bound}{spent * 1000:9.2f} ms"
          f"{'' if finished else ' (budget exhausted)'} | "
          f"incremental update+answer: {incr_full * 1000:7.3f} ms | "
          f"speedup: {bound}{full_speedup:,.0f}x")

    emit_result(
        __file__,
        {
            "tuples": tuples,
            "components": args.pairs,
            "exact_speedup": round(exact_speedup, 2),
            "full_speedup": round(full_speedup, 2),
            "full_speedup_is_lower_bound": not finished,
            "incremental_update_answer_s": round(incr_full, 6),
        },
    )
    if not args.no_assert and not args.smoke:
        assert exact_speedup >= 10, (
            f"exact speedup {exact_speedup:.1f}x below the 10x criterion"
        )
        assert full_speedup >= 10, (
            f"full-scale speedup {'lower bound ' if not finished else ''}"
            f"{full_speedup:.1f}x below the 10x criterion"
        )
        print("criterion met: >=10x speedup at both scales")
    return 0


if __name__ == "__main__":
    sys.exit(main())
