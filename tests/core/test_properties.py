"""Tests of the P1-P4 axioms for the real and trivial families.

These run the executable property checkers over the paper's scenarios
and random instances, corroborating the property profile table implied
by Propositions 2, 3, 4 and 6, and the adversarial constructions of
Examples 6 and 10.
"""

import random

import pytest
from hypothesis import given, settings

from repro.core.families import Family, preferred_repairs
from repro.core.properties import (
    audit_family,
    check_p1_nonempty,
    check_p2_monotone,
    check_p2_monotone_pair,
    check_p3_nondiscrimination,
    check_p4_categorical,
)
from repro.core.trivial import example6_family, trep_family, trep_family_patched
from repro.datagen.paper_instances import (
    example8_scenario,
    example9_reconstructed,
    mgr_scenario,
)
from tests.conftest import two_fd_priorities


def family_fn(family):
    return lambda priority: preferred_repairs(family, priority)


class TestRealFamiliesOnScenarios:
    @pytest.mark.parametrize(
        "family", [Family.LOCAL, Family.SEMI_GLOBAL, Family.GLOBAL, Family.COMMON]
    )
    def test_p1_p3_on_mgr(self, family):
        scenario = mgr_scenario()
        fn = family_fn(family)
        assert check_p1_nonempty(fn, scenario.priority)
        assert check_p3_nondiscrimination(fn, scenario.graph)

    @pytest.mark.parametrize(
        "family", [Family.LOCAL, Family.SEMI_GLOBAL, Family.GLOBAL, Family.COMMON]
    )
    def test_p4_on_total_priority(self, family):
        """Example 8's priority is total; P4 requires one repair for
        the categorical families (G-Rep, C-Rep).  L and S may retain
        more — the paper shows L does (Example 8)."""
        scenario = example8_scenario()
        outcome = check_p4_categorical(family_fn(family), scenario.priority)
        if family in (Family.GLOBAL, Family.COMMON):
            assert outcome is True
        if family is Family.SEMI_GLOBAL:
            assert outcome is True  # S is categorical *here* (not always)

    def test_p4_not_applicable_for_partial_priority(self):
        scenario = mgr_scenario()
        assert check_p4_categorical(family_fn(Family.GLOBAL), scenario.priority) is None

    def test_example9_shows_s_rep_non_categorical(self):
        """The reconstructed Example 9: S-Rep keeps two repairs even
        though G and C narrow to one (the priority is partial, so this
        does not contradict P4; it shows S's weaker selectivity)."""
        scenario = example9_reconstructed()
        assert len(preferred_repairs(Family.SEMI_GLOBAL, scenario.priority)) == 2
        assert len(preferred_repairs(Family.GLOBAL, scenario.priority)) == 1


class TestMonotonicity:
    @pytest.mark.parametrize(
        "family", [Family.REP, Family.LOCAL, Family.SEMI_GLOBAL, Family.GLOBAL,
                   Family.COMMON]
    )
    @settings(max_examples=25, deadline=None)
    @given(data=two_fd_priorities(max_tuples=6))
    def test_p2_on_random_extensions(self, family, data):
        """P2 (Propositions 2-4; observed for C-Rep as well)."""
        _, priority = data
        assert check_p2_monotone(
            family_fn(family), priority, samples=4, rng=random.Random(0)
        )

    def test_p2_pair_requires_extension(self):
        scenario = mgr_scenario()
        other = mgr_scenario(with_priority=False)
        with pytest.raises(ValueError):
            check_p2_monotone_pair(
                family_fn(Family.REP), scenario.priority, other.priority
            )


class TestTrivialFamilies:
    def test_example6_profile(self):
        """Example 6's family satisfies P1-P4 yet ignores partial
        priorities entirely."""
        scenario = mgr_scenario()
        report = audit_family(example6_family, scenario.priority)
        assert report.p1 and report.p2 and report.p3
        # Partial priority: P4 not applicable on this scenario.
        assert report.p4 is None
        # It ignores the priority: all 3 repairs stay, including the one
        # every optimality notion rejects.
        assert len(example6_family(scenario.priority)) == 3

    def test_example6_with_total_priority(self):
        scenario = example8_scenario()
        assert check_p4_categorical(example6_family, scenario.priority) is True

    def test_trep_literal_violates_p3(self):
        """Example 10 as written: one repair even for the empty priority."""
        scenario = mgr_scenario(with_priority=False)
        assert not check_p3_nondiscrimination(trep_family, scenario.graph)

    def test_trep_patched_satisfies_p3(self):
        scenario = mgr_scenario(with_priority=False)
        assert check_p3_nondiscrimination(trep_family_patched, scenario.graph)

    def test_trep_violates_p2(self):
        """The paper's point in Section 3.4: T-Rep is globally optimal
        but not monotone.  Witness: on the Mgr scenario the canonical
        completion picks one repair; extending the priority the other
        way selects a different repair, which is not a subset."""
        scenario = mgr_scenario()
        base_selection = set(trep_family(scenario.priority))
        violated = False
        for pair in scenario.priority.unoriented_edges():
            first, second = tuple(pair)
            for directed in ((first, second), (second, first)):
                try:
                    extended = scenario.priority.extend([directed])
                except Exception:
                    continue
                if not set(trep_family(extended)) <= base_selection:
                    violated = True
        assert violated

    def test_trep_output_is_globally_optimal(self):
        """Example 10: T-Rep is a family of globally optimal repairs."""
        from repro.core.optimality import is_globally_optimal

        scenario = example9_reconstructed()
        (repair,) = trep_family(scenario.priority)
        assert is_globally_optimal(repair, scenario.priority)
