#!/usr/bin/env python3
"""Dependency-free line-coverage gate for the query and service layers.

The execution environment (and the CI image) ships no ``coverage.py``,
so this tool measures line coverage with the standard library alone: a
``sys.settrace`` hook records executed lines, but only installs a local
trace function for frames whose code lives under the target package —
every other frame is skipped at call granularity, keeping the overhead
tolerable for a CI gate.

Executable lines are derived from the compiled code objects
(``co_lines`` over the module and all nested functions/classes), which
is the same ground truth coverage.py uses; docstrings and blank lines
are naturally excluded.

Usage::

    PYTHONPATH=src python tools/coverage_gate.py --min-percent 85
    PYTHONPATH=src python tools/coverage_gate.py \
        --target src/repro/query --target src/repro/service -- tests

Arguments after ``--`` are passed to pytest (default: the whole
``tests/`` tree).  ``--target`` is repeatable; each target package is
gated *individually* against ``--min-percent``.  Exit status is
non-zero when the suite fails or any target falls below the gate.
"""

from __future__ import annotations

import argparse
import sys
import threading
import types
from pathlib import Path
from typing import Dict, Set

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TARGET = ROOT / "src" / "repro" / "query"


def executable_lines(path: Path) -> Set[int]:
    """Line numbers carrying instructions anywhere in the file."""
    code = compile(path.read_text(), str(path), "exec")
    lines: Set[int] = set()
    stack = [code]
    while stack:
        current = stack.pop()
        for _, _, lineno in current.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in current.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)
    return lines


class LineCollector:
    """settrace hook recording executed lines of the target files only."""

    def __init__(self, targets: Set[str]) -> None:
        self.targets = targets
        self.executed: Dict[str, Set[int]] = {name: set() for name in targets}

    def global_trace(self, frame, event, arg):
        filename = frame.f_code.co_filename
        if filename not in self.targets:
            return None
        lines = self.executed[filename]
        lines.add(frame.f_lineno)

        def local_trace(frame, event, arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local_trace

        return local_trace

    def install(self) -> None:
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="line-coverage gate over repro packages"
    )
    parser.add_argument(
        "--target",
        action="append",
        default=None,
        help=(
            "package directory to measure; repeatable, each gated "
            "individually (default: src/repro/query)"
        ),
    )
    parser.add_argument(
        "--min-percent",
        type=float,
        default=85.0,
        help="fail when total coverage drops below this (default: 85)",
    )
    parser.add_argument(
        "--show-missing",
        action="store_true",
        help="list uncovered line numbers per file",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="arguments forwarded to pytest (default: tests/)",
    )
    args = parser.parse_args(argv)

    targets = [
        Path(target).resolve()
        for target in (args.target or [str(DEFAULT_TARGET)])
    ]
    per_target: Dict[Path, Dict[str, Set[int]]] = {}
    for target in targets:
        sources = sorted(target.rglob("*.py"))
        if not sources:
            print(f"no python files under {target}", file=sys.stderr)
            return 2
        per_target[target] = {
            str(path): executable_lines(path) for path in sources
        }

    # tests/ imports helpers as `tests.conftest`; the library lives in src/.
    for entry in (str(ROOT), str(ROOT / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

    import pytest

    all_files = {
        filename
        for expected in per_target.values()
        for filename in expected
    }
    collector = LineCollector(all_files)
    pytest_args = args.pytest_args or [str(ROOT / "tests")]
    collector.install()
    try:
        exit_code = pytest.main(["-q", "-p", "no:cacheprovider", *pytest_args])
    finally:
        collector.uninstall()
    if exit_code != 0:
        print(f"pytest failed (exit {exit_code}); coverage not gated")
        return int(exit_code)

    failed = []
    for target in targets:
        expected = per_target[target]
        total_expected = 0
        total_hit = 0
        print(f"\ncoverage of {target} (gate: {args.min_percent:.0f}%)")
        for filename in sorted(expected):
            lines = expected[filename]
            hit = collector.executed[filename] & lines
            total_expected += len(lines)
            total_hit += len(hit)
            percent = 100.0 * len(hit) / len(lines) if lines else 100.0
            name = Path(filename).relative_to(target)
            print(
                f"  {str(name):<24} {len(hit):>4}/{len(lines):<4} {percent:6.1f}%"
            )
            if args.show_missing:
                missing = sorted(lines - hit)
                if missing:
                    print(f"    missing: {missing}")
        total = 100.0 * total_hit / total_expected if total_expected else 100.0
        print(f"  {'TOTAL':<24} {total_hit:>4}/{total_expected:<4} {total:6.1f}%")
        if total < args.min_percent:
            failed.append((target, total))
    if failed:
        for target, total in failed:
            print(
                f"coverage gate FAILED for {target}: "
                f"{total:.1f}% < {args.min_percent:.1f}%",
                file=sys.stderr,
            )
        return 1
    print("coverage gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
