"""Unit tests for the conjunct-ordering planner."""

from repro.query.ast import And, Atom, Comparison, Exists, Not, Var
from repro.query.evaluator import EvaluationContext
from repro.query.planner import (
    AtomStep,
    BindStep,
    DomainStep,
    FilterStep,
    plan_block,
)
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema

x, y, z, c = Var("x"), Var("y"), Var("z"), Var("c")

CARDINALITIES = {"R": 100, "S": 5, "T": 50}


def card(relation):
    return CARDINALITIES.get(relation, 0)


class TestOrdering:
    def test_smaller_relation_scans_first_on_ties(self):
        body = And([Atom("R", [x, y]), Atom("S", [y, c])])
        plan = plan_block(("x", "y", "c"), body, card)
        atoms = [step.atom.relation for step in plan.steps if isinstance(step, AtomStep)]
        # Neither atom has a bound column at the start; S is 20x smaller.
        assert atoms == ["S", "R"]

    def test_bound_columns_beat_cardinality(self):
        # After the S scan binds y, R(y, z) has one bound column while
        # T(c2) has none — R goes next despite being larger.
        body = And([Atom("S", [y, c]), Atom("R", [y, z]), Atom("T", [Var("c2")])])
        plan = plan_block(("y", "c", "z", "c2"), body, card)
        atoms = [step.atom.relation for step in plan.steps if isinstance(step, AtomStep)]
        assert atoms == ["S", "R", "T"]

    def test_ground_atom_probes_first(self):
        body = And([Atom("R", [x, y]), Atom("R", [0, 1])])
        plan = plan_block(("x", "y"), body, card)
        first = plan.steps[0]
        assert isinstance(first, AtomStep)
        assert first.atom == Atom("R", [0, 1])
        assert first.binds == ()

    def test_outer_bound_variables_count_as_bound(self):
        # z is free in the block (bound by the enclosing scope), so
        # R(z, y) starts with one bound column and beats the S scan.
        body = And([Atom("S", [y, c]), Atom("R", [z, y])])
        plan = plan_block(("y", "c"), body, card)
        atoms = [step.atom.relation for step in plan.steps if isinstance(step, AtomStep)]
        assert atoms == ["R", "S"]


class TestBindAndFilterPlacement:
    def test_equality_pins_before_any_atom(self):
        body = And([Atom("R", [x, y]), Comparison("=", x, 3)])
        plan = plan_block(("x", "y"), body, card)
        assert isinstance(plan.steps[0], BindStep)
        assert plan.steps[0].variable == "x"

    def test_variable_to_variable_pin_waits_for_source(self):
        body = And([Atom("S", [y, c]), Comparison("=", x, y)])
        plan = plan_block(("x", "y", "c"), body, card)
        kinds = [type(step) for step in plan.steps]
        assert kinds == [AtomStep, BindStep]
        assert plan.steps[1].variable == "x"

    def test_filters_flush_as_soon_as_bound(self):
        body = And(
            [Atom("S", [y, c]), Comparison(">", y, 0), Atom("R", [y, z])]
        )
        plan = plan_block(("y", "c", "z"), body, card)
        kinds = [type(step) for step in plan.steps]
        # The y > 0 filter runs right after the S scan binds y, before
        # the R probe fans out.
        assert kinds == [AtomStep, FilterStep, AtomStep]

    def test_equality_linked_unguarded_variables_expand_once(self):
        # Regression: EXISTS x, y . x = y AND x > 0 must enumerate the
        # domain once and pin y, not expand |adom|^2 pairs.
        body = And([Comparison("=", x, y), Comparison(">", x, 0)])
        plan = plan_block(("x", "y"), body, card)
        kinds = [type(step) for step in plan.steps]
        assert kinds == [DomainStep, FilterStep, BindStep]
        assert kinds.count(DomainStep) == 1

    def test_unguarded_variable_falls_back_to_domain(self):
        body = And([Atom("R", [x, y]), Not(Atom("S", [z, c]))])
        plan = plan_block(("x", "y", "z", "c"), body, card)
        kinds = [type(step) for step in plan.steps]
        assert kinds == [AtomStep, DomainStep, DomainStep, FilterStep]

    def test_single_non_conjunctive_body_is_a_filter(self):
        body = Not(Atom("R", [x, x]))
        plan = plan_block(("x",), body, card)
        kinds = [type(step) for step in plan.steps]
        assert kinds == [DomainStep, FilterStep]


class TestPlanCaching:
    def test_context_caches_plans_per_block(self):
        schema = RelationSchema("R", ["A:number", "B:number"])
        instance = RelationInstance.from_values(schema, [(0, 1), (1, 2)])
        context = EvaluationContext(instance)
        body = Atom("R", [x, y])
        first = context.plan_for(("x", "y"), body)
        assert context.plan_for(("x", "y"), body) is first
        assert context.plan_for(("x",), Exists(["y"], body)) is not first
